//! A convenience builder for emitting instructions into a unit.

use super::{
    Block, ExtUnit, Inst, InstData, Opcode, RegTrigger, Signature, UnitData, UnitKind, UnitName,
    Value,
};
use crate::ty::Type;
use crate::value::{ConstValue, TimeValue};

/// Where the builder inserts new instructions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum InsertPos {
    /// Append to the end of a block.
    BlockEnd(Block),
    /// Insert before an existing instruction.
    Before(Inst),
}

/// A builder that emits instructions into a [`UnitData`].
///
/// The builder tracks an insertion point and computes result types
/// automatically.
///
/// # Examples
///
/// ```
/// use llhd::ir::{UnitData, UnitKind, UnitName, Signature, UnitBuilder};
/// use llhd::ty::{int_ty, void_ty};
/// use llhd::value::ConstValue;
///
/// let mut unit = UnitData::new(
///     UnitKind::Function,
///     UnitName::global("magic"),
///     Signature::new_func(vec![], int_ty(32)),
/// );
/// let mut builder = UnitBuilder::new(&mut unit);
/// let entry = builder.block("entry");
/// builder.append_to(entry);
/// let value = builder.ins_const(ConstValue::int(32, 42));
/// builder.ret_value(value);
/// ```
pub struct UnitBuilder<'a> {
    unit: &'a mut UnitData,
    pos: Option<InsertPos>,
}

impl<'a> UnitBuilder<'a> {
    /// Create a builder for a unit. For entities, the insertion point is set
    /// to the entity body; for control flow units it must be set explicitly
    /// with [`UnitBuilder::append_to`].
    pub fn new(unit: &'a mut UnitData) -> Self {
        let pos = if unit.kind() == UnitKind::Entity {
            unit.entry_block().map(InsertPos::BlockEnd)
        } else {
            None
        };
        UnitBuilder { unit, pos }
    }

    /// The unit being built.
    pub fn unit(&self) -> &UnitData {
        self.unit
    }

    /// Mutable access to the unit being built.
    pub fn unit_mut(&mut self) -> &mut UnitData {
        self.unit
    }

    /// Create a new basic block with the given name.
    pub fn block(&mut self, name: impl Into<String>) -> Block {
        self.unit.create_block(Some(name.into()))
    }

    /// Create a new anonymous basic block.
    pub fn anonymous_block(&mut self) -> Block {
        self.unit.create_block(None)
    }

    /// Append subsequent instructions to the end of `block`.
    pub fn append_to(&mut self, block: Block) {
        self.pos = Some(InsertPos::BlockEnd(block));
    }

    /// Insert subsequent instructions before `inst`.
    pub fn insert_before(&mut self, inst: Inst) {
        self.pos = Some(InsertPos::Before(inst));
    }

    /// The block instructions are currently appended to.
    pub fn current_block(&self) -> Option<Block> {
        match self.pos? {
            InsertPos::BlockEnd(bb) => Some(bb),
            InsertPos::Before(inst) => self.unit.inst_block(inst),
        }
    }

    /// Emit raw instruction data at the current insertion point.
    pub fn build(&mut self, data: InstData) -> Inst {
        let result_ty = if data.opcode.has_result() {
            Some(self.unit.default_result_type(
                data.opcode,
                &data.args,
                &data.imms,
                data.konst.as_ref(),
                data.ext_unit,
            ))
        } else {
            None
        };
        self.build_with_type(data, result_ty)
    }

    /// Emit raw instruction data with an explicitly provided result type.
    pub fn build_with_type(&mut self, data: InstData, result_ty: Option<Type>) -> Inst {
        match self.pos.expect("no insertion point set") {
            InsertPos::BlockEnd(bb) => self.unit.append_inst(bb, data, result_ty),
            InsertPos::Before(inst) => self.unit.insert_inst_before(inst, data, result_ty),
        }
    }

    fn build_value(&mut self, data: InstData) -> Value {
        let inst = self.build(data);
        self.unit.inst_result(inst)
    }

    // ----- constants ------------------------------------------------------

    /// Emit a `const` instruction.
    pub fn ins_const(&mut self, value: ConstValue) -> Value {
        self.build_value(InstData::constant(value))
    }

    /// Emit an integer constant.
    pub fn const_int(&mut self, width: usize, value: u64) -> Value {
        self.ins_const(ConstValue::int(width, value))
    }

    /// Emit a single-bit boolean constant.
    pub fn const_bool(&mut self, value: bool) -> Value {
        self.ins_const(ConstValue::bool(value))
    }

    /// Emit a time constant.
    pub fn const_time(&mut self, time: TimeValue) -> Value {
        self.ins_const(ConstValue::Time(time))
    }

    // ----- unary and binary data flow --------------------------------------

    fn unary(&mut self, opcode: Opcode, arg: Value) -> Value {
        self.build_value(InstData::new(opcode, vec![arg]))
    }

    fn binary(&mut self, opcode: Opcode, a: Value, b: Value) -> Value {
        self.build_value(InstData::new(opcode, vec![a, b]))
    }

    /// Emit an `alias` of a value.
    pub fn alias(&mut self, v: Value) -> Value {
        self.unary(Opcode::Alias, v)
    }

    /// Emit a bitwise `not`.
    pub fn not(&mut self, v: Value) -> Value {
        self.unary(Opcode::Not, v)
    }

    /// Emit an arithmetic negation.
    pub fn neg(&mut self, v: Value) -> Value {
        self.unary(Opcode::Neg, v)
    }

    /// Emit an addition.
    pub fn add(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Add, a, b)
    }

    /// Emit a subtraction.
    pub fn sub(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Sub, a, b)
    }

    /// Emit a bitwise and.
    pub fn and(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::And, a, b)
    }

    /// Emit a bitwise or.
    pub fn or(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Or, a, b)
    }

    /// Emit a bitwise xor.
    pub fn xor(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Xor, a, b)
    }

    /// Emit an unsigned multiplication.
    pub fn umul(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Umul, a, b)
    }

    /// Emit an unsigned division.
    pub fn udiv(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Udiv, a, b)
    }

    /// Emit an unsigned remainder.
    pub fn urem(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Urem, a, b)
    }

    /// Emit a signed multiplication.
    pub fn smul(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Smul, a, b)
    }

    /// Emit a signed division.
    pub fn sdiv(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Sdiv, a, b)
    }

    /// Emit a signed remainder.
    pub fn srem(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Srem, a, b)
    }

    /// Emit an equality comparison.
    pub fn eq(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Eq, a, b)
    }

    /// Emit an inequality comparison.
    pub fn neq(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Neq, a, b)
    }

    /// Emit an unsigned less-than comparison.
    pub fn ult(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Ult, a, b)
    }

    /// Emit an unsigned greater-than comparison.
    pub fn ugt(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Ugt, a, b)
    }

    /// Emit an unsigned less-than-or-equal comparison.
    pub fn ule(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Ule, a, b)
    }

    /// Emit an unsigned greater-than-or-equal comparison.
    pub fn uge(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Uge, a, b)
    }

    /// Emit a signed less-than comparison.
    pub fn slt(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Slt, a, b)
    }

    /// Emit a signed greater-than comparison.
    pub fn sgt(&mut self, a: Value, b: Value) -> Value {
        self.binary(Opcode::Sgt, a, b)
    }

    /// Emit a logical shift left.
    pub fn shl(&mut self, value: Value, amount: Value) -> Value {
        self.binary(Opcode::Shl, value, amount)
    }

    /// Emit a logical shift right.
    pub fn shr(&mut self, value: Value, amount: Value) -> Value {
        self.binary(Opcode::Shr, value, amount)
    }

    /// Emit a zero extension to `width` bits.
    pub fn zext(&mut self, value: Value, width: usize) -> Value {
        let mut data = InstData::new(Opcode::Zext, vec![value]);
        data.imms = vec![width];
        self.build_value(data)
    }

    /// Emit a sign extension to `width` bits.
    pub fn sext(&mut self, value: Value, width: usize) -> Value {
        let mut data = InstData::new(Opcode::Sext, vec![value]);
        data.imms = vec![width];
        self.build_value(data)
    }

    /// Emit a truncation to `width` bits.
    pub fn trunc(&mut self, value: Value, width: usize) -> Value {
        let mut data = InstData::new(Opcode::Trunc, vec![value]);
        data.imms = vec![width];
        self.build_value(data)
    }

    // ----- aggregates ------------------------------------------------------

    /// Emit an `array` construction.
    pub fn array(&mut self, elements: Vec<Value>) -> Value {
        self.build_value(InstData::new(Opcode::Array, elements))
    }

    /// Emit a `strct` (struct construction).
    pub fn strukt(&mut self, fields: Vec<Value>) -> Value {
        self.build_value(InstData::new(Opcode::Struct, fields))
    }

    /// Emit a `mux` selecting among the elements of `choices` (an array
    /// value) based on `selector`.
    pub fn mux(&mut self, choices: Value, selector: Value) -> Value {
        self.build_value(InstData::new(Opcode::Mux, vec![choices, selector]))
    }

    /// Emit an `insf` inserting `value` into field/element `index` of
    /// `target`.
    pub fn ins_field(&mut self, target: Value, value: Value, index: usize) -> Value {
        let mut data = InstData::new(Opcode::InsField, vec![target, value]);
        data.imms = vec![index];
        self.build_value(data)
    }

    /// Emit an `inss` inserting `value` as a slice at `offset` of `target`.
    pub fn ins_slice(&mut self, target: Value, value: Value, offset: usize, length: usize) -> Value {
        let mut data = InstData::new(Opcode::InsSlice, vec![target, value]);
        data.imms = vec![offset, length];
        self.build_value(data)
    }

    /// Emit an `extf` extracting field/element `index` from `target`.
    pub fn ext_field(&mut self, target: Value, index: usize) -> Value {
        let mut data = InstData::new(Opcode::ExtField, vec![target]);
        data.imms = vec![index];
        self.build_value(data)
    }

    /// Emit an `exts` extracting a slice `[offset, offset+length)` from
    /// `target`.
    pub fn ext_slice(&mut self, target: Value, offset: usize, length: usize) -> Value {
        let mut data = InstData::new(Opcode::ExtSlice, vec![target]);
        data.imms = vec![offset, length];
        self.build_value(data)
    }

    // ----- signals ---------------------------------------------------------

    /// Emit a `sig` creating a signal with the given initial value.
    pub fn sig(&mut self, init: Value) -> Value {
        self.build_value(InstData::new(Opcode::Sig, vec![init]))
    }

    /// Emit a `prb` probing the current value of a signal.
    pub fn prb(&mut self, signal: Value) -> Value {
        self.build_value(InstData::new(Opcode::Prb, vec![signal]))
    }

    /// Emit a `drv` driving `value` onto `signal` after `delay`.
    pub fn drv(&mut self, signal: Value, value: Value, delay: Value) -> Inst {
        self.build(InstData::new(Opcode::Drv, vec![signal, value, delay]))
    }

    /// Emit a conditional `drv` gated by `condition`.
    pub fn drv_cond(&mut self, signal: Value, value: Value, delay: Value, condition: Value) -> Inst {
        self.build(InstData::new(
            Opcode::DrvCond,
            vec![signal, value, delay, condition],
        ))
    }

    /// Emit a `con` connecting two signals.
    pub fn con(&mut self, a: Value, b: Value) -> Inst {
        self.build(InstData::new(Opcode::Con, vec![a, b]))
    }

    /// Emit a `del` creating a delayed version of a signal.
    pub fn del(&mut self, signal: Value, delay: Value) -> Value {
        self.build_value(InstData::new(Opcode::Del, vec![signal, delay]))
    }

    /// Emit a `reg` storage element on `signal` with the given triggers.
    pub fn reg(&mut self, signal: Value, triggers: Vec<RegTrigger>) -> Inst {
        let mut data = InstData::new(Opcode::Reg, vec![signal]);
        data.triggers = triggers;
        self.build(data)
    }

    // ----- memory ----------------------------------------------------------

    /// Emit a `var` stack allocation holding `init`.
    pub fn var(&mut self, init: Value) -> Value {
        self.build_value(InstData::new(Opcode::Var, vec![init]))
    }

    /// Emit an `ld` loading the value behind `pointer`.
    pub fn ld(&mut self, pointer: Value) -> Value {
        self.build_value(InstData::new(Opcode::Ld, vec![pointer]))
    }

    /// Emit an `st` storing `value` behind `pointer`.
    pub fn st(&mut self, pointer: Value, value: Value) -> Inst {
        self.build(InstData::new(Opcode::St, vec![pointer, value]))
    }

    /// Emit an `alloc` heap allocation holding `init`.
    pub fn halloc(&mut self, init: Value) -> Value {
        self.build_value(InstData::new(Opcode::Halloc, vec![init]))
    }

    /// Emit a `free` releasing a heap allocation.
    pub fn free(&mut self, pointer: Value) -> Inst {
        self.build(InstData::new(Opcode::Free, vec![pointer]))
    }

    // ----- calls, hierarchy -------------------------------------------------

    /// Declare an external unit for use by `call` and `inst`.
    pub fn ext_unit(&mut self, name: UnitName, sig: Signature) -> ExtUnit {
        self.unit.add_ext_unit(name, sig)
    }

    /// Emit a `call` to an external function.
    pub fn call(&mut self, target: ExtUnit, args: Vec<Value>) -> Inst {
        let num_inputs = args.len();
        let mut data = InstData::new(Opcode::Call, args);
        data.ext_unit = Some(target);
        data.num_inputs = num_inputs;
        self.build(data)
    }

    /// Emit a `call` and return its result value.
    ///
    /// # Panics
    ///
    /// Panics if the called function returns void.
    pub fn call_value(&mut self, target: ExtUnit, args: Vec<Value>) -> Value {
        let inst = self.call(target, args);
        self.unit.inst_result(inst)
    }

    /// Emit an `inst` instantiating a process or entity, connecting `inputs`
    /// and `outputs` signals.
    pub fn inst(&mut self, target: ExtUnit, inputs: Vec<Value>, outputs: Vec<Value>) -> Inst {
        let num_inputs = inputs.len();
        let mut args = inputs;
        args.extend(outputs);
        let mut data = InstData::new(Opcode::Inst, args);
        data.ext_unit = Some(target);
        data.num_inputs = num_inputs;
        self.build(data)
    }

    // ----- control and time flow --------------------------------------------

    /// Emit a `phi` node with `(value, predecessor block)` pairs.
    pub fn phi(&mut self, edges: Vec<(Value, Block)>) -> Value {
        let mut data = InstData::new(Opcode::Phi, edges.iter().map(|(v, _)| *v).collect());
        data.blocks = edges.iter().map(|(_, b)| *b).collect();
        self.build_value(data)
    }

    /// Emit an unconditional branch.
    pub fn br(&mut self, target: Block) -> Inst {
        let mut data = InstData::new(Opcode::Br, vec![]);
        data.blocks = vec![target];
        self.build(data)
    }

    /// Emit a conditional branch: control transfers to `if_false` when
    /// `condition` is zero and to `if_true` otherwise. Matches the paper's
    /// `br %cond, %false_bb, %true_bb` operand order.
    pub fn br_cond(&mut self, condition: Value, if_false: Block, if_true: Block) -> Inst {
        let mut data = InstData::new(Opcode::BrCond, vec![condition]);
        data.blocks = vec![if_false, if_true];
        self.build(data)
    }

    /// Emit a `wait` suspending until any of `signals` changes, resuming at
    /// `target`.
    pub fn wait(&mut self, target: Block, signals: Vec<Value>) -> Inst {
        let mut data = InstData::new(Opcode::Wait, signals);
        data.blocks = vec![target];
        self.build(data)
    }

    /// Emit a `wait` with a timeout: suspends for `time` or until any of
    /// `signals` changes, resuming at `target`.
    pub fn wait_time(&mut self, target: Block, time: Value, signals: Vec<Value>) -> Inst {
        let mut args = vec![time];
        args.extend(signals);
        let mut data = InstData::new(Opcode::WaitTime, args);
        data.blocks = vec![target];
        self.build(data)
    }

    /// Emit a `halt`, suspending the process forever.
    pub fn halt(&mut self) -> Inst {
        self.build(InstData::new(Opcode::Halt, vec![]))
    }

    /// Emit a `ret` without a value.
    pub fn ret(&mut self) -> Inst {
        self.build(InstData::new(Opcode::Ret, vec![]))
    }

    /// Emit a `ret` with a value.
    pub fn ret_value(&mut self, value: Value) -> Inst {
        self.build(InstData::new(Opcode::RetValue, vec![value]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::*;

    fn process_unit() -> UnitData {
        UnitData::new(
            UnitKind::Process,
            UnitName::global("p"),
            Signature::new_entity(
                vec![signal_ty(int_ty(1)), signal_ty(int_ty(32))],
                vec![signal_ty(int_ty(32))],
            ),
        )
    }

    #[test]
    fn build_arithmetic_chain() {
        let mut unit = UnitData::new(
            UnitKind::Function,
            UnitName::global("f"),
            Signature::new_func(vec![int_ty(32), int_ty(32)], int_ty(32)),
        );
        let a = unit.arg_value(0);
        let b = unit.arg_value(1);
        let mut builder = UnitBuilder::new(&mut unit);
        let entry = builder.block("entry");
        builder.append_to(entry);
        let sum = builder.add(a, b);
        let two = builder.const_int(32, 2);
        let half = builder.udiv(sum, two);
        builder.ret_value(half);
        assert_eq!(unit.insts(unit.entry_block().unwrap()).len(), 4);
        assert_eq!(unit.value_type(sum), int_ty(32));
        assert_eq!(unit.value_type(half), int_ty(32));
    }

    #[test]
    fn build_signal_interaction() {
        let mut unit = process_unit();
        let clk = unit.arg_value(0);
        let q = unit.arg_value(2);
        let mut builder = UnitBuilder::new(&mut unit);
        let entry = builder.block("entry");
        builder.append_to(entry);
        let clk_val = builder.prb(clk);
        assert_eq!(builder.unit().value_type(clk_val), int_ty(1));
        let delay = builder.const_time(TimeValue::from_nanos(1));
        let value = builder.const_int(32, 5);
        builder.drv(q, value, delay);
        builder.wait(entry, vec![clk]);
        let insts = builder.unit().insts(entry);
        assert_eq!(insts.len(), 5);
        assert_eq!(builder.unit().terminator(entry), Some(insts[4]));
    }

    #[test]
    fn build_entity_with_instances() {
        let mut unit = UnitData::new(
            UnitKind::Entity,
            UnitName::global("top"),
            Signature::new_entity(vec![signal_ty(int_ty(1))], vec![signal_ty(int_ty(32))]),
        );
        let clk = unit.arg_value(0);
        let q = unit.arg_value(1);
        let mut builder = UnitBuilder::new(&mut unit);
        let zero = builder.const_int(32, 0);
        let d = builder.sig(zero);
        assert_eq!(builder.unit().value_type(d), signal_ty(int_ty(32)));
        let ext = builder.ext_unit(
            UnitName::global("acc_ff"),
            Signature::new_entity(
                vec![signal_ty(int_ty(1)), signal_ty(int_ty(32))],
                vec![signal_ty(int_ty(32))],
            ),
        );
        builder.inst(ext, vec![clk, d], vec![q]);
        let body = builder.unit().entry_block().unwrap();
        assert_eq!(builder.unit().insts(body).len(), 3);
    }

    #[test]
    fn build_branches_and_phi() {
        let mut unit = process_unit();
        let en = unit.arg_value(0);
        let mut builder = UnitBuilder::new(&mut unit);
        let entry = builder.block("entry");
        let enabled = builder.block("enabled");
        let finale = builder.block("final");
        builder.append_to(entry);
        let enp = builder.prb(en);
        let a = builder.const_int(32, 1);
        builder.br_cond(enp, finale, enabled);
        builder.append_to(enabled);
        let b = builder.const_int(32, 2);
        builder.br(finale);
        builder.append_to(finale);
        let merged = builder.phi(vec![(a, entry), (b, enabled)]);
        assert_eq!(builder.unit().value_type(merged), int_ty(32));
        let data = builder.unit().inst_data(
            match builder.unit().value_def(merged) {
                crate::ir::ValueDef::Inst(i) => i,
                _ => unreachable!(),
            },
        );
        assert_eq!(data.blocks, vec![entry, enabled]);
    }

    #[test]
    fn build_reg_with_triggers() {
        let mut unit = UnitData::new(
            UnitKind::Entity,
            UnitName::global("ff"),
            Signature::new_entity(
                vec![signal_ty(int_ty(1)), signal_ty(int_ty(32))],
                vec![signal_ty(int_ty(32))],
            ),
        );
        let clk = unit.arg_value(0);
        let d = unit.arg_value(1);
        let q = unit.arg_value(2);
        let mut builder = UnitBuilder::new(&mut unit);
        let clkp = builder.prb(clk);
        let dp = builder.prb(d);
        builder.reg(
            q,
            vec![RegTrigger {
                value: dp,
                mode: crate::ir::RegMode::Rise,
                trigger: clkp,
                gate: None,
            }],
        );
        let body = builder.unit().entry_block().unwrap();
        let insts = builder.unit().insts(body);
        assert_eq!(insts.len(), 3);
        assert_eq!(builder.unit().inst_data(insts[2]).opcode, Opcode::Reg);
    }

    #[test]
    fn insert_before_positions_instructions() {
        let mut unit = UnitData::new(
            UnitKind::Function,
            UnitName::global("f"),
            Signature::new_func(vec![int_ty(8)], int_ty(8)),
        );
        let a = unit.arg_value(0);
        let mut builder = UnitBuilder::new(&mut unit);
        let entry = builder.block("entry");
        builder.append_to(entry);
        let ret = builder.ret_value(a);
        builder.insert_before(ret);
        let one = builder.const_int(8, 1);
        let sum = builder.add(a, one);
        // Fix up the return to use the sum.
        builder.unit_mut().inst_data_mut(ret).args[0] = sum;
        let insts = unit.insts(unit.entry_block().unwrap());
        assert_eq!(insts.len(), 3);
        assert_eq!(unit.inst_data(insts[2]).opcode, Opcode::RetValue);
    }

    #[test]
    fn extraction_projects_through_signals() {
        let mut unit = UnitData::new(
            UnitKind::Process,
            UnitName::global("p"),
            Signature::new_entity(vec![signal_ty(array_ty(4, int_ty(8)))], vec![]),
        );
        let arr_sig = unit.arg_value(0);
        let mut builder = UnitBuilder::new(&mut unit);
        let entry = builder.block("entry");
        builder.append_to(entry);
        let elem_sig = builder.ext_field(arr_sig, 2);
        assert_eq!(builder.unit().value_type(elem_sig), signal_ty(int_ty(8)));
        let probed = builder.prb(elem_sig);
        assert_eq!(builder.unit().value_type(probed), int_ty(8));
        let slice = builder.ext_slice(probed, 0, 4);
        assert_eq!(builder.unit().value_type(slice), int_ty(4));
    }
}
