//! Units: functions, processes, and entities.

use super::{Block, ExtUnit, ExtUnitData, Inst, InstData, Opcode, Signature, UnitName, Value};
use crate::ty::{self, Type};
use crate::value::ConstValue;
use std::fmt;

/// The three kinds of units in LLHD (Table 1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnitKind {
    /// A function: control flow, immediate execution, user-defined SSA
    /// mapping.
    Function,
    /// A process: control flow, timed execution, behavioural circuit
    /// description.
    Process,
    /// An entity: data flow, timed execution, structural circuit
    /// description.
    Entity,
}

impl UnitKind {
    /// Whether the unit executes as control flow over basic blocks.
    pub fn is_control_flow(self) -> bool {
        matches!(self, UnitKind::Function | UnitKind::Process)
    }

    /// Whether the unit executes as a data flow graph.
    pub fn is_data_flow(self) -> bool {
        self == UnitKind::Entity
    }

    /// Whether the unit executes in zero time (immediate timing model).
    pub fn is_immediate(self) -> bool {
        self == UnitKind::Function
    }

    /// Whether the unit persists across time steps (timed timing model).
    pub fn is_timed(self) -> bool {
        !self.is_immediate()
    }

    /// The assembly keyword introducing this unit.
    pub fn keyword(self) -> &'static str {
        match self {
            UnitKind::Function => "func",
            UnitKind::Process => "proc",
            UnitKind::Entity => "entity",
        }
    }
}

impl fmt::Display for UnitKind {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        write!(f, "{}", self.keyword())
    }
}

/// How a value came into existence.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ValueDef {
    /// The value is argument `n` of the unit (inputs followed by outputs).
    Arg(usize),
    /// The value is the result of an instruction.
    Inst(Inst),
    /// The value has been invalidated (its defining instruction was
    /// removed).
    Invalid,
}

/// Data associated with an SSA value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ValueData {
    /// The type of the value.
    pub ty: Type,
    /// The definition site.
    pub def: ValueDef,
    /// An optional human-readable name hint.
    pub name: Option<String>,
}

/// Data associated with a basic block.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BlockData {
    /// An optional human-readable name.
    pub name: Option<String>,
    /// The instructions of the block, in execution order.
    insts: Vec<Inst>,
}

/// A function, process, or entity.
///
/// Owns all values, blocks, and instructions of the unit. Entities are
/// modeled as a unit with exactly one block and no terminator; their
/// instructions form a data flow graph whose execution order is implied by
/// value dependencies.
#[derive(Clone, PartialEq, Debug)]
pub struct UnitData {
    kind: UnitKind,
    name: UnitName,
    sig: Signature,
    values: Vec<Option<ValueData>>,
    insts: Vec<Option<InstData>>,
    inst_results: Vec<Option<Value>>,
    inst_blocks: Vec<Option<Block>>,
    blocks: Vec<Option<BlockData>>,
    block_order: Vec<Block>,
    ext_units: Vec<ExtUnitData>,
}

impl UnitData {
    /// Create a new, empty unit. Argument values for the signature's inputs
    /// and outputs are created immediately; entities and processes receive
    /// them in the order inputs-then-outputs.
    pub fn new(kind: UnitKind, name: UnitName, sig: Signature) -> Self {
        let mut unit = UnitData {
            kind,
            name,
            sig: sig.clone(),
            values: vec![],
            insts: vec![],
            inst_results: vec![],
            inst_blocks: vec![],
            blocks: vec![],
            block_order: vec![],
            ext_units: vec![],
        };
        for i in 0..sig.num_args() {
            unit.values.push(Some(ValueData {
                ty: sig.arg_type(i),
                def: ValueDef::Arg(i),
                name: None,
            }));
        }
        // Entities have a single implicit body block.
        if kind == UnitKind::Entity {
            unit.create_block(Some("body".to_string()));
        }
        unit
    }

    /// The unit kind.
    pub fn kind(&self) -> UnitKind {
        self.kind
    }

    /// The unit name.
    pub fn name(&self) -> &UnitName {
        &self.name
    }

    /// Rename the unit.
    pub fn set_name(&mut self, name: UnitName) {
        self.name = name;
    }

    /// The unit signature.
    pub fn sig(&self) -> &Signature {
        &self.sig
    }

    // ----- arguments ------------------------------------------------------

    /// The value bound to argument `index` (inputs followed by outputs).
    pub fn arg_value(&self, index: usize) -> Value {
        assert!(index < self.sig.num_args(), "argument index out of range");
        Value::from_index(index)
    }

    /// The values bound to the input arguments.
    pub fn input_args(&self) -> Vec<Value> {
        (0..self.sig.inputs().len()).map(Value::from_index).collect()
    }

    /// The values bound to the output arguments.
    pub fn output_args(&self) -> Vec<Value> {
        (self.sig.inputs().len()..self.sig.num_args())
            .map(Value::from_index)
            .collect()
    }

    /// All argument values.
    pub fn args(&self) -> Vec<Value> {
        (0..self.sig.num_args()).map(Value::from_index).collect()
    }

    /// Whether `value` is an argument of the unit.
    pub fn is_arg(&self, value: Value) -> bool {
        matches!(self.value_def(value), ValueDef::Arg(_))
    }

    // ----- values ---------------------------------------------------------

    fn value_data(&self, value: Value) -> &ValueData {
        self.values[value.index()]
            .as_ref()
            .expect("value has been removed")
    }

    /// The type of a value.
    pub fn value_type(&self, value: Value) -> Type {
        self.value_data(value).ty.clone()
    }

    /// The definition site of a value.
    pub fn value_def(&self, value: Value) -> ValueDef {
        self.value_data(value).def
    }

    /// The optional name hint of a value.
    pub fn value_name(&self, value: Value) -> Option<&str> {
        self.value_data(value).name.as_deref()
    }

    /// Attach a name hint to a value.
    pub fn set_value_name(&mut self, value: Value, name: impl Into<String>) {
        if let Some(data) = self.values[value.index()].as_mut() {
            data.name = Some(name.into());
        }
    }

    /// Whether the handle refers to a live value.
    pub fn has_value(&self, value: Value) -> bool {
        value.index() < self.values.len() && self.values[value.index()].is_some()
    }

    /// An exclusive upper bound on the raw indices of this unit's values.
    /// Lets executors allocate dense side tables indexed by
    /// [`Value::index`] (holes from removed values are included).
    pub fn num_value_slots(&self) -> usize {
        self.values.len()
    }

    /// An exclusive upper bound on the raw indices of this unit's
    /// instructions, for dense side tables indexed by [`Inst::index`].
    pub fn num_inst_slots(&self) -> usize {
        self.insts.len()
    }

    /// All live values of the unit.
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_some())
            .map(|(i, _)| Value::from_index(i))
    }

    /// If `value` is defined by a `const` instruction, return its constant.
    pub fn get_const(&self, value: Value) -> Option<&ConstValue> {
        match self.value_def(value) {
            ValueDef::Inst(inst) => {
                let data = self.inst_data(inst);
                if data.opcode == Opcode::Const {
                    data.konst.as_ref()
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// All instructions that use `value` as an operand.
    pub fn value_uses(&self, value: Value) -> Vec<Inst> {
        let mut uses = vec![];
        for inst in self.all_insts() {
            if self.inst_data(inst).all_args().contains(&value) {
                uses.push(inst);
            }
        }
        uses
    }

    /// Replace all uses of `from` with `to`. Returns the number of operand
    /// slots rewritten.
    pub fn replace_value_uses(&mut self, from: Value, to: Value) -> usize {
        let mut count = 0;
        for data in self.insts.iter_mut().flatten() {
            count += data.replace_value(from, to);
        }
        count
    }

    // ----- blocks ---------------------------------------------------------

    /// Create a new basic block appended to the end of the unit.
    pub fn create_block(&mut self, name: Option<String>) -> Block {
        let bb = Block::from_index(self.blocks.len());
        self.blocks.push(Some(BlockData {
            name,
            insts: vec![],
        }));
        self.block_order.push(bb);
        bb
    }

    /// Create a new basic block inserted immediately after `after`.
    pub fn create_block_after(&mut self, name: Option<String>, after: Block) -> Block {
        let bb = Block::from_index(self.blocks.len());
        self.blocks.push(Some(BlockData {
            name,
            insts: vec![],
        }));
        let pos = self
            .block_order
            .iter()
            .position(|&b| b == after)
            .map(|p| p + 1)
            .unwrap_or(self.block_order.len());
        self.block_order.insert(pos, bb);
        bb
    }

    /// The blocks of the unit in layout order.
    pub fn blocks(&self) -> Vec<Block> {
        self.block_order.clone()
    }

    /// The entry block (the first block in layout order).
    pub fn entry_block(&self) -> Option<Block> {
        self.block_order.first().copied()
    }

    /// The name of a block, if it has one.
    pub fn block_name(&self, block: Block) -> Option<&str> {
        self.block_data(block).name.as_deref()
    }

    /// Set the name of a block.
    pub fn set_block_name(&mut self, block: Block, name: impl Into<String>) {
        self.block_data_mut(block).name = Some(name.into());
    }

    /// Whether the handle refers to a live block.
    pub fn has_block(&self, block: Block) -> bool {
        block.index() < self.blocks.len() && self.blocks[block.index()].is_some()
    }

    fn block_data(&self, block: Block) -> &BlockData {
        self.blocks[block.index()]
            .as_ref()
            .expect("block has been removed")
    }

    fn block_data_mut(&mut self, block: Block) -> &mut BlockData {
        self.blocks[block.index()]
            .as_mut()
            .expect("block has been removed")
    }

    /// Remove an (empty or fully dead) block. The caller must ensure no
    /// branches target the block anymore; its remaining instructions are
    /// removed along with it.
    pub fn remove_block(&mut self, block: Block) {
        let insts = self.block_data(block).insts.clone();
        for inst in insts {
            self.remove_inst(inst);
        }
        self.blocks[block.index()] = None;
        self.block_order.retain(|&b| b != block);
    }

    /// The instructions of a block in execution order.
    pub fn insts(&self, block: Block) -> Vec<Inst> {
        self.block_data(block).insts.clone()
    }

    /// The instructions of a block in execution order, without copying.
    /// Preferred on hot paths (interpreters, compilers) over [`Self::insts`].
    pub fn insts_slice(&self, block: Block) -> &[Inst] {
        &self.block_data(block).insts
    }

    /// The number of instructions in a block.
    pub fn num_insts(&self, block: Block) -> usize {
        self.block_data(block).insts.len()
    }

    /// All live instructions in the unit, in block layout order.
    pub fn all_insts(&self) -> Vec<Inst> {
        self.block_order
            .iter()
            .flat_map(|&bb| self.block_data(bb).insts.iter().copied())
            .collect()
    }

    /// The total number of live instructions.
    pub fn num_total_insts(&self) -> usize {
        self.insts.iter().filter(|i| i.is_some()).count()
    }

    /// The terminator instruction of a block, if its last instruction is a
    /// terminator.
    pub fn terminator(&self, block: Block) -> Option<Inst> {
        let last = *self.block_data(block).insts.last()?;
        if self.inst_data(last).opcode.is_terminator() {
            Some(last)
        } else {
            None
        }
    }

    // ----- instructions ---------------------------------------------------

    /// Append an instruction to a block. If `result_ty` is given and not
    /// void, a result value of that type is created.
    pub fn append_inst(
        &mut self,
        block: Block,
        data: InstData,
        result_ty: Option<Type>,
    ) -> Inst {
        let inst = self.alloc_inst(data, result_ty);
        self.block_data_mut(block).insts.push(inst);
        self.inst_blocks[inst.index()] = Some(block);
        inst
    }

    /// Insert an instruction immediately before another instruction in the
    /// same block.
    pub fn insert_inst_before(
        &mut self,
        before: Inst,
        data: InstData,
        result_ty: Option<Type>,
    ) -> Inst {
        let block = self.inst_block(before).expect("inst not in a block");
        let inst = self.alloc_inst(data, result_ty);
        let bd = self.block_data_mut(block);
        let pos = bd.insts.iter().position(|&i| i == before).unwrap();
        bd.insts.insert(pos, inst);
        self.inst_blocks[inst.index()] = Some(block);
        inst
    }

    /// Insert an instruction at the beginning of a block.
    pub fn prepend_inst(
        &mut self,
        block: Block,
        data: InstData,
        result_ty: Option<Type>,
    ) -> Inst {
        let inst = self.alloc_inst(data, result_ty);
        self.block_data_mut(block).insts.insert(0, inst);
        self.inst_blocks[inst.index()] = Some(block);
        inst
    }

    fn alloc_inst(&mut self, data: InstData, result_ty: Option<Type>) -> Inst {
        let inst = Inst::from_index(self.insts.len());
        let result = match result_ty {
            Some(ty) if !ty.is_void() => {
                let value = Value::from_index(self.values.len());
                self.values.push(Some(ValueData {
                    ty,
                    def: ValueDef::Inst(inst),
                    name: None,
                }));
                Some(value)
            }
            _ => None,
        };
        self.insts.push(Some(data));
        self.inst_results.push(result);
        self.inst_blocks.push(None);
        inst
    }

    /// The payload of an instruction.
    pub fn inst_data(&self, inst: Inst) -> &InstData {
        self.insts[inst.index()]
            .as_ref()
            .expect("instruction has been removed")
    }

    /// Mutable access to the payload of an instruction.
    pub fn inst_data_mut(&mut self, inst: Inst) -> &mut InstData {
        self.insts[inst.index()]
            .as_mut()
            .expect("instruction has been removed")
    }

    /// Whether the handle refers to a live instruction.
    pub fn has_inst(&self, inst: Inst) -> bool {
        inst.index() < self.insts.len() && self.insts[inst.index()].is_some()
    }

    /// The result value of an instruction, if it has one.
    pub fn get_inst_result(&self, inst: Inst) -> Option<Value> {
        self.inst_results[inst.index()]
    }

    /// The result value of an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the instruction has no result.
    pub fn inst_result(&self, inst: Inst) -> Value {
        self.get_inst_result(inst)
            .expect("instruction has no result")
    }

    /// The block containing an instruction.
    pub fn inst_block(&self, inst: Inst) -> Option<Block> {
        self.inst_blocks[inst.index()]
    }

    /// Remove an instruction from the unit. Its result value (if any) is
    /// invalidated; callers must have replaced all uses beforehand.
    pub fn remove_inst(&mut self, inst: Inst) {
        if let Some(block) = self.inst_blocks[inst.index()] {
            self.block_data_mut(block).insts.retain(|&i| i != inst);
        }
        if let Some(result) = self.inst_results[inst.index()] {
            if let Some(data) = self.values[result.index()].as_mut() {
                data.def = ValueDef::Invalid;
            }
            self.values[result.index()] = None;
        }
        self.insts[inst.index()] = None;
        self.inst_results[inst.index()] = None;
        self.inst_blocks[inst.index()] = None;
    }

    /// Move an instruction so it becomes the last non-terminator instruction
    /// of `block` (i.e. immediately before the terminator, or at the end if
    /// the block has no terminator).
    pub fn move_inst_before_terminator(&mut self, inst: Inst, block: Block) {
        self.detach_inst(inst);
        let has_term = self.terminator(block).is_some();
        let bd = self.block_data_mut(block);
        if has_term {
            let pos = bd.insts.len() - 1;
            bd.insts.insert(pos, inst);
        } else {
            bd.insts.push(inst);
        }
        self.inst_blocks[inst.index()] = Some(block);
    }

    /// Move an instruction to the end of `block`.
    pub fn move_inst_to_end(&mut self, inst: Inst, block: Block) {
        self.detach_inst(inst);
        self.block_data_mut(block).insts.push(inst);
        self.inst_blocks[inst.index()] = Some(block);
    }

    /// Move an instruction immediately before another instruction.
    pub fn move_inst_before(&mut self, inst: Inst, before: Inst) {
        let block = self.inst_block(before).expect("target not in a block");
        self.detach_inst(inst);
        let bd = self.block_data_mut(block);
        let pos = bd.insts.iter().position(|&i| i == before).unwrap();
        bd.insts.insert(pos, inst);
        self.inst_blocks[inst.index()] = Some(block);
    }

    fn detach_inst(&mut self, inst: Inst) {
        if let Some(block) = self.inst_blocks[inst.index()] {
            self.block_data_mut(block).insts.retain(|&i| i != inst);
        }
        self.inst_blocks[inst.index()] = None;
    }

    // ----- external units -------------------------------------------------

    /// Declare an external unit (a call or instantiation target), returning
    /// a handle to reference it from `call` and `inst` instructions.
    pub fn add_ext_unit(&mut self, name: UnitName, sig: Signature) -> ExtUnit {
        // Reuse an existing identical declaration.
        for (i, data) in self.ext_units.iter().enumerate() {
            if data.name == name && data.sig == sig {
                return ExtUnit::from_index(i);
            }
        }
        let ext = ExtUnit::from_index(self.ext_units.len());
        self.ext_units.push(ExtUnitData { name, sig });
        ext
    }

    /// The data of an external unit declaration.
    pub fn ext_unit_data(&self, ext: ExtUnit) -> &ExtUnitData {
        &self.ext_units[ext.index()]
    }

    /// All external unit declarations.
    pub fn ext_units(&self) -> impl Iterator<Item = (ExtUnit, &ExtUnitData)> {
        self.ext_units
            .iter()
            .enumerate()
            .map(|(i, d)| (ExtUnit::from_index(i), d))
    }

    // ----- convenience ----------------------------------------------------

    /// The canonical display name of a value: its name hint or `vN`.
    pub fn value_display(&self, value: Value) -> String {
        match self.value_name(value) {
            Some(name) => format!("%{}", name),
            None => format!("%{}", value.index()),
        }
    }

    /// The canonical display name of a block: its name hint or `bbN`.
    pub fn block_display(&self, block: Block) -> String {
        match self.block_name(block) {
            Some(name) => format!("%{}", name),
            None => format!("%bb{}", block.index()),
        }
    }

    /// The default result type an instruction of `opcode` with the given
    /// operands would produce. This is the single source of truth used by
    /// the builder, the parser, and the bitcode reader.
    pub fn default_result_type(
        &self,
        opcode: Opcode,
        args: &[Value],
        imms: &[usize],
        konst: Option<&ConstValue>,
        ext_unit: Option<ExtUnit>,
    ) -> Type {
        let arg_ty = |i: usize| self.value_type(args[i]);
        match opcode {
            Opcode::Const => konst.expect("const needs a value").ty(),
            Opcode::Alias | Opcode::Not | Opcode::Neg => arg_ty(0),
            Opcode::Array => ty::array_ty(args.len(), arg_ty(0)),
            Opcode::Struct => ty::struct_ty(args.iter().map(|&a| self.value_type(a)).collect()),
            Opcode::Add
            | Opcode::Sub
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Smul
            | Opcode::Sdiv
            | Opcode::Smod
            | Opcode::Srem
            | Opcode::Umul
            | Opcode::Udiv
            | Opcode::Umod
            | Opcode::Urem
            | Opcode::Shl
            | Opcode::Shr => arg_ty(0),
            Opcode::Eq
            | Opcode::Neq
            | Opcode::Slt
            | Opcode::Sgt
            | Opcode::Sle
            | Opcode::Sge
            | Opcode::Ult
            | Opcode::Ugt
            | Opcode::Ule
            | Opcode::Uge => ty::int_ty(1),
            Opcode::Zext | Opcode::Sext | Opcode::Trunc => ty::int_ty(imms[0]),
            Opcode::Mux => {
                let array = arg_ty(0);
                let (_, elem) = array.unwrap_array();
                elem.clone()
            }
            Opcode::InsField | Opcode::InsSlice => arg_ty(0),
            Opcode::ExtField => {
                let t = arg_ty(0);
                Self::projected_type(&t, imms[0], 1, true)
            }
            Opcode::ExtSlice => {
                let t = arg_ty(0);
                Self::projected_type(&t, imms[0], imms[1], false)
            }
            Opcode::Sig => ty::signal_ty(arg_ty(0)),
            Opcode::Prb => arg_ty(0).unwrap_signal().clone(),
            Opcode::Del => arg_ty(0),
            Opcode::Var | Opcode::Halloc => ty::pointer_ty(arg_ty(0)),
            Opcode::Ld => arg_ty(0).unwrap_pointer().clone(),
            Opcode::Call => ext_unit
                .map(|e| self.ext_unit_data(e).sig.return_type())
                .unwrap_or_else(ty::void_ty),
            Opcode::Phi => arg_ty(0),
            _ => ty::void_ty(),
        }
    }

    /// Compute the type that results from projecting element/slice accesses
    /// through signals and pointers: `extf` on an `i32$` array signal yields
    /// a signal of the element type, etc.
    fn projected_type(ty_: &Type, _offset: usize, length: usize, field: bool) -> Type {
        use crate::ty::TypeKind;
        let wrap = |inner: Type| -> Type {
            match ty_.kind() {
                TypeKind::Signal(_) => ty::signal_ty(inner),
                TypeKind::Pointer(_) => ty::pointer_ty(inner),
                _ => inner,
            }
        };
        let base = ty_.strip();
        match base.kind() {
            TypeKind::Array(_, elem) => {
                if field {
                    wrap(elem.clone())
                } else {
                    wrap(ty::array_ty(length, elem.clone()))
                }
            }
            TypeKind::Struct(fields) => wrap(fields[_offset].clone()),
            TypeKind::Int(_) => {
                if field {
                    wrap(ty::int_ty(1))
                } else {
                    wrap(ty::int_ty(length))
                }
            }
            TypeKind::Logic(_) => {
                if field {
                    wrap(ty::logic_ty(1))
                } else {
                    wrap(ty::logic_ty(length))
                }
            }
            _ => wrap(base.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Signature;
    use crate::ty::*;

    fn simple_func() -> UnitData {
        UnitData::new(
            UnitKind::Function,
            UnitName::global("check"),
            Signature::new_func(vec![int_ty(32), int_ty(32)], void_ty()),
        )
    }

    #[test]
    fn unit_kind_properties() {
        assert!(UnitKind::Function.is_control_flow());
        assert!(UnitKind::Process.is_control_flow());
        assert!(UnitKind::Entity.is_data_flow());
        assert!(UnitKind::Function.is_immediate());
        assert!(UnitKind::Process.is_timed());
        assert!(UnitKind::Entity.is_timed());
        assert_eq!(UnitKind::Entity.keyword(), "entity");
    }

    #[test]
    fn arguments_become_values() {
        let unit = simple_func();
        assert_eq!(unit.args().len(), 2);
        assert_eq!(unit.value_type(unit.arg_value(0)), int_ty(32));
        assert!(unit.is_arg(unit.arg_value(1)));
        assert_eq!(unit.value_def(unit.arg_value(1)), ValueDef::Arg(1));
    }

    #[test]
    fn entity_has_body_block() {
        let entity = UnitData::new(
            UnitKind::Entity,
            UnitName::global("top"),
            Signature::new_entity(vec![signal_ty(int_ty(1))], vec![signal_ty(int_ty(1))]),
        );
        assert_eq!(entity.blocks().len(), 1);
        assert!(entity.entry_block().is_some());
        assert_eq!(entity.input_args().len(), 1);
        assert_eq!(entity.output_args().len(), 1);
    }

    #[test]
    fn append_and_remove_insts() {
        let mut unit = simple_func();
        let bb = unit.create_block(Some("entry".into()));
        let a = unit.arg_value(0);
        let b = unit.arg_value(1);
        let add = unit.append_inst(bb, InstData::new(Opcode::Add, vec![a, b]), Some(int_ty(32)));
        let result = unit.inst_result(add);
        assert_eq!(unit.value_type(result), int_ty(32));
        assert_eq!(unit.value_def(result), ValueDef::Inst(add));
        assert_eq!(unit.insts(bb), vec![add]);
        assert_eq!(unit.inst_block(add), Some(bb));
        assert_eq!(unit.value_uses(a), vec![add]);

        unit.remove_inst(add);
        assert!(unit.insts(bb).is_empty());
        assert!(!unit.has_inst(add));
        assert!(!unit.has_value(result));
    }

    #[test]
    fn replace_value_uses() {
        let mut unit = simple_func();
        let bb = unit.create_block(None);
        let a = unit.arg_value(0);
        let b = unit.arg_value(1);
        let add = unit.append_inst(bb, InstData::new(Opcode::Add, vec![a, a]), Some(int_ty(32)));
        assert_eq!(unit.replace_value_uses(a, b), 2);
        assert_eq!(unit.inst_data(add).args, vec![b, b]);
    }

    #[test]
    fn terminator_detection() {
        let mut unit = simple_func();
        let bb0 = unit.create_block(None);
        let bb1 = unit.create_block(None);
        assert_eq!(unit.terminator(bb0), None);
        let mut br = InstData::new(Opcode::Br, vec![]);
        br.blocks = vec![bb1];
        let term = unit.append_inst(bb0, br, None);
        assert_eq!(unit.terminator(bb0), Some(term));
        let ret = unit.append_inst(bb1, InstData::new(Opcode::Ret, vec![]), None);
        assert_eq!(unit.terminator(bb1), Some(ret));
    }

    #[test]
    fn block_ordering_and_removal() {
        let mut unit = simple_func();
        let bb0 = unit.create_block(Some("a".into()));
        let bb2 = unit.create_block(Some("c".into()));
        let bb1 = unit.create_block_after(Some("b".into()), bb0);
        assert_eq!(unit.blocks(), vec![bb0, bb1, bb2]);
        assert_eq!(unit.entry_block(), Some(bb0));
        unit.remove_block(bb1);
        assert_eq!(unit.blocks(), vec![bb0, bb2]);
        assert!(!unit.has_block(bb1));
    }

    #[test]
    fn instruction_movement() {
        let mut unit = simple_func();
        let bb0 = unit.create_block(None);
        let bb1 = unit.create_block(None);
        let a = unit.arg_value(0);
        let add = unit.append_inst(bb0, InstData::new(Opcode::Add, vec![a, a]), Some(int_ty(32)));
        let ret = unit.append_inst(bb1, InstData::new(Opcode::Ret, vec![]), None);
        unit.move_inst_before_terminator(add, bb1);
        assert_eq!(unit.insts(bb0), vec![]);
        assert_eq!(unit.insts(bb1), vec![add, ret]);
        assert_eq!(unit.inst_block(add), Some(bb1));
        unit.move_inst_before(add, ret);
        assert_eq!(unit.insts(bb1), vec![add, ret]);
    }

    #[test]
    fn ext_unit_deduplication() {
        let mut unit = simple_func();
        let sig = Signature::new_func(vec![int_ty(32)], void_ty());
        let e1 = unit.add_ext_unit(UnitName::global("f"), sig.clone());
        let e2 = unit.add_ext_unit(UnitName::global("f"), sig.clone());
        let e3 = unit.add_ext_unit(UnitName::global("g"), sig);
        assert_eq!(e1, e2);
        assert_ne!(e1, e3);
        assert_eq!(unit.ext_unit_data(e3).name, UnitName::global("g"));
    }

    #[test]
    fn const_lookup() {
        let mut unit = simple_func();
        let bb = unit.create_block(None);
        let c = unit.append_inst(
            bb,
            InstData::constant(ConstValue::int(32, 42)),
            Some(int_ty(32)),
        );
        let v = unit.inst_result(c);
        assert_eq!(unit.get_const(v), Some(&ConstValue::int(32, 42)));
        assert_eq!(unit.get_const(unit.arg_value(0)), None);
    }

    #[test]
    fn value_naming() {
        let mut unit = simple_func();
        let a = unit.arg_value(0);
        assert_eq!(unit.value_display(a), "%0");
        unit.set_value_name(a, "x");
        assert_eq!(unit.value_name(a), Some("x"));
        assert_eq!(unit.value_display(a), "%x");
    }

    #[test]
    fn default_result_types() {
        let mut unit = simple_func();
        let _bb = unit.create_block(None);
        let a = unit.arg_value(0);
        assert_eq!(
            unit.default_result_type(Opcode::Add, &[a, a], &[], None, None),
            int_ty(32)
        );
        assert_eq!(
            unit.default_result_type(Opcode::Eq, &[a, a], &[], None, None),
            int_ty(1)
        );
        assert_eq!(
            unit.default_result_type(Opcode::Sig, &[a], &[], None, None),
            signal_ty(int_ty(32))
        );
        assert_eq!(
            unit.default_result_type(Opcode::Var, &[a], &[], None, None),
            pointer_ty(int_ty(32))
        );
        assert_eq!(
            unit.default_result_type(Opcode::Zext, &[a], &[64], None, None),
            int_ty(64)
        );
        assert_eq!(
            unit.default_result_type(
                Opcode::Const,
                &[],
                &[],
                Some(&ConstValue::int(8, 1)),
                None
            ),
            int_ty(8)
        );
    }
}
