//! Instructions and opcodes.

use super::{Block, ExtUnit, UnitKind, Value};
use crate::value::ConstValue;
use std::fmt;

/// The opcode of an LLHD instruction.
///
/// The set follows §2.5 of the paper: data flow operations familiar from
/// imperative compiler IRs, plus the hardware-specific instructions for
/// signals (`sig`, `prb`, `drv`), registers (`reg`), structure (`inst`,
/// `con`, `del`), time flow (`wait`, `halt`), and memory (`var`, `ld`, `st`,
/// `alloc`, `free`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Opcode {
    /// Materialize a constant value (integers, times, logic, aggregates).
    Const,
    /// An identity operation, giving a value a second name.
    Alias,
    /// Construct an array from element values.
    Array,
    /// Construct a struct from field values.
    Struct,

    /// Bitwise not.
    Not,
    /// Two's complement negation.
    Neg,

    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Signed multiplication.
    Smul,
    /// Signed division.
    Sdiv,
    /// Signed modulo.
    Smod,
    /// Signed remainder.
    Srem,
    /// Unsigned multiplication.
    Umul,
    /// Unsigned division.
    Udiv,
    /// Unsigned modulo.
    Umod,
    /// Unsigned remainder.
    Urem,

    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Neq,
    /// Signed less-than.
    Slt,
    /// Signed greater-than.
    Sgt,
    /// Signed less-than-or-equal.
    Sle,
    /// Signed greater-than-or-equal.
    Sge,
    /// Unsigned less-than.
    Ult,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned less-than-or-equal.
    Ule,
    /// Unsigned greater-than-or-equal.
    Uge,

    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,

    /// Zero extension to a wider integer (imm: target width).
    Zext,
    /// Sign extension to a wider integer (imm: target width).
    Sext,
    /// Truncation to a narrower integer (imm: target width).
    Trunc,

    /// Select one of several values based on a discriminator.
    Mux,
    /// A storage element (flip-flop or latch) with a list of triggers.
    Reg,

    /// Insert a single element or field into an aggregate (imm: index).
    InsField,
    /// Insert a slice of elements or bits (imms: offset, length).
    InsSlice,
    /// Extract a single element, field, or bit (imm: index). Also operates on
    /// pointers and signals, returning a pointer/signal to the projected
    /// location.
    ExtField,
    /// Extract a slice of elements or bits (imms: offset, length). Also
    /// operates on pointers and signals.
    ExtSlice,

    /// Create a new signal with an initial value.
    Sig,
    /// Probe the current value of a signal.
    Prb,
    /// Drive a new value onto a signal after a delay.
    Drv,
    /// Drive a new value onto a signal after a delay, gated by a condition.
    DrvCond,
    /// Connect two signals (netlist dialect).
    Con,
    /// A delayed version of a signal (netlist dialect).
    Del,

    /// Allocate a stack variable holding an initial value.
    Var,
    /// Load the value behind a pointer.
    Ld,
    /// Store a value behind a pointer.
    St,
    /// Allocate heap memory.
    Halloc,
    /// Free heap memory.
    Free,

    /// Call a function.
    Call,
    /// Return from a function without a value.
    Ret,
    /// Return a value from a function.
    RetValue,
    /// The SSA phi node.
    Phi,
    /// Unconditional branch.
    Br,
    /// Conditional branch.
    BrCond,
    /// Suspend the process until one of the observed signals changes.
    Wait,
    /// Suspend the process for a fixed amount of time, or until an observed
    /// signal changes.
    WaitTime,
    /// Suspend the process forever.
    Halt,

    /// Instantiate a process or entity within an entity.
    Inst,
}

impl Opcode {
    /// All opcodes, for exhaustive testing and bitcode tables.
    pub const ALL: [Opcode; 61] = [
        Opcode::Const,
        Opcode::Alias,
        Opcode::Array,
        Opcode::Struct,
        Opcode::Not,
        Opcode::Neg,
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Smul,
        Opcode::Sdiv,
        Opcode::Smod,
        Opcode::Srem,
        Opcode::Umul,
        Opcode::Udiv,
        Opcode::Umod,
        Opcode::Urem,
        Opcode::Eq,
        Opcode::Neq,
        Opcode::Slt,
        Opcode::Sgt,
        Opcode::Sle,
        Opcode::Sge,
        Opcode::Ult,
        Opcode::Ugt,
        Opcode::Ule,
        Opcode::Uge,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::Zext,
        Opcode::Sext,
        Opcode::Trunc,
        Opcode::Mux,
        Opcode::Reg,
        Opcode::InsField,
        Opcode::InsSlice,
        Opcode::ExtField,
        Opcode::ExtSlice,
        Opcode::Sig,
        Opcode::Prb,
        Opcode::Drv,
        Opcode::DrvCond,
        Opcode::Con,
        Opcode::Del,
        Opcode::Var,
        Opcode::Ld,
        Opcode::St,
        Opcode::Halloc,
        Opcode::Free,
        Opcode::Call,
        Opcode::Ret,
        Opcode::RetValue,
        Opcode::Phi,
        Opcode::Br,
        Opcode::BrCond,
        Opcode::Wait,
        Opcode::WaitTime,
        Opcode::Halt,
        Opcode::Inst,
    ];

    /// The mnemonic used in the human-readable assembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Const => "const",
            Opcode::Alias => "alias",
            Opcode::Array => "array",
            Opcode::Struct => "strct",
            Opcode::Not => "not",
            Opcode::Neg => "neg",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Smul => "smul",
            Opcode::Sdiv => "sdiv",
            Opcode::Smod => "smod",
            Opcode::Srem => "srem",
            Opcode::Umul => "umul",
            Opcode::Udiv => "udiv",
            Opcode::Umod => "umod",
            Opcode::Urem => "urem",
            Opcode::Eq => "eq",
            Opcode::Neq => "neq",
            Opcode::Slt => "slt",
            Opcode::Sgt => "sgt",
            Opcode::Sle => "sle",
            Opcode::Sge => "sge",
            Opcode::Ult => "ult",
            Opcode::Ugt => "ugt",
            Opcode::Ule => "ule",
            Opcode::Uge => "uge",
            Opcode::Shl => "shl",
            Opcode::Shr => "shr",
            Opcode::Zext => "zext",
            Opcode::Sext => "sext",
            Opcode::Trunc => "trunc",
            Opcode::Mux => "mux",
            Opcode::Reg => "reg",
            Opcode::InsField => "insf",
            Opcode::InsSlice => "inss",
            Opcode::ExtField => "extf",
            Opcode::ExtSlice => "exts",
            Opcode::Sig => "sig",
            Opcode::Prb => "prb",
            Opcode::Drv => "drv",
            Opcode::DrvCond => "drvc",
            Opcode::Con => "con",
            Opcode::Del => "del",
            Opcode::Var => "var",
            Opcode::Ld => "ld",
            Opcode::St => "st",
            Opcode::Halloc => "alloc",
            Opcode::Free => "free",
            Opcode::Call => "call",
            Opcode::Ret => "ret",
            Opcode::RetValue => "retv",
            Opcode::Phi => "phi",
            Opcode::Br => "br",
            Opcode::BrCond => "brc",
            Opcode::Wait => "wait",
            Opcode::WaitTime => "waitt",
            Opcode::Halt => "halt",
            Opcode::Inst => "inst",
        }
    }

    /// Look up an opcode by its assembly mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        Opcode::ALL.iter().copied().find(|op| op.mnemonic() == s)
    }

    /// Whether this instruction terminates a basic block.
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            Opcode::Br
                | Opcode::BrCond
                | Opcode::Wait
                | Opcode::WaitTime
                | Opcode::Halt
                | Opcode::Ret
                | Opcode::RetValue
        )
    }

    /// Whether this instruction produces a result value.
    pub fn has_result(self) -> bool {
        !matches!(
            self,
            Opcode::Drv
                | Opcode::DrvCond
                | Opcode::Con
                | Opcode::St
                | Opcode::Free
                | Opcode::Reg
                | Opcode::Ret
                | Opcode::RetValue
                | Opcode::Br
                | Opcode::BrCond
                | Opcode::Wait
                | Opcode::WaitTime
                | Opcode::Halt
                | Opcode::Inst
        )
    }

    /// Whether this is a phi node.
    pub fn is_phi(self) -> bool {
        self == Opcode::Phi
    }

    /// Whether this is a commutative binary operation.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Smul
                | Opcode::Umul
                | Opcode::Eq
                | Opcode::Neq
        )
    }

    /// Whether this is a comparison returning `i1`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            Opcode::Eq
                | Opcode::Neq
                | Opcode::Slt
                | Opcode::Sgt
                | Opcode::Sle
                | Opcode::Sge
                | Opcode::Ult
                | Opcode::Ugt
                | Opcode::Ule
                | Opcode::Uge
        )
    }

    /// Whether this is a pure data flow operation: no side effects, no
    /// interaction with signals, memory, time, or control flow. Pure
    /// instructions are safe to duplicate, hoist, and eliminate when unused.
    pub fn is_pure(self) -> bool {
        matches!(
            self,
            Opcode::Const
                | Opcode::Alias
                | Opcode::Array
                | Opcode::Struct
                | Opcode::Not
                | Opcode::Neg
                | Opcode::Add
                | Opcode::Sub
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Smul
                | Opcode::Sdiv
                | Opcode::Smod
                | Opcode::Srem
                | Opcode::Umul
                | Opcode::Udiv
                | Opcode::Umod
                | Opcode::Urem
                | Opcode::Eq
                | Opcode::Neq
                | Opcode::Slt
                | Opcode::Sgt
                | Opcode::Sle
                | Opcode::Sge
                | Opcode::Ult
                | Opcode::Ugt
                | Opcode::Ule
                | Opcode::Uge
                | Opcode::Shl
                | Opcode::Shr
                | Opcode::Zext
                | Opcode::Sext
                | Opcode::Trunc
                | Opcode::Mux
                | Opcode::InsField
                | Opcode::InsSlice
                | Opcode::ExtField
                | Opcode::ExtSlice
        )
    }

    /// Whether the instruction reads or writes signals, and therefore must
    /// not be moved across `wait` instructions.
    pub fn touches_signals(self) -> bool {
        matches!(
            self,
            Opcode::Sig | Opcode::Prb | Opcode::Drv | Opcode::DrvCond | Opcode::Con | Opcode::Del
        )
    }

    /// Whether the instruction is allowed to appear in a unit of the given
    /// kind.
    pub fn allowed_in(self, kind: UnitKind) -> bool {
        use Opcode::*;
        match kind {
            UnitKind::Function => !matches!(
                self,
                Sig | Prb
                    | Drv
                    | DrvCond
                    | Con
                    | Del
                    | Reg
                    | Wait
                    | WaitTime
                    | Halt
                    | Inst
            ),
            UnitKind::Process => !matches!(self, Ret | RetValue | Inst | Reg | Sig | Con | Del),
            UnitKind::Entity => {
                // Entities are pure data flow graphs: no control flow, no
                // memory, no suspension.
                self.is_pure()
                    || matches!(self, Sig | Prb | Drv | DrvCond | Con | Del | Reg | Inst | Call)
            }
        }
    }

    /// Whether the instruction is part of the Netlist LLHD dialect (§2.2):
    /// only signal creation, connection, delay, and instantiation.
    pub fn allowed_in_netlist(self) -> bool {
        matches!(
            self,
            Opcode::Sig | Opcode::Con | Opcode::Del | Opcode::Inst | Opcode::Const
        )
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// The trigger mode of one `reg` trigger (§2.5.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegMode {
    /// Store while the trigger is low.
    Low,
    /// Store while the trigger is high.
    High,
    /// Store on a rising edge.
    Rise,
    /// Store on a falling edge.
    Fall,
    /// Store on both edges.
    Both,
}

impl RegMode {
    /// The assembly keyword for this mode.
    pub fn keyword(self) -> &'static str {
        match self {
            RegMode::Low => "low",
            RegMode::High => "high",
            RegMode::Rise => "rise",
            RegMode::Fall => "fall",
            RegMode::Both => "both",
        }
    }

    /// Parse a mode from its assembly keyword.
    pub fn from_keyword(s: &str) -> Option<Self> {
        Some(match s {
            "low" => RegMode::Low,
            "high" => RegMode::High,
            "rise" => RegMode::Rise,
            "fall" => RegMode::Fall,
            "both" => RegMode::Both,
            _ => return None,
        })
    }

    /// Whether this mode describes an edge-sensitive (flip-flop) trigger
    /// rather than a level-sensitive (latch) trigger.
    pub fn is_edge(self) -> bool {
        matches!(self, RegMode::Rise | RegMode::Fall | RegMode::Both)
    }
}

impl fmt::Display for RegMode {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        write!(f, "{}", self.keyword())
    }
}

/// One trigger of a `reg` instruction: store `value` when `trigger` matches
/// `mode`, optionally gated by an `if` condition.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RegTrigger {
    /// The value stored when the trigger fires.
    pub value: Value,
    /// The trigger mode.
    pub mode: RegMode,
    /// The trigger signal or value observed.
    pub trigger: Value,
    /// An optional gating condition; the trigger is ignored when this is
    /// false.
    pub gate: Option<Value>,
}

/// The payload of an instruction.
///
/// A single struct covers all opcodes; the per-opcode meaning of `args`,
/// `blocks`, and `imms` is documented on [`Opcode`] and enforced by the
/// verifier and builder.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InstData {
    /// The operation.
    pub opcode: Opcode,
    /// Value operands.
    pub args: Vec<Value>,
    /// Block operands (branch targets, phi predecessor blocks).
    pub blocks: Vec<Block>,
    /// Immediate operands (field indices, slice offsets/lengths, widths).
    pub imms: Vec<usize>,
    /// The constant payload of a `const` instruction.
    pub konst: Option<ConstValue>,
    /// The external unit referenced by `call` and `inst`.
    pub ext_unit: Option<ExtUnit>,
    /// The triggers of a `reg` instruction.
    pub triggers: Vec<RegTrigger>,
    /// The number of input arguments of a `call`/`inst` (the remaining args
    /// are outputs).
    pub num_inputs: usize,
}

impl InstData {
    /// Create instruction data for an opcode with plain value operands.
    pub fn new(opcode: Opcode, args: Vec<Value>) -> Self {
        InstData {
            opcode,
            args,
            blocks: vec![],
            imms: vec![],
            konst: None,
            ext_unit: None,
            triggers: vec![],
            num_inputs: 0,
        }
    }

    /// Create a constant instruction.
    pub fn constant(value: ConstValue) -> Self {
        InstData {
            konst: Some(value),
            ..InstData::new(Opcode::Const, vec![])
        }
    }

    /// All values referenced by this instruction, including trigger values.
    pub fn all_args(&self) -> Vec<Value> {
        let mut out = self.args.clone();
        for t in &self.triggers {
            out.push(t.value);
            out.push(t.trigger);
            if let Some(g) = t.gate {
                out.push(g);
            }
        }
        out
    }

    /// Replace every use of `from` with `to` in the operands of this
    /// instruction. Returns the number of replacements.
    pub fn replace_value(&mut self, from: Value, to: Value) -> usize {
        let mut count = 0;
        for a in &mut self.args {
            if *a == from {
                *a = to;
                count += 1;
            }
        }
        for t in &mut self.triggers {
            if t.value == from {
                t.value = to;
                count += 1;
            }
            if t.trigger == from {
                t.trigger = to;
                count += 1;
            }
            if t.gate == Some(from) {
                t.gate = Some(to);
                count += 1;
            }
        }
        count
    }

    /// Replace every reference to block `from` with `to`. Returns the number
    /// of replacements.
    pub fn replace_block(&mut self, from: Block, to: Block) -> usize {
        let mut count = 0;
        for b in &mut self.blocks {
            if *b == from {
                *b = to;
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_roundtrip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op), "{:?}", op);
        }
        assert_eq!(Opcode::from_mnemonic("bogus"), None);
    }

    #[test]
    fn opcode_count_matches_all() {
        // Guard against forgetting to add new opcodes to ALL.
        let mut set = std::collections::HashSet::new();
        for op in Opcode::ALL {
            assert!(set.insert(op), "duplicate opcode {:?} in ALL", op);
        }
        assert_eq!(set.len(), Opcode::ALL.len());
    }

    #[test]
    fn terminators() {
        assert!(Opcode::Br.is_terminator());
        assert!(Opcode::Wait.is_terminator());
        assert!(Opcode::Halt.is_terminator());
        assert!(Opcode::Ret.is_terminator());
        assert!(!Opcode::Add.is_terminator());
        assert!(!Opcode::Drv.is_terminator());
    }

    #[test]
    fn results() {
        assert!(Opcode::Add.has_result());
        assert!(Opcode::Prb.has_result());
        assert!(Opcode::Sig.has_result());
        assert!(!Opcode::Drv.has_result());
        assert!(!Opcode::Halt.has_result());
        assert!(!Opcode::Inst.has_result());
    }

    #[test]
    fn purity_and_signal_interaction() {
        assert!(Opcode::Add.is_pure());
        assert!(Opcode::Mux.is_pure());
        assert!(!Opcode::Prb.is_pure());
        assert!(!Opcode::Call.is_pure());
        assert!(Opcode::Prb.touches_signals());
        assert!(!Opcode::Add.touches_signals());
    }

    #[test]
    fn unit_restrictions() {
        assert!(!Opcode::Prb.allowed_in(UnitKind::Function));
        assert!(!Opcode::Wait.allowed_in(UnitKind::Function));
        assert!(Opcode::Call.allowed_in(UnitKind::Function));
        assert!(Opcode::Ret.allowed_in(UnitKind::Function));
        assert!(Opcode::Wait.allowed_in(UnitKind::Process));
        assert!(!Opcode::Ret.allowed_in(UnitKind::Process));
        assert!(!Opcode::Inst.allowed_in(UnitKind::Process));
        assert!(Opcode::Inst.allowed_in(UnitKind::Entity));
        assert!(Opcode::Reg.allowed_in(UnitKind::Entity));
        assert!(!Opcode::Br.allowed_in(UnitKind::Entity));
        assert!(!Opcode::Wait.allowed_in(UnitKind::Entity));
    }

    #[test]
    fn netlist_subset() {
        assert!(Opcode::Sig.allowed_in_netlist());
        assert!(Opcode::Con.allowed_in_netlist());
        assert!(Opcode::Inst.allowed_in_netlist());
        assert!(!Opcode::Add.allowed_in_netlist());
        assert!(!Opcode::Reg.allowed_in_netlist());
    }

    #[test]
    fn reg_modes() {
        for m in [
            RegMode::Low,
            RegMode::High,
            RegMode::Rise,
            RegMode::Fall,
            RegMode::Both,
        ] {
            assert_eq!(RegMode::from_keyword(m.keyword()), Some(m));
        }
        assert!(RegMode::Rise.is_edge());
        assert!(!RegMode::High.is_edge());
        assert_eq!(RegMode::from_keyword("posedge"), None);
    }

    #[test]
    fn inst_data_replacement() {
        let mut data = InstData::new(Opcode::Add, vec![Value(1), Value(2)]);
        assert_eq!(data.replace_value(Value(1), Value(5)), 1);
        assert_eq!(data.args, vec![Value(5), Value(2)]);
        let mut br = InstData::new(Opcode::Br, vec![]);
        br.blocks = vec![Block(0), Block(1)];
        assert_eq!(br.replace_block(Block(1), Block(2)), 1);
        assert_eq!(br.blocks, vec![Block(0), Block(2)]);
    }

    #[test]
    fn all_args_includes_triggers() {
        let mut data = InstData::new(Opcode::Reg, vec![Value(0)]);
        data.triggers.push(RegTrigger {
            value: Value(1),
            mode: RegMode::Rise,
            trigger: Value(2),
            gate: Some(Value(3)),
        });
        let args = data.all_args();
        assert!(args.contains(&Value(0)));
        assert!(args.contains(&Value(1)));
        assert!(args.contains(&Value(2)));
        assert!(args.contains(&Value(3)));
    }
}
