//! In-memory size accounting for the Table 4 evaluation.
//!
//! The paper reports the in-memory footprint of a design's IR data
//! structures. These helpers compute a deterministic estimate of the heap
//! and inline memory occupied by a [`Module`], [`UnitData`], and their
//! constituents.

use super::{Module, UnitData};
use std::mem;

/// A breakdown of the in-memory footprint of a module or unit.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemoryReport {
    /// Bytes attributed to value descriptors.
    pub values: usize,
    /// Bytes attributed to instruction payloads.
    pub insts: usize,
    /// Bytes attributed to block layout bookkeeping.
    pub blocks: usize,
    /// Bytes attributed to types, names, signatures, and external unit
    /// declarations.
    pub metadata: usize,
}

impl MemoryReport {
    /// The total number of bytes.
    pub fn total(&self) -> usize {
        self.values + self.insts + self.blocks + self.metadata
    }
}

impl std::ops::Add for MemoryReport {
    type Output = MemoryReport;
    fn add(self, rhs: MemoryReport) -> MemoryReport {
        MemoryReport {
            values: self.values + rhs.values,
            insts: self.insts + rhs.insts,
            blocks: self.blocks + rhs.blocks,
            metadata: self.metadata + rhs.metadata,
        }
    }
}

/// Estimate the in-memory footprint of a unit.
pub fn unit_memory(unit: &UnitData) -> MemoryReport {
    let mut report = MemoryReport::default();
    for value in unit.values() {
        report.values += mem::size_of::<super::ValueData>();
        report.values += unit.value_type(value).memory_size();
        if let Some(name) = unit.value_name(value) {
            report.values += name.len();
        }
    }
    for inst in unit.all_insts() {
        let data = unit.inst_data(inst);
        report.insts += mem::size_of::<super::InstData>();
        report.insts += data.args.len() * mem::size_of::<super::Value>();
        report.insts += data.blocks.len() * mem::size_of::<super::Block>();
        report.insts += data.imms.len() * mem::size_of::<usize>();
        report.insts += data.triggers.len() * mem::size_of::<super::RegTrigger>();
        if let Some(k) = &data.konst {
            report.insts += k.memory_size();
        }
    }
    for block in unit.blocks() {
        report.blocks += mem::size_of::<super::BlockData>();
        report.blocks += unit.num_insts(block) * mem::size_of::<super::Inst>();
        if let Some(name) = unit.block_name(block) {
            report.blocks += name.len();
        }
    }
    report.metadata += mem::size_of::<UnitData>();
    report.metadata += unit.name().ident().map(|s| s.len()).unwrap_or(0);
    for ty in unit.sig().inputs().iter().chain(unit.sig().outputs()) {
        report.metadata += ty.memory_size();
    }
    for (_, ext) in unit.ext_units() {
        report.metadata += mem::size_of::<super::ExtUnitData>();
        report.metadata += ext.name.ident().map(|s| s.len()).unwrap_or(0);
    }
    report
}

/// Estimate the in-memory footprint of a whole module.
pub fn module_memory(module: &Module) -> MemoryReport {
    module
        .units()
        .into_iter()
        .map(|id| unit_memory(module.unit(id)))
        .fold(MemoryReport::default(), |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Signature, UnitBuilder, UnitKind, UnitName};
    use crate::ty::*;
    use crate::value::ConstValue;

    #[test]
    fn memory_grows_with_instructions() {
        let mut unit = UnitData::new(
            UnitKind::Function,
            UnitName::global("f"),
            Signature::new_func(vec![int_ty(32)], int_ty(32)),
        );
        let small = unit_memory(&unit).total();
        let a = unit.arg_value(0);
        let mut builder = UnitBuilder::new(&mut unit);
        let entry = builder.block("entry");
        builder.append_to(entry);
        let mut v = a;
        for i in 0..10 {
            let c = builder.ins_const(ConstValue::int(32, i));
            v = builder.add(v, c);
        }
        builder.ret_value(v);
        let big = unit_memory(&unit).total();
        assert!(big > small);
    }

    #[test]
    fn module_memory_sums_units() {
        let mut module = Module::new();
        let unit = UnitData::new(
            UnitKind::Entity,
            UnitName::global("top"),
            Signature::new_entity(vec![signal_ty(int_ty(1))], vec![]),
        );
        let single = {
            let mut m = Module::new();
            m.add_unit(unit.clone());
            module_memory(&m).total()
        };
        module.add_unit(unit.clone());
        module.add_unit(unit);
        assert_eq!(module_memory(&module).total(), 2 * single);
    }

    #[test]
    fn report_addition() {
        let a = MemoryReport {
            values: 1,
            insts: 2,
            blocks: 3,
            metadata: 4,
        };
        let b = a + a;
        assert_eq!(b.total(), 20);
    }
}
