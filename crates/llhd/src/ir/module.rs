//! Modules: collections of units plus external declarations.

use super::{Signature, UnitData, UnitId, UnitKind, UnitName};
use std::collections::HashMap;
use std::fmt;

/// An external unit declaration at module scope, or a `call`/`inst` target
/// within a unit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExtUnitData {
    /// The name of the referenced unit.
    pub name: UnitName,
    /// The expected signature of the referenced unit.
    pub sig: Signature,
}

/// An error produced when linking two modules.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LinkError {
    /// Two global units with the same name were defined in both modules.
    DuplicateDefinition(UnitName),
    /// A unit is referenced with a signature that does not match its
    /// definition.
    SignatureMismatch {
        /// The referenced unit.
        name: UnitName,
        /// The signature at the reference site.
        expected: Signature,
        /// The signature of the definition.
        found: Signature,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        match self {
            LinkError::DuplicateDefinition(name) => {
                write!(f, "duplicate definition of unit {}", name)
            }
            LinkError::SignatureMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "signature mismatch for {}: referenced as {} but defined as {}",
                name, expected, found
            ),
        }
    }
}

impl std::error::Error for LinkError {}

/// A single LLHD source text: a collection of functions, processes, and
/// entities.
///
/// # Examples
///
/// ```
/// use llhd::ir::{Module, UnitData, UnitKind, UnitName, Signature};
/// use llhd::ty::{signal_ty, int_ty};
/// let mut module = Module::new();
/// let sig = Signature::new_entity(vec![signal_ty(int_ty(1))], vec![]);
/// let unit = UnitData::new(UnitKind::Entity, UnitName::global("top"), sig);
/// let id = module.add_unit(unit);
/// assert_eq!(module.unit(id).name(), &UnitName::global("top"));
/// ```
#[derive(Clone, Default, Debug)]
pub struct Module {
    units: Vec<Option<UnitData>>,
}

impl Module {
    /// Create an empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Add a unit to the module, returning its handle.
    pub fn add_unit(&mut self, data: UnitData) -> UnitId {
        let id = UnitId::from_index(self.units.len());
        self.units.push(Some(data));
        id
    }

    /// Remove a unit from the module.
    pub fn remove_unit(&mut self, unit: UnitId) {
        self.units[unit.index()] = None;
    }

    /// Access a unit.
    ///
    /// # Panics
    ///
    /// Panics if the unit has been removed.
    pub fn unit(&self, unit: UnitId) -> &UnitData {
        self.units[unit.index()]
            .as_ref()
            .expect("unit has been removed")
    }

    /// Mutable access to a unit.
    ///
    /// # Panics
    ///
    /// Panics if the unit has been removed.
    pub fn unit_mut(&mut self, unit: UnitId) -> &mut UnitData {
        self.units[unit.index()]
            .as_mut()
            .expect("unit has been removed")
    }

    /// Whether the handle refers to a live unit.
    pub fn has_unit(&self, unit: UnitId) -> bool {
        unit.index() < self.units.len() && self.units[unit.index()].is_some()
    }

    /// The handles of all live units.
    pub fn units(&self) -> Vec<UnitId> {
        self.units
            .iter()
            .enumerate()
            .filter(|(_, u)| u.is_some())
            .map(|(i, _)| UnitId::from_index(i))
            .collect()
    }

    /// The number of live units.
    pub fn num_units(&self) -> usize {
        self.units.iter().filter(|u| u.is_some()).count()
    }

    /// Find a unit by name.
    pub fn unit_by_name(&self, name: &UnitName) -> Option<UnitId> {
        self.units().into_iter().find(|&id| self.unit(id).name() == name)
    }

    /// Find a unit by its bare global identifier (e.g. `"acc"` for `@acc`).
    pub fn unit_by_ident(&self, ident: &str) -> Option<UnitId> {
        self.units()
            .into_iter()
            .find(|&id| self.unit(id).name().ident() == Some(ident))
    }

    /// Units of a particular kind.
    pub fn units_of_kind(&self, kind: UnitKind) -> Vec<UnitId> {
        self.units()
            .into_iter()
            .filter(|&id| self.unit(id).kind() == kind)
            .collect()
    }

    /// Link another module into this one.
    ///
    /// Global names must be unique across both modules. References to
    /// external units are checked against the definitions available after
    /// linking; a mismatch in signature is an error.
    ///
    /// # Errors
    ///
    /// Returns [`LinkError::DuplicateDefinition`] if both modules define a
    /// global unit of the same name, and [`LinkError::SignatureMismatch`] if
    /// a reference's signature disagrees with the linked definition.
    // Link errors clone names and signatures for diagnostics; linking is a
    // cold path, so the large `Err` variant is fine (clippy::result_large_err).
    #[allow(clippy::result_large_err)]
    pub fn link(&mut self, other: Module) -> Result<(), LinkError> {
        let mut names: HashMap<UnitName, Signature> = HashMap::new();
        for &id in &self.units() {
            let unit = self.unit(id);
            if unit.name().is_global() {
                names.insert(unit.name().clone(), unit.sig().clone());
            }
        }
        for id in other.units() {
            let unit = other.unit(id);
            if unit.name().is_global() {
                if names.contains_key(unit.name()) {
                    return Err(LinkError::DuplicateDefinition(unit.name().clone()));
                }
                names.insert(unit.name().clone(), unit.sig().clone());
            }
        }
        for id in other.units() {
            self.add_unit(other.unit(id).clone());
        }
        self.check_references()
    }

    /// Verify that every `call`/`inst` reference to a global unit matches the
    /// signature of its definition in this module.
    #[allow(clippy::result_large_err)] // see `link`
    pub fn check_references(&self) -> Result<(), LinkError> {
        let mut defs: HashMap<UnitName, Signature> = HashMap::new();
        for &id in &self.units() {
            let unit = self.unit(id);
            defs.insert(unit.name().clone(), unit.sig().clone());
        }
        for &id in &self.units() {
            let unit = self.unit(id);
            for (_, ext) in unit.ext_units() {
                if let Some(def_sig) = defs.get(&ext.name) {
                    if def_sig != &ext.sig {
                        return Err(LinkError::SignatureMismatch {
                            name: ext.name.clone(),
                            expected: ext.sig.clone(),
                            found: def_sig.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::*;

    fn entity(name: &str) -> UnitData {
        UnitData::new(
            UnitKind::Entity,
            UnitName::global(name),
            Signature::new_entity(vec![signal_ty(int_ty(1))], vec![]),
        )
    }

    #[test]
    fn add_lookup_remove() {
        let mut m = Module::new();
        let a = m.add_unit(entity("a"));
        let b = m.add_unit(entity("b"));
        assert_eq!(m.num_units(), 2);
        assert_eq!(m.unit_by_name(&UnitName::global("b")), Some(b));
        assert_eq!(m.unit_by_ident("a"), Some(a));
        assert_eq!(m.unit_by_ident("missing"), None);
        m.remove_unit(a);
        assert_eq!(m.num_units(), 1);
        assert!(!m.has_unit(a));
        assert!(m.has_unit(b));
    }

    #[test]
    fn units_of_kind() {
        let mut m = Module::new();
        m.add_unit(entity("a"));
        m.add_unit(UnitData::new(
            UnitKind::Function,
            UnitName::global("f"),
            Signature::new_func(vec![], void_ty()),
        ));
        assert_eq!(m.units_of_kind(UnitKind::Entity).len(), 1);
        assert_eq!(m.units_of_kind(UnitKind::Function).len(), 1);
        assert_eq!(m.units_of_kind(UnitKind::Process).len(), 0);
    }

    #[test]
    fn linking_merges_units() {
        let mut a = Module::new();
        a.add_unit(entity("a"));
        let mut b = Module::new();
        b.add_unit(entity("b"));
        a.link(b).unwrap();
        assert_eq!(a.num_units(), 2);
        assert!(a.unit_by_ident("b").is_some());
    }

    #[test]
    fn linking_detects_duplicates() {
        let mut a = Module::new();
        a.add_unit(entity("dup"));
        let mut b = Module::new();
        b.add_unit(entity("dup"));
        assert_eq!(
            a.link(b),
            Err(LinkError::DuplicateDefinition(UnitName::global("dup")))
        );
    }

    #[test]
    fn reference_signature_check() {
        let mut m = Module::new();
        let mut top = entity("top");
        // Reference @child with a mismatched signature.
        top.add_ext_unit(
            UnitName::global("child"),
            Signature::new_entity(vec![signal_ty(int_ty(8))], vec![]),
        );
        m.add_unit(top);
        m.add_unit(entity("child"));
        assert!(matches!(
            m.check_references(),
            Err(LinkError::SignatureMismatch { .. })
        ));
    }
}
