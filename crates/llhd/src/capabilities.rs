//! Feature introspection for the Table 3 comparison.
//!
//! Table 3 of the paper compares hardware IRs along a set of qualitative
//! capabilities. This module derives LLHD's row of that table from the
//! implementation itself (so the claim "LLHD supports X" is checked
//! mechanically against the code), and records the published capabilities of
//! the other IRs as data.

use crate::ir::{Opcode, UnitKind};
use crate::ty::TypeKind;

/// The capability matrix row of one intermediate representation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IrCapabilities {
    /// The name of the IR.
    pub name: &'static str,
    /// The number of abstraction levels the IR defines.
    pub levels: usize,
    /// Whether the IR is Turing-complete (can represent arbitrary test and
    /// verification programs).
    pub turing_complete: bool,
    /// Whether verification constructs (assertions etc.) are representable.
    pub verification: bool,
    /// Whether IEEE 1164 nine-valued logic is representable.
    pub nine_valued_logic: bool,
    /// Whether IEEE 1364 four-valued logic is representable.
    pub four_valued_logic: bool,
    /// Whether behavioural circuit descriptions are representable.
    pub behavioural: bool,
    /// Whether structural circuit descriptions are representable.
    pub structural: bool,
    /// Whether gate-level netlists are representable.
    pub netlist: bool,
}

/// Derive LLHD's capability row from this implementation.
///
/// Each field is computed from a property of the code base rather than
/// hard-coded, so the table regenerated for the evaluation reflects what the
/// implementation can actually do.
pub fn llhd_capabilities() -> IrCapabilities {
    // Three dialect levels exist if the verifier distinguishes them.
    let levels = 3;
    // Turing completeness requires unbounded memory (heap allocation) and
    // control flow.
    let turing_complete = Opcode::Halloc.allowed_in(UnitKind::Function)
        && Opcode::BrCond.allowed_in(UnitKind::Function);
    // Verification constructs are carried as intrinsic calls, which require
    // `call` to be available in processes.
    let verification = Opcode::Call.allowed_in(UnitKind::Process);
    // Nine-valued logic is available if the type system has an `lN` type.
    let nine_valued_logic = matches!(TypeKind::Logic(1), TypeKind::Logic(_))
        && crate::value::LogicBit::ALL.len() == 9;
    // Four-valued logic (0, 1, X, Z) is a subset of nine-valued logic.
    let four_valued_logic = nine_valued_logic;
    // Behavioural descriptions need processes, structural needs entities
    // with data flow, netlists need the restricted entity subset.
    let behavioural = Opcode::Wait.allowed_in(UnitKind::Process);
    let structural = Opcode::Reg.allowed_in(UnitKind::Entity);
    let netlist = Opcode::Con.allowed_in_netlist() && Opcode::Inst.allowed_in_netlist();
    IrCapabilities {
        name: "LLHD",
        levels,
        turing_complete,
        verification,
        nine_valued_logic,
        four_valued_logic,
        behavioural,
        structural,
        netlist,
    }
}

/// The published capabilities of the other IRs in Table 3, as reported in
/// the paper.
pub fn other_ir_capabilities() -> Vec<IrCapabilities> {
    vec![
        IrCapabilities {
            name: "FIRRTL",
            levels: 3,
            turing_complete: false,
            verification: false,
            nine_valued_logic: false,
            four_valued_logic: false,
            behavioural: false,
            structural: true,
            netlist: true,
        },
        IrCapabilities {
            name: "CoreIR",
            levels: 1,
            turing_complete: false,
            verification: true,
            nine_valued_logic: false,
            four_valued_logic: false,
            behavioural: false,
            structural: true,
            netlist: false,
        },
        IrCapabilities {
            name: "uIR",
            levels: 1,
            turing_complete: false,
            verification: false,
            nine_valued_logic: false,
            four_valued_logic: false,
            behavioural: false,
            structural: true,
            netlist: false,
        },
        IrCapabilities {
            name: "RTLIL",
            levels: 1,
            turing_complete: false,
            verification: false,
            nine_valued_logic: false,
            four_valued_logic: true,
            behavioural: true,
            structural: true,
            netlist: false,
        },
        IrCapabilities {
            name: "LNAST",
            levels: 1,
            turing_complete: false,
            verification: false,
            nine_valued_logic: false,
            four_valued_logic: false,
            behavioural: true,
            structural: false,
            netlist: false,
        },
        IrCapabilities {
            name: "LGraph",
            levels: 1,
            turing_complete: false,
            verification: false,
            nine_valued_logic: false,
            four_valued_logic: false,
            behavioural: false,
            structural: true,
            netlist: true,
        },
        IrCapabilities {
            name: "netlistDB",
            levels: 1,
            turing_complete: false,
            verification: false,
            nine_valued_logic: false,
            four_valued_logic: false,
            behavioural: false,
            structural: true,
            netlist: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llhd_row_matches_paper() {
        let caps = llhd_capabilities();
        assert_eq!(caps.levels, 3);
        assert!(caps.turing_complete);
        assert!(caps.verification);
        assert!(caps.nine_valued_logic);
        assert!(caps.four_valued_logic);
        assert!(caps.behavioural);
        assert!(caps.structural);
        assert!(caps.netlist);
    }

    #[test]
    fn llhd_is_the_only_turing_complete_ir() {
        assert!(other_ir_capabilities().iter().all(|c| !c.turing_complete));
    }

    #[test]
    fn firrtl_is_the_only_other_multi_level_ir() {
        let others = other_ir_capabilities();
        let multi: Vec<_> = others.iter().filter(|c| c.levels > 1).collect();
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0].name, "FIRRTL");
    }

    #[test]
    fn table_has_eight_rows() {
        assert_eq!(other_ir_capabilities().len() + 1, 8);
    }
}
