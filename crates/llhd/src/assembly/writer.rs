//! Emission of the human-readable LLHD assembly.

use crate::ir::{Block, Inst, Module, Opcode, UnitData, UnitKind, Value};
use crate::value::ConstValue;
use std::fmt::Write;

/// Write a whole module as LLHD assembly.
pub fn write_module(module: &Module) -> String {
    let mut out = String::new();
    for (i, id) in module.units().into_iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&write_unit(module.unit(id)));
    }
    out
}

/// Write a single unit as LLHD assembly.
pub fn write_unit(unit: &UnitData) -> String {
    let mut w = Writer::new(unit);
    w.write();
    w.out
}

struct Writer<'a> {
    unit: &'a UnitData,
    out: String,
}

impl<'a> Writer<'a> {
    fn new(unit: &'a UnitData) -> Self {
        Writer {
            unit,
            out: String::new(),
        }
    }

    fn value_name(&self, value: Value) -> String {
        match self.unit.value_name(value) {
            Some(name) => format!("%{}", name),
            None => format!("%v{}", value.index()),
        }
    }

    fn block_name(&self, block: Block) -> String {
        match self.unit.block_name(block) {
            Some(name) => format!("%{}", name),
            None => format!("%bb{}", block.index()),
        }
    }

    fn block_label(&self, block: Block) -> String {
        match self.unit.block_name(block) {
            Some(name) => name.to_string(),
            None => format!("bb{}", block.index()),
        }
    }

    fn write(&mut self) {
        let unit = self.unit;
        let kind = unit.kind();
        write!(self.out, "{} {} (", kind.keyword(), unit.name()).unwrap();
        let inputs = unit.input_args();
        for (i, &arg) in inputs.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            write!(
                self.out,
                "{} {}",
                unit.value_type(arg),
                self.value_name(arg)
            )
            .unwrap();
        }
        self.out.push(')');
        match kind {
            UnitKind::Function => {
                write!(self.out, " {}", unit.sig().return_type()).unwrap();
            }
            UnitKind::Process | UnitKind::Entity => {
                self.out.push_str(" -> (");
                let outputs = unit.output_args();
                for (i, &arg) in outputs.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    write!(
                        self.out,
                        "{} {}",
                        unit.value_type(arg),
                        self.value_name(arg)
                    )
                    .unwrap();
                }
                self.out.push(')');
            }
        }
        self.out.push_str(" {\n");
        for block in unit.blocks() {
            if kind.is_control_flow() {
                writeln!(self.out, "{}:", self.block_label(block)).unwrap();
            }
            for inst in unit.insts(block) {
                self.out.push_str("    ");
                self.write_inst(inst);
                self.out.push('\n');
            }
        }
        self.out.push_str("}\n");
    }

    fn write_inst(&mut self, inst: Inst) {
        let unit = self.unit;
        let data = unit.inst_data(inst).clone();
        if let Some(result) = unit.get_inst_result(inst) {
            write!(self.out, "{} = ", self.value_name(result)).unwrap();
        }
        let op = data.opcode;
        let arg_ty = |i: usize| unit.value_type(data.args[i]).to_string();
        match op {
            Opcode::Const => {
                let konst = data.konst.as_ref().unwrap();
                match konst {
                    ConstValue::Time(t) => write!(self.out, "const time {}", t).unwrap(),
                    ConstValue::Int(v) => {
                        write!(self.out, "const i{} {}", v.width(), v.to_string_unsigned())
                            .unwrap()
                    }
                    ConstValue::Logic(v) => {
                        write!(self.out, "const l{} \"{}\"", v.width(), v).unwrap()
                    }
                    ConstValue::Enum { states, value } => {
                        write!(self.out, "const n{} {}", states, value).unwrap()
                    }
                    other => write!(self.out, "const {} {}", other.ty(), other).unwrap(),
                }
            }
            Opcode::Array => {
                write!(self.out, "array [").unwrap();
                self.write_arg_list(&data.args);
                self.out.push(']');
            }
            Opcode::Struct => {
                write!(self.out, "strct {{").unwrap();
                self.write_arg_list(&data.args);
                self.out.push('}');
            }
            Opcode::Phi => {
                write!(self.out, "phi {} ", arg_ty(0)).unwrap();
                for (i, (&v, &b)) in data.args.iter().zip(data.blocks.iter()).enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    write!(self.out, "[{}, {}]", self.value_name(v), self.block_name(b)).unwrap();
                }
            }
            Opcode::Br => {
                write!(self.out, "br {}", self.block_name(data.blocks[0])).unwrap();
            }
            Opcode::BrCond => {
                write!(
                    self.out,
                    "br {}, {}, {}",
                    self.value_name(data.args[0]),
                    self.block_name(data.blocks[0]),
                    self.block_name(data.blocks[1])
                )
                .unwrap();
            }
            Opcode::Wait => {
                write!(self.out, "wait {}", self.block_name(data.blocks[0])).unwrap();
                if !data.args.is_empty() {
                    self.out.push_str(", ");
                    self.write_arg_list(&data.args);
                }
            }
            Opcode::WaitTime => {
                write!(
                    self.out,
                    "wait {} for {}",
                    self.block_name(data.blocks[0]),
                    self.value_name(data.args[0])
                )
                .unwrap();
                if data.args.len() > 1 {
                    self.out.push_str(", ");
                    self.write_arg_list(&data.args[1..]);
                }
            }
            Opcode::Halt => self.out.push_str("halt"),
            Opcode::Ret => self.out.push_str("ret"),
            Opcode::RetValue => {
                write!(
                    self.out,
                    "ret {} {}",
                    arg_ty(0),
                    self.value_name(data.args[0])
                )
                .unwrap();
            }
            Opcode::Drv => {
                write!(
                    self.out,
                    "drv {} {}, {} after {}",
                    arg_ty(0),
                    self.value_name(data.args[0]),
                    self.value_name(data.args[1]),
                    self.value_name(data.args[2])
                )
                .unwrap();
            }
            Opcode::DrvCond => {
                write!(
                    self.out,
                    "drv {} {}, {} after {} if {}",
                    arg_ty(0),
                    self.value_name(data.args[0]),
                    self.value_name(data.args[1]),
                    self.value_name(data.args[2]),
                    self.value_name(data.args[3])
                )
                .unwrap();
            }
            Opcode::Reg => {
                write!(
                    self.out,
                    "reg {} {}",
                    arg_ty(0),
                    self.value_name(data.args[0])
                )
                .unwrap();
                for trigger in &data.triggers {
                    write!(
                        self.out,
                        ", {} {} {}",
                        self.value_name(trigger.value),
                        trigger.mode,
                        self.value_name(trigger.trigger)
                    )
                    .unwrap();
                    if let Some(gate) = trigger.gate {
                        write!(self.out, " if {}", self.value_name(gate)).unwrap();
                    }
                }
            }
            Opcode::Call => {
                let ext = data.ext_unit.unwrap();
                let ext_data = unit.ext_unit_data(ext);
                write!(
                    self.out,
                    "call {} {} (",
                    ext_data.sig.return_type(),
                    ext_data.name
                )
                .unwrap();
                self.write_arg_list(&data.args);
                self.out.push(')');
            }
            Opcode::Inst => {
                let ext = data.ext_unit.unwrap();
                let ext_data = unit.ext_unit_data(ext);
                write!(self.out, "inst {} (", ext_data.name).unwrap();
                self.write_arg_list(&data.args[..data.num_inputs]);
                self.out.push_str(") -> (");
                self.write_arg_list(&data.args[data.num_inputs..]);
                self.out.push(')');
            }
            Opcode::ExtField => {
                write!(
                    self.out,
                    "extf {} {}, {}",
                    arg_ty(0),
                    self.value_name(data.args[0]),
                    data.imms[0]
                )
                .unwrap();
            }
            Opcode::ExtSlice => {
                write!(
                    self.out,
                    "exts {} {}, {}, {}",
                    arg_ty(0),
                    self.value_name(data.args[0]),
                    data.imms[0],
                    data.imms[1]
                )
                .unwrap();
            }
            Opcode::InsField => {
                write!(
                    self.out,
                    "insf {} {}, {}, {}",
                    arg_ty(0),
                    self.value_name(data.args[0]),
                    self.value_name(data.args[1]),
                    data.imms[0]
                )
                .unwrap();
            }
            Opcode::InsSlice => {
                write!(
                    self.out,
                    "inss {} {}, {}, {}, {}",
                    arg_ty(0),
                    self.value_name(data.args[0]),
                    self.value_name(data.args[1]),
                    data.imms[0],
                    data.imms[1]
                )
                .unwrap();
            }
            Opcode::Zext | Opcode::Sext | Opcode::Trunc => {
                write!(
                    self.out,
                    "{} i{} {}",
                    op.mnemonic(),
                    data.imms[0],
                    self.value_name(data.args[0])
                )
                .unwrap();
            }
            _ => {
                // Generic form: mnemonic, type of first operand, operand list.
                write!(self.out, "{}", op.mnemonic()).unwrap();
                if !data.args.is_empty() {
                    write!(self.out, " {} ", arg_ty(0)).unwrap();
                    self.write_arg_list(&data.args);
                }
            }
        }
    }

    fn write_arg_list(&mut self, args: &[Value]) {
        let names: Vec<String> = args.iter().map(|&a| self.value_name(a)).collect();
        self.out.push_str(&names.join(", "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{RegMode, RegTrigger, Signature, UnitBuilder, UnitName};
    use crate::ty::*;
    use crate::value::TimeValue;

    #[test]
    fn write_simple_function() {
        let mut unit = UnitData::new(
            UnitKind::Function,
            UnitName::global("check"),
            Signature::new_func(vec![int_ty(32), int_ty(32)], void_ty()),
        );
        let a = unit.arg_value(0);
        let b = unit.arg_value(1);
        unit.set_value_name(a, "i");
        unit.set_value_name(b, "q");
        let mut builder = UnitBuilder::new(&mut unit);
        let entry = builder.block("entry");
        builder.append_to(entry);
        let one = builder.const_int(32, 1);
        let sum = builder.add(a, one);
        let eq = builder.eq(sum, b);
        builder.unit_mut().set_value_name(eq, "matches");
        builder.ret();
        let text = write_unit(&unit);
        assert!(text.contains("func @check (i32 %i, i32 %q) void {"));
        assert!(text.contains("entry:"));
        assert!(text.contains("const i32 1"));
        assert!(text.contains("add i32 %i,"));
        assert!(text.contains("%matches = eq i32"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn write_process_with_waits_and_drives() {
        let mut unit = UnitData::new(
            UnitKind::Process,
            UnitName::global("stim"),
            Signature::new_entity(vec![signal_ty(int_ty(1))], vec![signal_ty(int_ty(32))]),
        );
        let clk = unit.arg_value(0);
        let q = unit.arg_value(1);
        unit.set_value_name(clk, "clk");
        unit.set_value_name(q, "q");
        let mut builder = UnitBuilder::new(&mut unit);
        let entry = builder.block("entry");
        builder.append_to(entry);
        let delay = builder.const_time(TimeValue::from_nanos(2));
        let value = builder.const_int(32, 7);
        builder.drv(q, value, delay);
        builder.wait_time(entry, delay, vec![clk]);
        let text = write_unit(&unit);
        assert!(text.contains("proc @stim (i1$ %clk) -> (i32$ %q) {"));
        assert!(text.contains("const time 2ns"));
        assert!(text.contains("drv i32$ %q,"));
        assert!(text.contains("after"));
        assert!(text.contains("wait %entry for"));
    }

    #[test]
    fn write_entity_with_reg_and_inst() {
        let mut unit = UnitData::new(
            UnitKind::Entity,
            UnitName::global("acc"),
            Signature::new_entity(
                vec![signal_ty(int_ty(1)), signal_ty(int_ty(32))],
                vec![signal_ty(int_ty(32))],
            ),
        );
        for (i, n) in ["clk", "x", "q"].iter().enumerate() {
            let v = unit.arg_value(i);
            unit.set_value_name(v, *n);
        }
        let clk = unit.arg_value(0);
        let x = unit.arg_value(1);
        let q = unit.arg_value(2);
        let mut builder = UnitBuilder::new(&mut unit);
        let clkp = builder.prb(clk);
        let xp = builder.prb(x);
        builder.reg(
            q,
            vec![RegTrigger {
                value: xp,
                mode: RegMode::Rise,
                trigger: clkp,
                gate: None,
            }],
        );
        let ext = builder.ext_unit(
            UnitName::global("sub"),
            Signature::new_entity(vec![signal_ty(int_ty(1))], vec![signal_ty(int_ty(32))]),
        );
        builder.inst(ext, vec![clk], vec![q]);
        let text = write_unit(&unit);
        assert!(text.contains("entity @acc (i1$ %clk, i32$ %x) -> (i32$ %q) {"));
        assert!(text.contains("reg i32$ %q,"));
        assert!(text.contains("rise"));
        assert!(text.contains("inst @sub ("));
        assert!(text.contains(") -> ("));
        // Entities have no block labels.
        assert!(!text.contains("body:"));
    }

    #[test]
    fn write_module_concatenates_units() {
        let mut module = Module::new();
        for name in ["a", "b"] {
            let unit = UnitData::new(
                UnitKind::Entity,
                UnitName::global(name),
                Signature::new_entity(vec![], vec![]),
            );
            module.add_unit(unit);
        }
        let text = write_module(&module);
        assert!(text.contains("entity @a"));
        assert!(text.contains("entity @b"));
    }
}
