//! The human-readable representation of LLHD.
//!
//! LLHD has three equivalent representations: in-memory, human-readable
//! text, and binary bitcode (§2). This module implements the text form:
//! [`write_module`]/[`write_unit`] produce it, [`parse_module`] reads it
//! back. The syntax follows the paper's examples (Figure 2 and Figure 5).
//!
//! ```
//! use llhd::assembly::{parse_module, write_module};
//!
//! let source = r#"
//! func @add_two (i32 %a, i32 %b) i32 {
//! entry:
//!     %sum = add i32 %a, %b
//!     ret i32 %sum
//! }
//! "#;
//! let module = parse_module(source).unwrap();
//! let printed = write_module(&module);
//! let reparsed = parse_module(&printed).unwrap();
//! assert_eq!(write_module(&reparsed), printed);
//! ```

mod reader;
mod writer;

pub use reader::{parse_module, parse_time_literal, ParseError};
pub use writer::{write_module, write_unit};
