//! Parsing of the human-readable LLHD assembly.

use crate::ir::{
    Block, InstData, Module, Opcode, RegMode, RegTrigger, Signature, UnitBuilder, UnitData,
    UnitKind, UnitName, Value,
};
use crate::ty::{self, Type};
use crate::value::{parse_time, ApInt, ConstValue, LogicVector};
use std::collections::HashMap;
use std::fmt;

/// An error produced while parsing LLHD assembly.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// The 1-based line on which the error occurred.
    pub line: usize,
    /// A description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a time literal such as `1ns` or `500ps 2d`.
pub fn parse_time_literal(s: &str) -> Option<crate::value::TimeValue> {
    parse_time(s)
}

/// Parse a module from LLHD assembly text.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax or semantic problem
/// encountered.
pub fn parse_module(input: &str) -> Result<Module, ParseError> {
    let tokens = lex(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        module: Module::new(),
    };
    while !parser.at_end() {
        parser.parse_unit()?;
    }
    Ok(parser.module)
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

/// A token borrowing its text from the input. Lexing allocates nothing per
/// token — parsing a module allocates names only at the point where the
/// parser interns them into the unit (value/block name maps), which is the
/// hot path of `parse_module` on large modules.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Tok<'a> {
    /// A bare identifier or keyword (`func`, `add`, `i32`, `entry`, `1ns`).
    Ident(&'a str),
    /// A global name `@foo`.
    Global(&'a str),
    /// A local name `%foo`.
    Local(&'a str),
    /// An integer literal.
    Number(&'a str),
    /// A quoted string literal (without quotes).
    Str(&'a str),
    /// Punctuation.
    Punct(char),
}

#[derive(Clone, Copy, Debug)]
struct Token<'a> {
    tok: Tok<'a>,
    line: usize,
}

/// Scan a name/identifier run starting at `start`, returning its end. The
/// ASCII hot path is a byte scan; embedded non-ASCII characters are
/// accepted iff they are unicode-alphanumeric (matching the previous
/// char-based lexer).
fn scan_name(input: &str, start: usize) -> usize {
    let bytes = input.as_bytes();
    let mut end = start;
    while end < bytes.len() {
        let b = bytes[end];
        if b < 0x80 {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
                end += 1;
            } else {
                break;
            }
        } else {
            let c = input[end..].chars().next().unwrap();
            if c.is_alphanumeric() {
                end += c.len_utf8();
            } else {
                break;
            }
        }
    }
    end
}

fn lex(input: &str) -> Result<Vec<Token<'_>>, ParseError> {
    let bytes = input.as_bytes();
    // Pre-size for the common token density so the vector does not
    // repeatedly regrow while lexing multi-hundred-kilobyte modules.
    let mut tokens = Vec::with_capacity(input.len() / 4);
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b';' => {
                // Comment until end of line (the newline itself is handled
                // by the next iteration, which counts the line).
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'@' | b'%' => {
                let end = scan_name(input, i + 1);
                if end == i + 1 {
                    return Err(ParseError {
                        line,
                        message: format!("expected name after '{}'", c as char),
                    });
                }
                let name = &input[i + 1..end];
                let tok = if c == b'@' {
                    Tok::Global(name)
                } else {
                    Tok::Local(name)
                };
                tokens.push(Token { tok, line });
                i = end;
            }
            b'"' => {
                let start = i + 1;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'"' {
                    end += 1;
                }
                if end >= bytes.len() {
                    return Err(ParseError {
                        line,
                        message: "unterminated string literal".to_string(),
                    });
                }
                tokens.push(Token {
                    tok: Tok::Str(&input[start..end]),
                    line,
                });
                i = end + 1;
            }
            b'0'..=b'9' => {
                // A literal like `1ns` stays one token; pure digits are a
                // number. Name characters `_`/`.` terminate the run, like
                // the char-based lexer's `is_alphanumeric` did.
                let mut end = i;
                let mut all_digits = true;
                while end < bytes.len() {
                    let b = bytes[end];
                    if b < 0x80 {
                        if b.is_ascii_alphanumeric() {
                            all_digits &= b.is_ascii_digit();
                            end += 1;
                        } else {
                            break;
                        }
                    } else {
                        let ch = input[end..].chars().next().unwrap();
                        if ch.is_alphanumeric() {
                            all_digits = false;
                            end += ch.len_utf8();
                        } else {
                            break;
                        }
                    }
                }
                let text = &input[i..end];
                let tok = if all_digits {
                    Tok::Number(text)
                } else {
                    Tok::Ident(text)
                };
                tokens.push(Token { tok, line });
                i = end;
            }
            b'-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        tok: Tok::Punct('>'),
                        line,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        tok: Tok::Punct('-'),
                        line,
                    });
                    i += 1;
                }
            }
            // NB: `x` is intentionally absent — it lexes as an identifier
            // (`xor`, `%xp`, the `x` of array types), never as punctuation.
            b'(' | b')' | b'{' | b'}' | b'[' | b']' | b',' | b':' | b'=' | b'$' | b'*' => {
                tokens.push(Token {
                    tok: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
            _ => {
                // Identifier start, unicode whitespace, or garbage —
                // decode one char to decide (cold path).
                let ch = input[i..].chars().next().unwrap();
                if ch.is_alphabetic() || ch == '_' {
                    let end = scan_name(input, i);
                    tokens.push(Token {
                        tok: Tok::Ident(&input[i..end]),
                        line,
                    });
                    i = end;
                } else if ch.is_whitespace() {
                    i += ch.len_utf8();
                } else {
                    return Err(ParseError {
                        line,
                        message: format!("unexpected character '{}'", ch),
                    });
                }
            }
        }
    }
    Ok(tokens)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    tokens: Vec<Token<'a>>,
    pos: usize,
    module: Module,
}

/// Per-unit name tables. Names are interned (allocated) here, at the
/// point a definition binds them — the only per-name allocations on the
/// parse path.
struct UnitContext {
    values: HashMap<String, Value>,
    blocks: HashMap<String, Block>,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<Tok<'a>> {
        self.tokens.get(self.pos).map(|t| t.tok)
    }

    fn peek_at(&self, offset: usize) -> Option<Tok<'a>> {
        self.tokens.get(self.pos + offset).map(|t| t.tok)
    }

    fn next(&mut self) -> Option<Tok<'a>> {
        let tok = self.tokens.get(self.pos).map(|t| t.tok);
        self.pos += 1;
        tok
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => Err(self.error(format!("expected '{}', found {:?}", c, other))),
        }
    }

    fn expect_ident(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) if s == kw => Ok(()),
            other => Err(self.error(format!("expected '{}', found {:?}", kw, other))),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn parse_local(&mut self) -> Result<&'a str, ParseError> {
        match self.next() {
            Some(Tok::Local(s)) => Ok(s),
            other => Err(self.error(format!("expected %name, found {:?}", other))),
        }
    }

    fn parse_number(&mut self) -> Result<usize, ParseError> {
        match self.next() {
            Some(Tok::Number(s)) => s
                .parse()
                .map_err(|_| self.error(format!("invalid number '{}'", s))),
            other => Err(self.error(format!("expected number, found {:?}", other))),
        }
    }

    // ----- types -----------------------------------------------------------

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let mut base = match self.next() {
            Some(Tok::Ident(s)) => self.parse_base_type_ident(s)?,
            Some(Tok::Punct('[')) => {
                let len = self.parse_number()?;
                self.expect_ident("x")?;
                let inner = self.parse_type()?;
                self.expect_punct(']')?;
                ty::array_ty(len, inner)
            }
            Some(Tok::Punct('{')) => {
                let mut fields = vec![];
                if !self.eat_punct('}') {
                    loop {
                        fields.push(self.parse_type()?);
                        if self.eat_punct('}') {
                            break;
                        }
                        self.expect_punct(',')?;
                    }
                }
                ty::struct_ty(fields)
            }
            other => return Err(self.error(format!("expected type, found {:?}", other))),
        };
        loop {
            if self.eat_punct('$') {
                base = ty::signal_ty(base);
            } else if self.eat_punct('*') {
                base = ty::pointer_ty(base);
            } else {
                break;
            }
        }
        Ok(base)
    }

    fn parse_base_type_ident(&self, s: &str) -> Result<Type, ParseError> {
        if s == "void" {
            return Ok(ty::void_ty());
        }
        if s == "time" {
            return Ok(ty::time_ty());
        }
        let (prefix, rest) = s.split_at(1);
        let width: usize = rest
            .parse()
            .map_err(|_| self.error(format!("invalid type '{}'", s)))?;
        match prefix {
            "i" => Ok(ty::int_ty(width)),
            "n" => Ok(ty::enum_ty(width)),
            "l" => Ok(ty::logic_ty(width)),
            _ => Err(self.error(format!("invalid type '{}'", s))),
        }
    }

    // ----- units -----------------------------------------------------------

    fn parse_unit(&mut self) -> Result<(), ParseError> {
        let kind = match self.next() {
            Some(Tok::Ident("func")) => UnitKind::Function,
            Some(Tok::Ident("proc")) => UnitKind::Process,
            Some(Tok::Ident("entity")) => UnitKind::Entity,
            other => return Err(self.error(format!("expected unit keyword, found {:?}", other))),
        };
        let name = match self.next() {
            Some(Tok::Global(s)) => UnitName::global(s),
            Some(Tok::Local(s)) => UnitName::local(s),
            other => return Err(self.error(format!("expected unit name, found {:?}", other))),
        };
        let inputs = self.parse_arg_list()?;
        let mut arg_names: Vec<&'a str> = inputs.iter().map(|&(n, _)| n).collect();
        let sig = match kind {
            UnitKind::Function => {
                let ret = self.parse_type()?;
                Signature::new_func(inputs.iter().map(|(_, t)| t.clone()).collect(), ret)
            }
            UnitKind::Process | UnitKind::Entity => {
                self.expect_punct('>')?;
                let outputs = self.parse_arg_list()?;
                arg_names.extend(outputs.iter().map(|&(n, _)| n));
                Signature::new_entity(
                    inputs.iter().map(|(_, t)| t.clone()).collect(),
                    outputs.iter().map(|(_, t)| t.clone()).collect(),
                )
            }
        };

        let mut unit = UnitData::new(kind, name, sig);
        let mut ctx = UnitContext {
            values: HashMap::new(),
            blocks: HashMap::new(),
        };
        for (i, &name) in arg_names.iter().enumerate() {
            let value = unit.arg_value(i);
            unit.set_value_name(value, name);
            ctx.values.insert(name.to_string(), value);
        }
        self.expect_punct('{')?;
        self.parse_body(&mut unit, &mut ctx)?;
        self.module.add_unit(unit);
        Ok(())
    }

    fn parse_arg_list(&mut self) -> Result<Vec<(&'a str, Type)>, ParseError> {
        self.expect_punct('(')?;
        let mut args = vec![];
        if self.eat_punct(')') {
            return Ok(args);
        }
        loop {
            let ty = self.parse_type()?;
            let name = self.parse_local()?;
            args.push((name, ty));
            if self.eat_punct(')') {
                break;
            }
            self.expect_punct(',')?;
        }
        Ok(args)
    }

    fn parse_body(
        &mut self,
        unit: &mut UnitData,
        ctx: &mut UnitContext,
    ) -> Result<(), ParseError> {
        let is_entity = unit.kind() == UnitKind::Entity;
        let mut builder = UnitBuilder::new(unit);
        // Phi operand patches: (inst, operand index, value name).
        let mut patches: Vec<(crate::ir::Inst, usize, &'a str)> = vec![];
        loop {
            match self.peek() {
                Some(Tok::Punct('}')) => {
                    self.pos += 1;
                    break;
                }
                None => return Err(self.error("unexpected end of input in unit body")),
                Some(Tok::Ident(_)) if self.peek_at(1) == Some(Tok::Punct(':')) => {
                    // A block label.
                    let label = match self.next() {
                        Some(Tok::Ident(s)) => s,
                        _ => unreachable!(),
                    };
                    self.expect_punct(':')?;
                    if is_entity {
                        return Err(self.error("entities may not contain block labels"));
                    }
                    let block = Self::lookup_block(&mut builder, ctx, label);
                    builder.append_to(block);
                }
                _ => {
                    self.parse_inst(&mut builder, ctx, &mut patches)?;
                }
            }
        }
        // Resolve deferred phi operands.
        for (inst, index, name) in patches {
            let value = *ctx
                .values
                .get(name)
                .ok_or_else(|| self.error(format!("unknown value %{}", name)))?;
            builder.unit_mut().inst_data_mut(inst).args[index] = value;
        }
        Ok(())
    }

    fn lookup_block(builder: &mut UnitBuilder, ctx: &mut UnitContext, name: &str) -> Block {
        if let Some(&bb) = ctx.blocks.get(name) {
            return bb;
        }
        let bb = builder.block(name.to_string());
        ctx.blocks.insert(name.to_string(), bb);
        bb
    }

    fn lookup_value(&self, ctx: &UnitContext, name: &str) -> Result<Value, ParseError> {
        ctx.values
            .get(name)
            .copied()
            .ok_or_else(|| self.error(format!("unknown value %{}", name)))
    }

    fn parse_value(&mut self, ctx: &UnitContext) -> Result<Value, ParseError> {
        let name = self.parse_local()?;
        self.lookup_value(ctx, name)
    }

    fn parse_value_list(&mut self, ctx: &UnitContext) -> Result<Vec<Value>, ParseError> {
        let mut values = vec![];
        loop {
            values.push(self.parse_value(ctx)?);
            if !self.eat_punct(',') {
                break;
            }
        }
        Ok(values)
    }

    // ----- instructions ----------------------------------------------------

    fn parse_inst(
        &mut self,
        builder: &mut UnitBuilder,
        ctx: &mut UnitContext,
        patches: &mut Vec<(crate::ir::Inst, usize, &'a str)>,
    ) -> Result<(), ParseError> {
        // Optional result binding.
        let result_name = if let (Some(Tok::Local(_)), Some(Tok::Punct('='))) =
            (self.peek(), self.peek_at(1))
        {
            let name = self.parse_local()?;
            self.expect_punct('=')?;
            Some(name)
        } else {
            None
        };

        let mnemonic = match self.next() {
            Some(Tok::Ident(s)) => s,
            other => return Err(self.error(format!("expected instruction, found {:?}", other))),
        };

        let inst = match mnemonic {
            "const" => {
                let ty = self.parse_type()?;
                let konst = self.parse_const_value(&ty)?;
                builder.build(InstData::constant(konst))
            }
            "array" => {
                self.expect_punct('[')?;
                let args = self.parse_value_list(ctx)?;
                self.expect_punct(']')?;
                builder.build(InstData::new(Opcode::Array, args))
            }
            "strct" => {
                self.expect_punct('{')?;
                let args = self.parse_value_list(ctx)?;
                self.expect_punct('}')?;
                builder.build(InstData::new(Opcode::Struct, args))
            }
            "phi" => {
                let ty = self.parse_type()?;
                let mut args = vec![];
                let mut blocks = vec![];
                let mut pending: Vec<(usize, &'a str)> = vec![];
                loop {
                    self.expect_punct('[')?;
                    let vname = self.parse_local()?;
                    match ctx.values.get(vname) {
                        Some(&v) => args.push(v),
                        None => {
                            pending.push((args.len(), vname));
                            // Use a placeholder resolved after the body.
                            args.push(Value::from_index(0));
                        }
                    }
                    self.expect_punct(',')?;
                    let bname = self.parse_local()?;
                    blocks.push(Self::lookup_block(builder, ctx, bname));
                    self.expect_punct(']')?;
                    if !self.eat_punct(',') {
                        break;
                    }
                }
                let mut data = InstData::new(Opcode::Phi, args);
                data.blocks = blocks;
                let inst = builder.build_with_type(data, Some(ty));
                for (index, name) in pending {
                    patches.push((inst, index, name));
                }
                inst
            }
            "br" => {
                // `br %bb` or `br %cond, %bb_false, %bb_true`.
                let first = self.parse_local()?;
                if self.eat_punct(',') {
                    let cond = self.lookup_value(ctx, first)?;
                    let f = self.parse_local()?;
                    self.expect_punct(',')?;
                    let t = self.parse_local()?;
                    let bf = Self::lookup_block(builder, ctx, f);
                    let bt = Self::lookup_block(builder, ctx, t);
                    builder.br_cond(cond, bf, bt)
                } else {
                    let bb = Self::lookup_block(builder, ctx, first);
                    builder.br(bb)
                }
            }
            "wait" => {
                let target = self.parse_local()?;
                let target = Self::lookup_block(builder, ctx, target);
                let time = if self.eat_ident("for") {
                    Some(self.parse_value(ctx)?)
                } else {
                    None
                };
                let signals = if self.eat_punct(',') {
                    self.parse_value_list(ctx)?
                } else {
                    vec![]
                };
                match time {
                    Some(t) => builder.wait_time(target, t, signals),
                    None => builder.wait(target, signals),
                }
            }
            "halt" => builder.halt(),
            "ret" => {
                // `ret` or `ret ty %value`.
                if matches!(self.peek(), Some(Tok::Ident(_)) | Some(Tok::Punct('[')))
                    && !self.next_is_label_or_inst()
                {
                    let _ty = self.parse_type()?;
                    let value = self.parse_value(ctx)?;
                    builder.ret_value(value)
                } else {
                    builder.ret()
                }
            }
            "drv" => {
                let _ty = self.parse_type()?;
                let signal = self.parse_value(ctx)?;
                self.expect_punct(',')?;
                let value = self.parse_value(ctx)?;
                self.expect_ident("after")?;
                let delay = self.parse_value(ctx)?;
                if self.eat_ident("if") {
                    let cond = self.parse_value(ctx)?;
                    builder.drv_cond(signal, value, delay, cond)
                } else {
                    builder.drv(signal, value, delay)
                }
            }
            "drvc" => {
                let _ty = self.parse_type()?;
                let signal = self.parse_value(ctx)?;
                self.expect_punct(',')?;
                let value = self.parse_value(ctx)?;
                self.expect_ident("after")?;
                let delay = self.parse_value(ctx)?;
                self.expect_ident("if")?;
                let cond = self.parse_value(ctx)?;
                builder.drv_cond(signal, value, delay, cond)
            }
            "reg" => {
                let _ty = self.parse_type()?;
                let signal = self.parse_value(ctx)?;
                let mut triggers = vec![];
                while self.eat_punct(',') {
                    let value = self.parse_value(ctx)?;
                    let mode = match self.next() {
                        Some(Tok::Ident(s)) => RegMode::from_keyword(s)
                            .ok_or_else(|| self.error(format!("unknown reg mode '{}'", s)))?,
                        other => {
                            return Err(self.error(format!("expected reg mode, found {:?}", other)))
                        }
                    };
                    let trigger = self.parse_value(ctx)?;
                    let gate = if self.eat_ident("if") {
                        Some(self.parse_value(ctx)?)
                    } else {
                        None
                    };
                    triggers.push(RegTrigger {
                        value,
                        mode,
                        trigger,
                        gate,
                    });
                }
                builder.reg(signal, triggers)
            }
            "call" => {
                let ret = self.parse_type()?;
                let target = match self.next() {
                    Some(Tok::Global(s)) => UnitName::global(s),
                    Some(Tok::Local(s)) => UnitName::local(s),
                    other => {
                        return Err(self.error(format!("expected call target, found {:?}", other)))
                    }
                };
                self.expect_punct('(')?;
                let args = if self.eat_punct(')') {
                    vec![]
                } else {
                    let args = self.parse_value_list(ctx)?;
                    self.expect_punct(')')?;
                    args
                };
                let arg_tys = args.iter().map(|&a| builder.unit().value_type(a)).collect();
                let ext = builder.ext_unit(target, Signature::new_func(arg_tys, ret));
                builder.call(ext, args)
            }
            "inst" => {
                let target = match self.next() {
                    Some(Tok::Global(s)) => UnitName::global(s),
                    Some(Tok::Local(s)) => UnitName::local(s),
                    other => {
                        return Err(self.error(format!("expected inst target, found {:?}", other)))
                    }
                };
                self.expect_punct('(')?;
                let inputs = if self.eat_punct(')') {
                    vec![]
                } else {
                    let v = self.parse_value_list(ctx)?;
                    self.expect_punct(')')?;
                    v
                };
                self.expect_punct('>')?;
                self.expect_punct('(')?;
                let outputs = if self.eat_punct(')') {
                    vec![]
                } else {
                    let v = self.parse_value_list(ctx)?;
                    self.expect_punct(')')?;
                    v
                };
                let in_tys = inputs
                    .iter()
                    .map(|&a| builder.unit().value_type(a))
                    .collect();
                let out_tys = outputs
                    .iter()
                    .map(|&a| builder.unit().value_type(a))
                    .collect();
                let ext = builder.ext_unit(target, Signature::new_entity(in_tys, out_tys));
                builder.inst(ext, inputs, outputs)
            }
            "extf" => {
                let _ty = self.parse_type()?;
                let target = self.parse_value(ctx)?;
                self.expect_punct(',')?;
                let index = self.parse_number()?;
                let mut data = InstData::new(Opcode::ExtField, vec![target]);
                data.imms = vec![index];
                builder.build(data)
            }
            "exts" => {
                let _ty = self.parse_type()?;
                let target = self.parse_value(ctx)?;
                self.expect_punct(',')?;
                let offset = self.parse_number()?;
                self.expect_punct(',')?;
                let length = self.parse_number()?;
                let mut data = InstData::new(Opcode::ExtSlice, vec![target]);
                data.imms = vec![offset, length];
                builder.build(data)
            }
            "insf" => {
                let _ty = self.parse_type()?;
                let target = self.parse_value(ctx)?;
                self.expect_punct(',')?;
                let value = self.parse_value(ctx)?;
                self.expect_punct(',')?;
                let index = self.parse_number()?;
                let mut data = InstData::new(Opcode::InsField, vec![target, value]);
                data.imms = vec![index];
                builder.build(data)
            }
            "inss" => {
                let _ty = self.parse_type()?;
                let target = self.parse_value(ctx)?;
                self.expect_punct(',')?;
                let value = self.parse_value(ctx)?;
                self.expect_punct(',')?;
                let offset = self.parse_number()?;
                self.expect_punct(',')?;
                let length = self.parse_number()?;
                let mut data = InstData::new(Opcode::InsSlice, vec![target, value]);
                data.imms = vec![offset, length];
                builder.build(data)
            }
            "zext" | "sext" | "trunc" => {
                let ty = self.parse_type()?;
                let value = self.parse_value(ctx)?;
                let opcode = Opcode::from_mnemonic(mnemonic).unwrap();
                let mut data = InstData::new(opcode, vec![value]);
                data.imms = vec![ty.unwrap_int()];
                builder.build(data)
            }
            other => {
                let opcode = Opcode::from_mnemonic(other)
                    .ok_or_else(|| self.error(format!("unknown instruction '{}'", other)))?;
                // Generic form: `<op> <type> %a, %b, ...` or bare `<op>`.
                let args = if matches!(
                    self.peek(),
                    Some(Tok::Ident(_)) | Some(Tok::Punct('[')) | Some(Tok::Punct('{'))
                ) {
                    let _ty = self.parse_type()?;
                    self.parse_value_list(ctx)?
                } else {
                    vec![]
                };
                builder.build(InstData::new(opcode, args))
            }
        };

        if let Some(name) = result_name {
            let result = builder
                .unit()
                .get_inst_result(inst)
                .ok_or_else(|| self.error("instruction produces no result to bind"))?;
            builder.unit_mut().set_value_name(result, name);
            ctx.values.insert(name.to_string(), result);
        }
        Ok(())
    }

    /// Heuristic used by `ret`: the next token starts a new instruction or
    /// label rather than a type if it is followed by `:` or `=`.
    fn next_is_label_or_inst(&self) -> bool {
        matches!(self.peek_at(1), Some(Tok::Punct(':')))
    }

    fn parse_const_value(&mut self, ty: &Type) -> Result<ConstValue, ParseError> {
        use crate::ty::TypeKind;
        match ty.kind() {
            TypeKind::Int(width) => {
                // `(negated, digits)`; the sign is applied after parsing
                // so the digit slice borrows straight from the input.
                let (neg, digits) = match self.next() {
                    Some(Tok::Number(s)) => (false, s),
                    Some(Tok::Punct('-')) => match self.next() {
                        Some(Tok::Number(s)) => (true, s),
                        other => {
                            return Err(self.error(format!("expected number, found {:?}", other)))
                        }
                    },
                    other => return Err(self.error(format!("expected number, found {:?}", other))),
                };
                let value = ApInt::from_str_radix10(*width, digits)
                    .ok_or_else(|| self.error(format!("invalid integer '{}'", digits)))?;
                Ok(ConstValue::Int(if neg { value.neg() } else { value }))
            }
            TypeKind::Enum(states) => {
                let value = self.parse_number()?;
                Ok(ConstValue::Enum {
                    states: *states,
                    value,
                })
            }
            TypeKind::Logic(width) => match self.next() {
                Some(Tok::Str(s)) => {
                    let v = LogicVector::from_str(s)
                        .ok_or_else(|| self.error(format!("invalid logic literal '{}'", s)))?;
                    if v.width() != *width {
                        return Err(self.error(format!(
                            "logic literal width {} does not match type l{}",
                            v.width(),
                            width
                        )));
                    }
                    Ok(ConstValue::Logic(v))
                }
                other => Err(self.error(format!("expected logic string, found {:?}", other))),
            },
            TypeKind::Time => {
                // Consume tokens that look like time components: `1ns`,
                // `2d`, `500ps`, a bare `0s`, etc.
                let mut text = String::new();
                loop {
                    match self.peek() {
                        Some(Tok::Ident(s))
                            if s.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(false) =>
                        {
                            if !text.is_empty() {
                                text.push(' ');
                            }
                            text.push_str(s);
                            self.pos += 1;
                        }
                        _ => break,
                    }
                }
                let time = parse_time(&text)
                    .ok_or_else(|| self.error(format!("invalid time literal '{}'", text)))?;
                Ok(ConstValue::Time(time))
            }
            _ => Err(self.error(format!("cannot parse constant of type {}", ty))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::write_module;
    use crate::verifier::verify_module;

    #[test]
    fn parse_simple_function() {
        let src = r#"
        func @check (i32 %i, i32 %q) void {
        entry:
            %one = const i32 1
            %two = const i32 2
            %ip1 = add i32 %i, %one
            %ixip1 = umul i32 %i, %ip1
            %qexp = udiv i32 %ixip1, %two
            %eq = eq i32 %qexp, %q
            ret
        }
        "#;
        let module = parse_module(src).unwrap();
        assert_eq!(module.num_units(), 1);
        assert!(verify_module(&module).is_ok());
        let unit = module.unit(module.units()[0]);
        assert_eq!(unit.kind(), UnitKind::Function);
        assert_eq!(unit.all_insts().len(), 7);
    }

    #[test]
    fn parse_process_and_entity() {
        let src = r#"
        proc @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
        entry:
            %qp = prb i32$ %q
            %enp = prb i1$ %en
            %delay = const time 2ns
            drv i32$ %d, %qp after %delay
            br %enp, %final, %enabled
        enabled:
            %xp = prb i32$ %x
            %sum = add i32 %qp, %xp
            drv i32$ %d, %sum after %delay
            br %final
        final:
            wait %entry, %q, %x, %en
        }

        entity @acc (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q) {
            %zero = const i32 0
            %d = sig i32 %zero
            inst @acc_comb (%q, %x, %en) -> (%d)
        }
        "#;
        let module = parse_module(src).unwrap();
        assert_eq!(module.num_units(), 2);
        assert!(verify_module(&module).is_ok(), "{:?}", verify_module(&module));
        let comb = module.unit(module.unit_by_ident("acc_comb").unwrap());
        assert_eq!(comb.blocks().len(), 3);
        let acc = module.unit(module.unit_by_ident("acc").unwrap());
        assert_eq!(acc.kind(), UnitKind::Entity);
    }

    #[test]
    fn parse_wait_with_time() {
        let src = r#"
        proc @stim () -> (i1$ %clk) {
        entry:
            %del = const time 1ns 1d
            %one = const i1 1
            drv i1$ %clk, %one after %del
            wait %entry for %del, %clk
        }
        "#;
        let module = parse_module(src).unwrap();
        let unit = module.unit(module.units()[0]);
        let insts = unit.all_insts();
        let wait = insts.last().unwrap();
        assert_eq!(unit.inst_data(*wait).opcode, Opcode::WaitTime);
        assert_eq!(unit.inst_data(*wait).args.len(), 2);
    }

    #[test]
    fn parse_reg_with_triggers() {
        let src = r#"
        entity @ff (i1$ %clk, i32$ %d, i1$ %en) -> (i32$ %q) {
            %clkp = prb i1$ %clk
            %dp = prb i32$ %d
            %enp = prb i1$ %en
            reg i32$ %q, %dp rise %clkp if %enp
        }
        "#;
        let module = parse_module(src).unwrap();
        let unit = module.unit(module.units()[0]);
        let reg = *unit.all_insts().last().unwrap();
        let data = unit.inst_data(reg);
        assert_eq!(data.opcode, Opcode::Reg);
        assert_eq!(data.triggers.len(), 1);
        assert_eq!(data.triggers[0].mode, RegMode::Rise);
        assert!(data.triggers[0].gate.is_some());
    }

    #[test]
    fn parse_errors_are_reported_with_lines() {
        let src = "func @f () void {\nentry:\n  %x = bogus i32 %y\n}";
        let err = parse_module(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("bogus") || err.message.contains("unknown"));
        // A non-signal entity port is accepted by the *parser*; rejecting
        // it is the verifier's job.
        let module = parse_module("entity @e (i32 %a) -> () {}").unwrap();
        assert!(crate::verifier::verify_module(&module).is_err());
    }

    #[test]
    fn roundtrip_through_writer() {
        let src = r#"
        func @fma (i32 %a, i32 %b, i32 %c) i32 {
        entry:
            %p = umul i32 %a, %b
            %s = add i32 %p, %c
            ret i32 %s
        }
        proc @toggle () -> (i1$ %out) {
        entry:
            %zero = const i1 0
            %one = const i1 1
            %del = const time 5ns
            drv i1$ %out, %one after %del
            wait %next for %del
        next:
            drv i1$ %out, %zero after %del
            wait %entry for %del
        }
        "#;
        let module = parse_module(src).unwrap();
        let printed = write_module(&module);
        let reparsed = parse_module(&printed).unwrap_or_else(|e| panic!("{}\n{}", e, printed));
        assert_eq!(write_module(&reparsed), printed);
        assert!(verify_module(&reparsed).is_ok());
    }

    #[test]
    fn parse_logic_and_aggregate_constants() {
        let src = r#"
        func @f () void {
        entry:
            %l = const l4 "10XZ"
            %n = const n5 3
            %a = const i8 200
            %b = const i8 -1
            ret
        }
        "#;
        let module = parse_module(src).unwrap();
        let unit = module.unit(module.units()[0]);
        let insts = unit.all_insts();
        assert_eq!(
            unit.inst_data(insts[0]).konst,
            Some(ConstValue::Logic(LogicVector::from_str("10XZ").unwrap()))
        );
        assert_eq!(
            unit.inst_data(insts[1]).konst,
            Some(ConstValue::Enum { states: 5, value: 3 })
        );
        assert_eq!(unit.inst_data(insts[3]).konst, Some(ConstValue::int(8, 255)));
    }
}
