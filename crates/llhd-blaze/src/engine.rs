//! The execution engine operating on compiled designs.
//!
//! Scheduling (event queue, delta cycles, sensitivity) is identical to the
//! reference interpreter in `llhd-sim`; the difference is that unit bodies
//! execute over dense register files with pre-resolved operand indices
//! instead of interpreting the IR data structures.

use crate::compile::{CompiledDesign, Intrinsic, Op};
use llhd::eval::eval_pure;
use llhd::ir::{RegMode, UnitId, UnitKind};
use llhd::value::{ConstValue, TimeValue};
use llhd_sim::design::{InstanceKind, SignalId};
use llhd_sim::{SimConfig, SimError, SimResult, Trace};
use std::collections::{BTreeMap, HashSet};

#[derive(Default, Clone)]
struct Instant {
    drives: Vec<(SignalId, ConstValue)>,
    wakes: Vec<(usize, u64)>,
}

enum Status {
    Ready,
    Suspended {
        resume: usize,
        observed: Vec<SignalId>,
        token: u64,
    },
    Halted,
}

struct InstanceState {
    status: Status,
    regs: Vec<ConstValue>,
    mems: Vec<ConstValue>,
    states: Vec<Option<ConstValue>>,
    token: u64,
}

/// The accelerated simulator.
pub struct BlazeSimulator {
    compiled: CompiledDesign,
    config: SimConfig,
    values: Vec<ConstValue>,
    queue: BTreeMap<TimeValue, Instant>,
    time: TimeValue,
    states: Vec<InstanceState>,
    entity_sensitivity: Vec<(SignalId, usize)>,
    trace: Trace,
    signal_changes: usize,
    assertions_checked: usize,
    assertion_failures: usize,
    activations: usize,
}

impl BlazeSimulator {
    /// Create a simulator for a compiled design.
    pub fn new(compiled: CompiledDesign, config: SimConfig) -> Self {
        let values: Vec<ConstValue> = compiled
            .design
            .signals
            .iter()
            .map(|s| s.init.clone())
            .collect();
        let mut states = Vec::with_capacity(compiled.instances.len());
        let mut entity_sensitivity = vec![];
        for (idx, instance) in compiled.instances.iter().enumerate() {
            let unit = &compiled.units[&instance.unit];
            states.push(InstanceState {
                status: Status::Ready,
                regs: vec![ConstValue::Void; unit.num_regs],
                mems: vec![ConstValue::Void; unit.num_mems],
                states: vec![None; unit.num_states],
                token: 0,
            });
            if instance.kind == InstanceKind::Entity {
                // Sensitivity: every probed or delayed signal slot.
                for block in &unit.blocks {
                    for op in &block.ops {
                        let slot = match op {
                            Op::Prb { sig, .. } => Some(*sig),
                            Op::Del { source, .. } => Some(*source),
                            _ => None,
                        };
                        if let Some(slot) = slot {
                            let sig = compiled.design.resolve(instance.signal_table[slot]);
                            entity_sensitivity.push((sig, idx));
                        }
                    }
                }
            }
        }
        BlazeSimulator {
            compiled,
            config,
            values,
            queue: BTreeMap::new(),
            time: TimeValue::ZERO,
            states,
            entity_sensitivity,
            trace: Trace::new(),
            signal_changes: 0,
            assertions_checked: 0,
            assertion_failures: 0,
            activations: 0,
        }
    }

    /// Run the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] on unsupported constructs or runaway
    /// delta cycles.
    pub fn run(&mut self) -> Result<SimResult, SimError> {
        for idx in 0..self.compiled.instances.len() {
            self.run_instance(idx)?;
        }
        let mut last_physical = 0u128;
        let mut deltas = 0u32;
        loop {
            let event_time = match self.queue.keys().next() {
                Some(&t) => t,
                None => break,
            };
            if event_time > self.config.max_time {
                break;
            }
            let instant = self.queue.remove(&event_time).unwrap();
            if event_time.as_femtos() == last_physical {
                deltas += 1;
                if deltas > self.config.max_deltas_per_instant {
                    return Err(SimError::Runtime(format!(
                        "delta cycle limit exceeded at {}",
                        event_time
                    )));
                }
            } else {
                last_physical = event_time.as_femtos();
                deltas = 0;
            }
            self.time = event_time;

            let mut changed: HashSet<SignalId> = HashSet::new();
            for (signal, value) in instant.drives {
                let signal = self.compiled.design.resolve(signal);
                if self.values[signal.0] != value {
                    self.values[signal.0] = value.clone();
                    self.signal_changes += 1;
                    changed.insert(signal);
                    if self.config.trace {
                        let name = &self.compiled.design.signals[signal.0].name;
                        let record = match &self.config.trace_filter {
                            None => true,
                            Some(filter) => filter
                                .iter()
                                .any(|f| name == f || name.ends_with(&format!(".{}", f))),
                        };
                        if record {
                            self.trace.record(event_time, name.clone(), value);
                        }
                    }
                }
            }

            let mut to_run: Vec<usize> = vec![];
            for &(sig, idx) in &self.entity_sensitivity {
                if changed.contains(&sig) && !to_run.contains(&idx) {
                    to_run.push(idx);
                }
            }
            for (idx, state) in self.states.iter().enumerate() {
                if let Status::Suspended { observed, .. } = &state.status {
                    if observed.iter().any(|s| changed.contains(s)) && !to_run.contains(&idx) {
                        to_run.push(idx);
                    }
                }
            }
            for (idx, token) in instant.wakes {
                let fresh = matches!(
                    &self.states[idx].status,
                    Status::Suspended { token: t, .. } if *t == token
                );
                if fresh && !to_run.contains(&idx) {
                    to_run.push(idx);
                }
            }
            for idx in to_run {
                self.run_instance(idx)?;
            }
        }
        let halted = self
            .states
            .iter()
            .filter(|s| matches!(s.status, Status::Halted))
            .count();
        Ok(SimResult {
            end_time: self.time,
            signal_changes: self.signal_changes,
            assertions_checked: self.assertions_checked,
            assertion_failures: self.assertion_failures,
            halted_processes: halted,
            activations: self.activations,
            trace: std::mem::take(&mut self.trace),
        })
    }

    fn schedule_drive(&mut self, signal: SignalId, value: ConstValue, delay: &TimeValue) {
        let mut at = self.time.advance_by(delay);
        if at <= self.time {
            at = self.time.advance_by(&TimeValue::from_delta(1));
        }
        self.queue.entry(at).or_default().drives.push((signal, value));
    }

    fn schedule_wake(&mut self, instance: usize, token: u64, delay: &TimeValue) {
        let mut at = self.time.advance_by(delay);
        if at <= self.time {
            at = self.time.advance_by(&TimeValue::from_delta(1));
        }
        self.queue
            .entry(at)
            .or_default()
            .wakes
            .push((instance, token));
    }

    fn run_instance(&mut self, idx: usize) -> Result<(), SimError> {
        self.activations += 1;
        let instance_unit = self.compiled.instances[idx].unit;
        let kind = self.compiled.instances[idx].kind;
        let unit = std::rc::Rc::clone(&self.compiled.units[&instance_unit]);
        let mut block = match (&self.states[idx].status, kind) {
            (Status::Halted, _) => return Ok(()),
            (Status::Suspended { resume, .. }, _) => *resume,
            (Status::Ready, _) => unit.entry,
        };
        self.states[idx].status = Status::Ready;
        let mut steps = 0usize;
        loop {
            let mut next_block = None;
            for op in &unit.blocks[block].ops {
                steps += 1;
                if steps > self.config.max_steps_per_activation {
                    return Err(SimError::Runtime(format!(
                        "instance {} exceeded the step limit",
                        self.compiled.instances[idx].name
                    )));
                }
                match op {
                    Op::Nop => {}
                    Op::Const { dst, value } => {
                        self.states[idx].regs[*dst] = value.clone();
                    }
                    Op::Pure {
                        opcode,
                        dst,
                        args,
                        imms,
                    } => {
                        let arg_values: Vec<ConstValue> = args
                            .iter()
                            .map(|&a| self.states[idx].regs[a].clone())
                            .collect();
                        let value = eval_pure(*opcode, &arg_values, imms).ok_or_else(|| {
                            SimError::Runtime(format!("cannot evaluate {}", opcode))
                        })?;
                        self.states[idx].regs[*dst] = value;
                    }
                    Op::Prb { dst, sig } => {
                        let signal = self.signal(idx, *sig);
                        self.states[idx].regs[*dst] = self.values[signal.0].clone();
                    }
                    Op::Drv {
                        sig,
                        value,
                        delay,
                        cond,
                    } => {
                        if let Some(cond) = cond {
                            if !self.states[idx].regs[*cond].is_truthy() {
                                continue;
                            }
                        }
                        let signal = self.signal(idx, *sig);
                        let value = self.states[idx].regs[*value].clone();
                        let delay = self.time_reg(idx, *delay)?;
                        self.schedule_drive(signal, value, &delay);
                    }
                    Op::Del {
                        target,
                        source,
                        delay,
                    } => {
                        let target = self.signal(idx, *target);
                        let source = self.signal(idx, *source);
                        let delay = self.time_reg(idx, *delay)?;
                        let value = self.values[source.0].clone();
                        self.schedule_drive(target, value, &delay);
                    }
                    Op::Reg { sig, triggers } => {
                        let signal = self.signal(idx, *sig);
                        for trigger in triggers {
                            let current = self.states[idx].regs[trigger.trigger].clone();
                            let previous = self.states[idx].states[trigger.state].clone();
                            let fire = match trigger.mode {
                                RegMode::High => current.is_truthy(),
                                RegMode::Low => !current.is_truthy(),
                                RegMode::Rise => {
                                    previous.as_ref().map(|p| !p.is_truthy()).unwrap_or(false)
                                        && current.is_truthy()
                                }
                                RegMode::Fall => {
                                    previous.as_ref().map(|p| p.is_truthy()).unwrap_or(false)
                                        && !current.is_truthy()
                                }
                                RegMode::Both => {
                                    previous.as_ref().map(|p| p != &current).unwrap_or(false)
                                }
                            };
                            self.states[idx].states[trigger.state] = Some(current);
                            if !fire {
                                continue;
                            }
                            if let Some(gate) = trigger.gate {
                                if !self.states[idx].regs[gate].is_truthy() {
                                    continue;
                                }
                            }
                            let value = self.states[idx].regs[trigger.value].clone();
                            self.schedule_drive(signal, value, &TimeValue::from_delta(1));
                        }
                    }
                    Op::Var { mem, init } => {
                        self.states[idx].mems[*mem] = self.states[idx].regs[*init].clone();
                    }
                    Op::Ld { dst, mem } => {
                        self.states[idx].regs[*dst] = self.states[idx].mems[*mem].clone();
                    }
                    Op::St { mem, value } => {
                        self.states[idx].mems[*mem] = self.states[idx].regs[*value].clone();
                    }
                    Op::Call {
                        callee,
                        intrinsic,
                        dst,
                        args,
                    } => {
                        let arg_values: Vec<ConstValue> = args
                            .iter()
                            .map(|&a| self.states[idx].regs[a].clone())
                            .collect();
                        let result = match intrinsic {
                            Some(Intrinsic::Assert) => {
                                self.assertions_checked += 1;
                                if !arg_values.first().map(|a| a.is_truthy()).unwrap_or(false) {
                                    self.assertion_failures += 1;
                                }
                                None
                            }
                            Some(Intrinsic::Ignore) => None,
                            None => self.call_function(callee.unwrap(), &arg_values)?,
                        };
                        if let (Some(dst), Some(value)) = (dst, result) {
                            self.states[idx].regs[*dst] = value;
                        }
                    }
                    Op::Wait {
                        resume,
                        time,
                        observed,
                    } => {
                        let observed = observed
                            .iter()
                            .map(|&slot| self.signal(idx, slot))
                            .collect();
                        self.states[idx].token += 1;
                        let token = self.states[idx].token;
                        self.states[idx].status = Status::Suspended {
                            resume: *resume,
                            observed,
                            token,
                        };
                        if let Some(time) = time {
                            let delay = self.time_reg(idx, *time)?;
                            self.schedule_wake(idx, token, &delay);
                        }
                        return Ok(());
                    }
                    Op::Halt => {
                        self.states[idx].status = Status::Halted;
                        return Ok(());
                    }
                    Op::Br { target } => {
                        next_block = Some(*target);
                        break;
                    }
                    Op::BrCond {
                        cond,
                        if_false,
                        if_true,
                    } => {
                        next_block = Some(if self.states[idx].regs[*cond].is_truthy() {
                            *if_true
                        } else {
                            *if_false
                        });
                        break;
                    }
                    Op::Ret { .. } => {
                        return Err(SimError::Runtime(
                            "ret outside of a function".to_string(),
                        ));
                    }
                }
            }
            match next_block {
                Some(b) => block = b,
                None => {
                    // Entities simply finish their single pass; processes
                    // must end in a terminator, which the verifier enforces.
                    return Ok(());
                }
            }
        }
    }

    fn signal(&self, idx: usize, slot: usize) -> SignalId {
        self.compiled
            .design
            .resolve(self.compiled.instances[idx].signal_table[slot])
    }

    fn time_reg(&self, idx: usize, slot: usize) -> Result<TimeValue, SimError> {
        self.states[idx].regs[slot]
            .as_time()
            .copied()
            .ok_or_else(|| SimError::Runtime("expected a time value".to_string()))
    }

    fn call_function(
        &mut self,
        callee: UnitId,
        args: &[ConstValue],
    ) -> Result<Option<ConstValue>, SimError> {
        let unit = std::rc::Rc::clone(&self.compiled.units[&callee]);
        if unit.kind != UnitKind::Function {
            return Err(SimError::Runtime(format!(
                "call target {} is not a function",
                unit.name
            )));
        }
        let mut regs = vec![ConstValue::Void; unit.num_regs];
        let mut mems = vec![ConstValue::Void; unit.num_mems];
        for (slot, value) in unit.arg_regs.iter().zip(args.iter()) {
            regs[*slot] = value.clone();
        }
        let mut block = unit.entry;
        let mut steps = 0usize;
        loop {
            let mut next_block = None;
            for op in &unit.blocks[block].ops {
                steps += 1;
                if steps > self.config.max_steps_per_activation {
                    return Err(SimError::Runtime(format!(
                        "function {} exceeded the step limit",
                        unit.name
                    )));
                }
                match op {
                    Op::Nop => {}
                    Op::Const { dst, value } => regs[*dst] = value.clone(),
                    Op::Pure {
                        opcode,
                        dst,
                        args,
                        imms,
                    } => {
                        let arg_values: Vec<ConstValue> =
                            args.iter().map(|&a| regs[a].clone()).collect();
                        regs[*dst] = eval_pure(*opcode, &arg_values, imms).ok_or_else(|| {
                            SimError::Runtime(format!("cannot evaluate {}", opcode))
                        })?;
                    }
                    Op::Var { mem, init } => mems[*mem] = regs[*init].clone(),
                    Op::Ld { dst, mem } => regs[*dst] = mems[*mem].clone(),
                    Op::St { mem, value } => mems[*mem] = regs[*value].clone(),
                    Op::Call {
                        callee,
                        intrinsic,
                        dst,
                        args,
                    } => {
                        let arg_values: Vec<ConstValue> =
                            args.iter().map(|&a| regs[a].clone()).collect();
                        let result = match intrinsic {
                            Some(Intrinsic::Assert) => {
                                self.assertions_checked += 1;
                                if !arg_values.first().map(|a| a.is_truthy()).unwrap_or(false) {
                                    self.assertion_failures += 1;
                                }
                                None
                            }
                            Some(Intrinsic::Ignore) => None,
                            None => self.call_function(callee.unwrap(), &arg_values)?,
                        };
                        if let (Some(dst), Some(value)) = (dst, result) {
                            regs[*dst] = value;
                        }
                    }
                    Op::Br { target } => {
                        next_block = Some(*target);
                        break;
                    }
                    Op::BrCond {
                        cond,
                        if_false,
                        if_true,
                    } => {
                        next_block = Some(if regs[*cond].is_truthy() {
                            *if_true
                        } else {
                            *if_false
                        });
                        break;
                    }
                    Op::Ret { value } => {
                        return Ok(value.map(|v| regs[v].clone()));
                    }
                    _ => {
                        return Err(SimError::Runtime(
                            "unsupported operation in function".to_string(),
                        ))
                    }
                }
            }
            match next_block {
                Some(b) => block = b,
                None => return Ok(None),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use llhd::assembly::parse_module;

    #[test]
    fn compiled_counter_matches_reference() {
        let module = parse_module(
            r#"
            proc @counter (i1$ %clk) -> (i8$ %out) {
            entry:
                %zero = const i8 0
                %i = var i8 %zero
                br %loop
            loop:
                %cur = ld i8* %i
                %one = const i8 1
                %next = add i8 %cur, %one
                st i8* %i, %next
                %delay = const time 1ns
                drv i8$ %out, %next after %delay
                wait %loop for %delay
            }
            "#,
        )
        .unwrap();
        let config = SimConfig::until_nanos(50);
        let reference = llhd_sim::simulate(&module, "counter", &config).unwrap();
        let blaze = simulate(&module, "counter", &config).unwrap();
        assert!(reference.trace.equivalent(&blaze.trace));
        assert_eq!(reference.signal_changes, blaze.signal_changes);
        let last = blaze.trace.changes_of("out").last().unwrap().clone();
        assert_eq!(last.value, ConstValue::int(8, 50));
    }

    #[test]
    fn assertions_work_in_compiled_functions() {
        let module = parse_module(
            r#"
            func @square (i8 %x) i8 {
            entry:
                %r = umul i8 %x, %x
                ret i8 %r
            }
            proc @tb () -> () {
            entry:
                %three = const i8 3
                %nine = const i8 9
                %sq = call i8 @square (%three)
                %ok = eq i8 %sq, %nine
                call void @llhd.assert (%ok)
                %bad = const i8 8
                %notok = eq i8 %sq, %bad
                call void @llhd.assert (%notok)
                halt
            }
            "#,
        )
        .unwrap();
        let result = simulate(&module, "tb", &SimConfig::until_nanos(10)).unwrap();
        assert_eq!(result.assertions_checked, 2);
        assert_eq!(result.assertion_failures, 1);
    }
}
