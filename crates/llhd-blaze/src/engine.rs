//! The execution engine operating on compiled designs.
//!
//! Scheduling (event queue, delta cycles, sensitivity) comes from the
//! shared hot-path core in [`llhd_sim::sched`] — exactly the code the
//! reference interpreter runs on, which is what makes the two engines'
//! traces byte-identical. The difference is that unit bodies execute over
//! dense register files with pre-resolved operand indices instead of
//! interpreting the IR data structures: SSA values, memory cells, signal
//! references, and `reg` histories are all flat-array accesses whose
//! indices were computed ahead of time by [`crate::compile`].

use crate::compile::{CompiledDesign, CompiledUnit, Intrinsic, Op};
use crate::superop::{eval_bin, Delay, SpecializedCode, SuperOp};
use llhd::eval::{
    eval_cast, eval_ext_field, eval_ext_slice, eval_ins_field, eval_ins_slice, eval_mux,
    eval_pure, eval_unary,
};
use llhd::bitcode::{decode_const_value, encode_const_value, read_varint, write_varint};
use llhd::ir::{Opcode, RegMode, UnitId, UnitKind};
use llhd::value::{ConstValue, TimeValue};
use llhd_sim::api::EngineState;
use llhd_sim::design::{InstanceKind, SignalId};
use llhd_sim::engine::{PARALLEL_MIN_BATCH, PARALLEL_MIN_ISLAND_OPS};
use llhd_sim::sched::{run_instant_parallel, CoreSink, SchedCore};
use llhd_sim::{SimConfig, SimError, SimResult, Trace};
use std::sync::Arc;

enum Status {
    Ready,
    Suspended { resume: usize },
    Halted,
}

struct InstanceState {
    status: Status,
    regs: Vec<ConstValue>,
    mems: Vec<ConstValue>,
    states: Vec<Option<ConstValue>>,
    /// The compiled unit this instance executes, held directly so each
    /// activation costs a reference-count bump instead of a map probe.
    unit: Arc<CompiledUnit>,
    /// This instance's signal bindings, copied out of the shared
    /// `CompiledDesign` at construction: `signal()` is on the per-op hot
    /// path (every probe, drive, and wait), and reading it here skips the
    /// `Arc` indirection into the shared design.
    signal_table: Vec<SignalId>,
    /// The specialized superinstruction stream (signal bindings and
    /// constants baked in at instance-bind time). `None` only with
    /// [`crate::compile::BlazeOptions::specialize`] off, which falls back
    /// to the generic per-op dispatch over `unit`.
    code: Option<Arc<SpecializedCode>>,
}

/// The immutable context an activation executes against: the compiled
/// design plus the step limit. Shared read-only across the parallel
/// instant loop's worker threads.
struct ExecCx<'c> {
    compiled: &'c CompiledDesign,
    max_steps: usize,
}

/// Per-worker mutable scratch: reusable hot-path buffers plus the run
/// counters an activation may bump. Parallel instants give every worker
/// its own, and folding is an order-independent sum, so counter totals
/// match the serial loop exactly.
#[derive(Default)]
struct Scratch {
    /// Reusable wait-list buffer, so suspending performs no allocation.
    observed: Vec<SignalId>,
    /// Reusable argument buffer for pure-op evaluation, so the per-op
    /// hot path performs no allocation.
    args: Vec<ConstValue>,
    activations: usize,
    assertions_checked: usize,
    assertion_failures: usize,
}

/// The accelerated simulator.
pub struct BlazeSimulator {
    compiled: Arc<CompiledDesign>,
    config: SimConfig,
    core: SchedCore,
    states: Vec<InstanceState>,
    assertions_checked: usize,
    assertion_failures: usize,
    activations: usize,
    scratch: Scratch,
    initialized: bool,
    /// A failure during initialization or a step poisons the simulator:
    /// the instances after the failing one never ran, so continuing would
    /// silently produce a wrong trace. Replayed by every later
    /// `initialize`/`step`.
    poisoned: Option<SimError>,
    to_run_buf: Vec<u32>,
    /// Whether the design + config make island-parallel instants
    /// worthwhile at all, decided once at construction.
    parallel_ready: bool,
    /// Set when restoring a version-1 checkpoint (predates island
    /// plans): the engine then runs serial for the rest of its life so
    /// the resumed run replays the path the checkpoint was taken on.
    force_serial: bool,
}

impl BlazeSimulator {
    /// Create a simulator for a compiled design. The design is shared
    /// (`Arc`), so repeated simulations served from a design cache reuse
    /// one compilation; a plain [`CompiledDesign`] converts implicitly.
    pub fn new(compiled: impl Into<Arc<CompiledDesign>>, config: SimConfig) -> Self {
        let compiled = compiled.into();
        let mut core = SchedCore::new(
            &config,
            &compiled.design.signals,
            compiled.instances.len(),
            compiled.allow_drive_drop,
        );
        let mut states = Vec::with_capacity(compiled.instances.len());
        for (idx, instance) in compiled.instances.iter().enumerate() {
            let unit = Arc::clone(&compiled.units[&instance.unit]);
            // Specialized instances start from the unit's pre-folded
            // register file; the generic fallback materializes the unit's
            // constants only.
            let regs = match (&instance.code, &unit.lowered) {
                (Some(_), Some(lowered)) => lowered.init_regs.clone(),
                _ => unit.new_regs(),
            };
            states.push(InstanceState {
                status: Status::Ready,
                regs,
                mems: vec![ConstValue::Void; unit.num_mems],
                states: vec![None; unit.num_states],
                unit,
                signal_table: instance.signal_table.clone(),
                code: instance.code.clone(),
            });
            if instance.kind == InstanceKind::Entity {
                // Static sensitivity: every probed or delayed signal slot
                // (the table is pre-resolved at compile time).
                let unit = &states[idx].unit;
                for op in &unit.ops {
                    let slot = match op {
                        Op::Prb { sig, .. } => Some(*sig),
                        Op::Del { source, .. } => Some(*source),
                        _ => None,
                    };
                    if let Some(slot) = slot {
                        core.add_entity_sensitivity(instance.signal_table[slot], idx);
                    }
                }
            }
        }
        let parallel_ready = config.threads > 1
            && compiled.options.islands
            && compiled.island_plan.parallel_worthy(PARALLEL_MIN_ISLAND_OPS);
        BlazeSimulator {
            compiled,
            config,
            core,
            states,
            assertions_checked: 0,
            assertion_failures: 0,
            activations: 0,
            scratch: Scratch::default(),
            initialized: false,
            poisoned: None,
            to_run_buf: Vec::new(),
            parallel_ready,
            force_serial: false,
        }
    }

    /// Run the initialization phase: every instance executes once.
    /// Idempotent — later calls are no-ops, and [`BlazeSimulator::step`]
    /// calls it automatically.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] on unsupported constructs.
    pub fn initialize(&mut self) -> Result<(), SimError> {
        if self.initialized {
            return match &self.poisoned {
                None => Ok(()),
                Some(e) => Err(e.clone()),
            };
        }
        self.initialized = true;
        let mut result = Ok(());
        {
            let cx = ExecCx {
                compiled: &self.compiled,
                max_steps: self.config.max_steps_per_activation,
            };
            for idx in 0..cx.compiled.instances.len() {
                if let Err(e) = run_instance(
                    &cx,
                    &mut self.states[idx],
                    &mut self.scratch,
                    idx,
                    &mut self.core,
                ) {
                    result = Err(e);
                    break;
                }
            }
        }
        self.fold_scratch();
        if let Err(e) = &result {
            self.poisoned = Some(e.clone());
        }
        result
    }

    /// Fold the per-step [`Scratch`] counters into the run totals. Called
    /// on every exit path of `initialize`/`step` (including errors) so
    /// the totals stay exact.
    fn fold_scratch(&mut self) {
        self.activations += self.scratch.activations;
        self.assertions_checked += self.scratch.assertions_checked;
        self.assertion_failures += self.scratch.assertion_failures;
        self.scratch.activations = 0;
        self.scratch.assertions_checked = 0;
        self.scratch.assertion_failures = 0;
    }

    /// Activate one instant's woken instances: the serial loop, or — when
    /// the design partitions into islands and the batch is large enough —
    /// the island-parallel loop. Both produce byte-identical core state
    /// (see [`llhd_sim::sched::run_instant_parallel`]).
    fn run_activations(&mut self, to_run: &[u32]) -> Result<(), SimError> {
        let cx = ExecCx {
            compiled: &self.compiled,
            max_steps: self.config.max_steps_per_activation,
        };
        if self.parallel_ready && !self.force_serial && to_run.len() >= PARALLEL_MIN_BATCH {
            let parallel = run_instant_parallel(
                &mut self.core,
                to_run,
                &mut self.states,
                cx.compiled.island_plan.island_of_instances(),
                self.config.threads,
                Scratch::default,
                |st, scr, inst, sink| run_instance(&cx, st, scr, inst as usize, sink),
            );
            if let Some(outcome) = parallel {
                for scr in outcome.scratches {
                    self.scratch.activations += scr.activations;
                    self.scratch.assertions_checked += scr.assertions_checked;
                    self.scratch.assertion_failures += scr.assertion_failures;
                }
                self.fold_scratch();
                return outcome.result;
            }
        }
        let mut result = Ok(());
        for &inst in to_run {
            let idx = inst as usize;
            if let Err(e) = run_instance(
                &cx,
                &mut self.states[idx],
                &mut self.scratch,
                idx,
                &mut self.core,
            ) {
                result = Err(e);
                break;
            }
        }
        self.fold_scratch();
        result
    }

    /// Advance the simulation by exactly one scheduler cycle. Returns
    /// `false` once the event queue is exhausted or the configured end
    /// time is reached. Stepping is deterministic: a run advanced in
    /// arbitrary chunks produces the identical trace to an uninterrupted
    /// [`BlazeSimulator::run`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] on unsupported constructs or runaway
    /// delta cycles.
    pub fn step(&mut self) -> Result<bool, SimError> {
        self.initialize()?;
        if self.config.control.is_active() {
            // Checked before the cycle starts: state is consistent, so a
            // deadline abort leaves the engine resumable (no poisoning).
            self.config.control.check()?;
        }
        let mut to_run = std::mem::take(&mut self.to_run_buf);
        let mut outcome = self.core.next_cycle(&mut to_run);
        if let Ok(true) = outcome {
            // `to_run` is detached from `self` here, so iterating it while
            // activating instances borrows cleanly.
            if let Err(e) = self.run_activations(&to_run) {
                outcome = Err(e);
            }
        }
        self.to_run_buf = to_run;
        if let Err(e) = &outcome {
            // A failed cycle leaves half-applied state (the remaining
            // instances of the instant never ran); poison the simulator
            // so later steps replay the error instead of silently
            // diverging.
            self.poisoned = Some(e.clone());
        }
        outcome
    }

    /// Assemble the result of the run so far, taking the recorded trace
    /// out of the scheduler core. After a failed `initialize`/`step` the
    /// state is half-applied (the failing cycle never completed); the
    /// session layer refuses to assemble a result in that case, and
    /// callers driving the engine directly should do the same.
    pub fn finish(&mut self) -> SimResult {
        let halted = self
            .states
            .iter()
            .filter(|s| matches!(s.status, Status::Halted))
            .count();
        SimResult {
            end_time: self.core.time(),
            signal_changes: self.core.signal_changes(),
            assertions_checked: self.assertions_checked,
            assertion_failures: self.assertion_failures,
            halted_processes: halted,
            activations: self.activations,
            trace: self.take_trace(),
        }
    }

    /// Run the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] on unsupported constructs or runaway
    /// delta cycles.
    pub fn run(&mut self) -> Result<SimResult, SimError> {
        while self.step()? {}
        Ok(self.finish())
    }

    /// The current simulation time.
    pub fn time(&self) -> TimeValue {
        self.core.time()
    }

    /// The elaborated design behind the compiled one.
    pub fn design(&self) -> &llhd_sim::ElaboratedDesign {
        &self.compiled.design
    }

    /// The current value of a signal.
    pub fn signal_value(&self, signal: SignalId) -> &ConstValue {
        self.core.value(self.compiled.design.resolve(signal))
    }

    /// Schedule an external drive of `signal` to `value`, taking effect at
    /// the next delta step (the session-level "poke").
    pub fn poke(&mut self, signal: SignalId, value: ConstValue) {
        let signal = self.compiled.design.resolve(signal);
        self.core.schedule_drive(signal, value, &TimeValue::ZERO);
    }

    /// Drain the trace events recorded since the last drain into `buf`
    /// (streaming sinks pull these after every step).
    pub fn drain_trace_into(&mut self, buf: &mut Vec<llhd_sim::trace::TraceEvent>) {
        self.core.drain_trace_into(buf);
    }

    fn take_trace(&mut self) -> Trace {
        self.core.take_trace()
    }

    /// Serialize the simulator's complete execution state: the shared
    /// scheduler core plus every instance's control state, register file,
    /// memory cells, and `reg` histories. See
    /// [`Engine::checkpoint`](llhd_sim::api::Engine::checkpoint) for the
    /// resume guarantee.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] on a poisoned engine.
    pub fn checkpoint(&self) -> Result<EngineState, SimError> {
        if let Some(e) = &self.poisoned {
            return Err(SimError::Runtime(format!(
                "cannot checkpoint a poisoned engine: {}",
                e
            )));
        }
        let design = &self.compiled.design;
        Ok(EngineState::encode(
            "blaze",
            design.num_signals(),
            design.num_instances(),
            self.compiled.island_plan.hash(),
            |out| {
                self.core.snapshot(out);
                out.push(self.initialized as u8);
                write_varint(out, self.assertions_checked as u128);
                write_varint(out, self.assertion_failures as u128);
                write_varint(out, self.activations as u128);
                for st in &self.states {
                    match &st.status {
                        Status::Ready => out.push(0),
                        Status::Suspended { resume } => {
                            out.push(1);
                            write_varint(out, *resume as u128);
                        }
                        Status::Halted => out.push(2),
                    }
                    write_varint(out, st.regs.len() as u128);
                    for reg in &st.regs {
                        encode_const_value(out, reg);
                    }
                    write_varint(out, st.mems.len() as u128);
                    for mem in &st.mems {
                        encode_const_value(out, mem);
                    }
                    write_varint(out, st.states.len() as u128);
                    for prev in &st.states {
                        match prev {
                            Some(v) => {
                                out.push(1);
                                encode_const_value(out, v);
                            }
                            None => out.push(0),
                        }
                    }
                }
            },
        ))
    }

    /// Restore a checkpoint taken by another blaze simulator over the
    /// same design into this (freshly constructed) simulator. See
    /// [`Engine::restore`](llhd_sim::api::Engine::restore).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Runtime`] on an engine/design mismatch or
    /// corrupt bytes.
    pub fn restore(&mut self, state: &EngineState) -> Result<(), SimError> {
        fn truncated() -> SimError {
            SimError::Runtime("truncated engine checkpoint".to_string())
        }
        fn read_usize(bytes: &[u8], pos: &mut usize) -> Result<usize, SimError> {
            Ok(read_varint(bytes, pos).ok_or_else(truncated)? as usize)
        }
        fn read_byte(bytes: &[u8], pos: &mut usize) -> Result<u8, SimError> {
            let b = *bytes.get(*pos).ok_or_else(truncated)?;
            *pos += 1;
            Ok(b)
        }
        fn read_const(bytes: &[u8], pos: &mut usize) -> Result<ConstValue, SimError> {
            decode_const_value(bytes, pos)
                .map_err(|e| SimError::Runtime(format!("corrupt engine checkpoint: {}", e)))
        }
        let design = &self.compiled.design;
        let bytes = state.as_bytes();
        let (mut pos, plan_hash) =
            state.validate("blaze", design.num_signals(), design.num_instances())?;
        match plan_hash {
            // Version-1 checkpoints predate island partitioning: they
            // restore fine, but the engine stays serial for the rest of
            // its life so cross-version runs replay the proven path.
            None => self.force_serial = true,
            Some(h) if h != self.compiled.island_plan.hash() => {
                return Err(SimError::Runtime(
                    "engine checkpoint was taken with a different island plan \
                     (design or partitioner version mismatch)"
                        .to_string(),
                ));
            }
            Some(_) => {}
        }
        let pos = &mut pos;
        self.core.restore_snapshot(bytes, pos)?;
        self.initialized = read_byte(bytes, pos)? != 0;
        self.poisoned = None;
        self.assertions_checked = read_usize(bytes, pos)?;
        self.assertion_failures = read_usize(bytes, pos)?;
        self.activations = read_usize(bytes, pos)?;
        for st in &mut self.states {
            st.status = match read_byte(bytes, pos)? {
                0 => Status::Ready,
                1 => {
                    let resume = read_usize(bytes, pos)?;
                    // Both dispatch modes resume at a block index;
                    // bound-check against whichever stream this instance
                    // executes.
                    let limit = match &st.code {
                        Some(code) => code.block_ranges.len(),
                        None => st.unit.block_ranges.len(),
                    };
                    if resume >= limit {
                        return Err(SimError::Runtime(
                            "corrupt engine checkpoint: resume target out of range".to_string(),
                        ));
                    }
                    Status::Suspended { resume }
                }
                2 => Status::Halted,
                other => {
                    return Err(SimError::Runtime(format!(
                        "corrupt engine checkpoint: unknown instance status {}",
                        other
                    )))
                }
            };
            let num_regs = read_usize(bytes, pos)?;
            if num_regs != st.regs.len() {
                return Err(SimError::Runtime(
                    "corrupt engine checkpoint: register count mismatch".to_string(),
                ));
            }
            for reg in st.regs.iter_mut() {
                *reg = read_const(bytes, pos)?;
            }
            let num_mems = read_usize(bytes, pos)?;
            if num_mems != st.mems.len() {
                return Err(SimError::Runtime(
                    "corrupt engine checkpoint: memory count mismatch".to_string(),
                ));
            }
            for mem in st.mems.iter_mut() {
                *mem = read_const(bytes, pos)?;
            }
            let num_states = read_usize(bytes, pos)?;
            if num_states != st.states.len() {
                return Err(SimError::Runtime(
                    "corrupt engine checkpoint: reg history count mismatch".to_string(),
                ));
            }
            for prev in st.states.iter_mut() {
                *prev = match read_byte(bytes, pos)? {
                    0 => None,
                    1 => Some(read_const(bytes, pos)?),
                    other => {
                        return Err(SimError::Runtime(format!(
                            "corrupt engine checkpoint: unknown reg history tag {}",
                            other
                        )))
                    }
                };
            }
        }
        Ok(())
    }

}

// ---------------------------------------------------------------------------
// Activation execution
// ---------------------------------------------------------------------------
//
// The execution core is a set of free functions generic over
// [`CoreSink`]: the serial loop instantiates them with the
// [`SchedCore`] itself (direct mutation, same code the old methods
// compiled to), the island-parallel loop with a
// [`DeferredSink`](llhd_sim::sched::DeferredSink) (mutations logged and
// replayed in serial order on the main thread). An activation touches
// exactly three things: the immutable [`ExecCx`], its own instance's
// [`InstanceState`], and a per-worker [`Scratch`] — which is what makes
// handing each island's activations to a worker thread sound.

fn run_instance<S: CoreSink>(
    cx: &ExecCx,
    st: &mut InstanceState,
    scr: &mut Scratch,
    idx: usize,
    sink: &mut S,
) -> Result<(), SimError> {
    scr.activations += 1;
    if let Some(code) = &st.code {
        let code = Arc::clone(code);
        return run_instance_spec(cx, st, scr, idx, &code, sink);
    }
    let unit = Arc::clone(&st.unit);
    let mut block = match &st.status {
        Status::Halted => return Ok(()),
        Status::Suspended { resume } => *resume,
        Status::Ready => unit.entry,
    };
    st.status = Status::Ready;
    let mut steps = 0usize;
    loop {
        let mut next_block = None;
        for op in unit.block_ops(block) {
            steps += 1;
            if steps > cx.max_steps {
                return Err(SimError::Runtime(format!(
                    "instance {} exceeded the step limit",
                    cx.compiled.instances[idx].name
                )));
            }
            match op {
                Op::Pure {
                    opcode,
                    dst,
                    args,
                    imms,
                } => {
                    scr.args.clear();
                    scr.args.extend(
                        unit.args(*args)
                            .iter()
                            .map(|&a| st.regs[a as usize].clone()),
                    );
                    let value = eval_pure(*opcode, &scr.args, imms)
                        .ok_or_else(|| SimError::Runtime(format!("cannot evaluate {}", opcode)))?;
                    st.regs[*dst] = value;
                }
                Op::Prb { dst, sig } => {
                    let signal = st.signal_table[*sig];
                    st.regs[*dst] = sink.value(signal).clone();
                }
                Op::Drv {
                    sig,
                    value,
                    delay,
                    cond,
                } => {
                    if let Some(cond) = cond {
                        if !st.regs[*cond].is_truthy() {
                            continue;
                        }
                    }
                    let signal = st.signal_table[*sig];
                    let value = st.regs[*value].clone();
                    let delay = time_reg(st, *delay)?;
                    sink.schedule_drive(signal, value, &delay);
                }
                Op::Del {
                    target,
                    source,
                    delay,
                } => {
                    let target = st.signal_table[*target];
                    let source = st.signal_table[*source];
                    let delay = time_reg(st, *delay)?;
                    let value = sink.value(source).clone();
                    sink.schedule_drive(target, value, &delay);
                }
                Op::Reg { sig, triggers } => {
                    let signal = st.signal_table[*sig];
                    for trigger in triggers {
                        let current = st.regs[trigger.trigger].clone();
                        let previous = st.states[trigger.state].take();
                        let fire = match trigger.mode {
                            RegMode::High => current.is_truthy(),
                            RegMode::Low => !current.is_truthy(),
                            RegMode::Rise => {
                                previous.as_ref().map(|p| !p.is_truthy()).unwrap_or(false)
                                    && current.is_truthy()
                            }
                            RegMode::Fall => {
                                previous.as_ref().map(|p| p.is_truthy()).unwrap_or(false)
                                    && !current.is_truthy()
                            }
                            RegMode::Both => {
                                previous.as_ref().map(|p| p != &current).unwrap_or(false)
                            }
                        };
                        st.states[trigger.state] = Some(current);
                        if !fire {
                            continue;
                        }
                        if let Some(gate) = trigger.gate {
                            if !st.regs[gate].is_truthy() {
                                continue;
                            }
                        }
                        let value = st.regs[trigger.value].clone();
                        sink.schedule_drive(signal, value, &TimeValue::from_delta(1));
                    }
                }
                Op::Var { mem, init } => {
                    st.mems[*mem] = st.regs[*init].clone();
                }
                Op::Ld { dst, mem } => {
                    st.regs[*dst] = st.mems[*mem].clone();
                }
                Op::St { mem, value } => {
                    st.mems[*mem] = st.regs[*value].clone();
                }
                Op::Call {
                    callee,
                    intrinsic,
                    dst,
                    args,
                } => {
                    let arg_values: Vec<ConstValue> = unit
                        .args(*args)
                        .iter()
                        .map(|&a| st.regs[a as usize].clone())
                        .collect();
                    let result = match intrinsic {
                        Some(Intrinsic::Assert) => {
                            scr.assertions_checked += 1;
                            if !arg_values.first().map(|a| a.is_truthy()).unwrap_or(false) {
                                scr.assertion_failures += 1;
                            }
                            None
                        }
                        Some(Intrinsic::Ignore) => None,
                        None => call_function(cx, scr, callee.unwrap(), &arg_values)?,
                    };
                    if let (Some(dst), Some(value)) = (dst, result) {
                        st.regs[*dst] = value;
                    }
                }
                Op::Wait {
                    resume,
                    time,
                    observed,
                } => {
                    scr.observed.clear();
                    for &slot in unit.args(*observed) {
                        scr.observed.push(st.signal_table[slot as usize]);
                    }
                    let timeout = match time {
                        Some(t) => Some(time_reg(st, *t)?),
                        None => None,
                    };
                    st.status = Status::Suspended { resume: *resume };
                    sink.suspend(idx, &scr.observed, timeout.as_ref());
                    return Ok(());
                }
                Op::Halt => {
                    st.status = Status::Halted;
                    return Ok(());
                }
                Op::Br { target } => {
                    next_block = Some(*target);
                    break;
                }
                Op::BrCond {
                    cond,
                    if_false,
                    if_true,
                } => {
                    next_block = Some(if st.regs[*cond].is_truthy() {
                        *if_true
                    } else {
                        *if_false
                    });
                    break;
                }
                Op::Ret { .. } => {
                    return Err(SimError::Runtime("ret outside of a function".to_string()));
                }
            }
        }
        match next_block {
            Some(b) => block = b,
            None => {
                // Entities simply finish their single pass; processes
                // must end in a terminator, which the verifier enforces.
                return Ok(());
            }
        }
    }
}

/// The specialized dispatch loop: executes an instance's baked
/// superinstruction stream. Signal operands are resolved
/// [`SignalId`]s (no table chase), pure ops evaluate by reference
/// (no operand cloning), and the fused records
/// (`CmpBr`/`Sel`/`BinDrv`) retire two source ops per dispatch.
/// Semantics — drive order, suspension, error points — mirror
/// [`run_instance`]'s generic loop exactly; the differential and
/// propcheck suites enforce byte-identical traces.
fn run_instance_spec<S: CoreSink>(
    cx: &ExecCx,
    st: &mut InstanceState,
    scr: &mut Scratch,
    idx: usize,
    code: &SpecializedCode,
    sink: &mut S,
) -> Result<(), SimError> {
    let mut block = match &st.status {
        Status::Halted => return Ok(()),
        Status::Suspended { resume } => *resume,
        Status::Ready => st.unit.entry,
    };
    st.status = Status::Ready;
    let mut steps = 0usize;
    loop {
        let mut next_block = None;
        for op in code.block_ops(block) {
            // Fused records retire two source ops per dispatch; they
            // count as two toward the activation guard so the limit
            // fires at the same executed-op count as the generic loop.
            steps += match op {
                SuperOp::CmpBr { .. } | SuperOp::BinDrv { .. } | SuperOp::Sel { .. } => 2,
                _ => 1,
            };
            if steps > cx.max_steps {
                return Err(SimError::Runtime(format!(
                    "instance {} exceeded the step limit",
                    cx.compiled.instances[idx].name
                )));
            }
            match op {
                SuperOp::Bin {
                    kind,
                    opcode,
                    dst,
                    a,
                    b,
                } => {
                    let regs = &st.regs;
                    let value = eval_bin(*kind, *opcode, &regs[*a as usize], &regs[*b as usize])
                        .ok_or_else(|| SimError::Runtime(format!("cannot evaluate {}", opcode)))?;
                    st.regs[*dst as usize] = value;
                }
                SuperOp::Un { opcode, dst, a } => {
                    let value = eval_unary(*opcode, &st.regs[*a as usize])
                        .ok_or_else(|| SimError::Runtime(format!("cannot evaluate {}", opcode)))?;
                    st.regs[*dst as usize] = value;
                }
                SuperOp::Cast {
                    opcode,
                    dst,
                    a,
                    width,
                } => {
                    let value = eval_cast(*opcode, &st.regs[*a as usize], *width as usize)
                        .ok_or_else(|| SimError::Runtime(format!("cannot evaluate {}", opcode)))?;
                    st.regs[*dst as usize] = value;
                }
                SuperOp::ExtF { dst, a, index } => {
                    let value = eval_ext_field(&st.regs[*a as usize], *index as usize)
                        .ok_or_else(|| {
                            SimError::Runtime(format!("cannot evaluate {}", Opcode::ExtField))
                        })?;
                    st.regs[*dst as usize] = value;
                }
                SuperOp::ExtS {
                    dst,
                    a,
                    offset,
                    length,
                } => {
                    let value =
                        eval_ext_slice(&st.regs[*a as usize], *offset as usize, *length as usize)
                            .ok_or_else(|| {
                            SimError::Runtime(format!("cannot evaluate {}", Opcode::ExtSlice))
                        })?;
                    st.regs[*dst as usize] = value;
                }
                SuperOp::InsF { dst, a, b, index } => {
                    let regs = &st.regs;
                    let value =
                        eval_ins_field(&regs[*a as usize], &regs[*b as usize], *index as usize)
                            .ok_or_else(|| {
                                SimError::Runtime(format!("cannot evaluate {}", Opcode::InsField))
                            })?;
                    st.regs[*dst as usize] = value;
                }
                SuperOp::InsS { dst, a, b, offset } => {
                    let regs = &st.regs;
                    let value =
                        eval_ins_slice(&regs[*a as usize], &regs[*b as usize], *offset as usize, 0)
                            .ok_or_else(|| {
                                SimError::Runtime(format!("cannot evaluate {}", Opcode::InsSlice))
                            })?;
                    st.regs[*dst as usize] = value;
                }
                SuperOp::Mux { dst, choices, sel } => {
                    let regs = &st.regs;
                    let value = eval_mux(&regs[*choices as usize], &regs[*sel as usize])
                        .ok_or_else(|| {
                            SimError::Runtime(format!("cannot evaluate {}", Opcode::Mux))
                        })?;
                    st.regs[*dst as usize] = value;
                }
                SuperOp::Sel { dst, sel, elems } => {
                    let elems = code.args(*elems);
                    let regs = &st.regs;
                    let index = regs[*sel as usize].to_u64().ok_or_else(|| {
                        SimError::Runtime(format!("cannot evaluate {}", Opcode::Mux))
                    })? as usize;
                    let pick = elems[index.min(elems.len() - 1)] as usize;
                    let value = regs[pick].clone();
                    st.regs[*dst as usize] = value;
                }
                SuperOp::Pure {
                    opcode,
                    dst,
                    args,
                    imms,
                } => {
                    scr.args.clear();
                    scr.args.extend(
                        code.args(*args)
                            .iter()
                            .map(|&a| st.regs[a as usize].clone()),
                    );
                    let value = eval_pure(*opcode, &scr.args, imms)
                        .ok_or_else(|| SimError::Runtime(format!("cannot evaluate {}", opcode)))?;
                    st.regs[*dst as usize] = value;
                }
                SuperOp::CmpBr {
                    kind,
                    opcode,
                    a,
                    b,
                    if_false,
                    if_true,
                } => {
                    let regs = &st.regs;
                    let value = eval_bin(*kind, *opcode, &regs[*a as usize], &regs[*b as usize])
                        .ok_or_else(|| SimError::Runtime(format!("cannot evaluate {}", opcode)))?;
                    next_block = Some(if value.is_truthy() {
                        *if_true as usize
                    } else {
                        *if_false as usize
                    });
                    break;
                }
                SuperOp::BinDrv {
                    kind,
                    opcode,
                    a,
                    b,
                    sig,
                    delay,
                    cond,
                    ..
                } => {
                    // The compute happens unconditionally, exactly like
                    // the unfused pure op preceding the drive.
                    let regs = &st.regs;
                    let value = eval_bin(*kind, *opcode, &regs[*a as usize], &regs[*b as usize])
                        .ok_or_else(|| SimError::Runtime(format!("cannot evaluate {}", opcode)))?;
                    if let Some(cond) = cond {
                        if !st.regs[*cond as usize].is_truthy() {
                            continue;
                        }
                    }
                    let delay = delay_value(st, delay)?;
                    sink.schedule_drive(SignalId(*sig as usize), value, &delay);
                }
                SuperOp::Prb { dst, sig } => {
                    let value = sink.value(SignalId(*sig as usize)).clone();
                    st.regs[*dst as usize] = value;
                }
                SuperOp::Drv {
                    sig,
                    value,
                    delay,
                    cond,
                } => {
                    if let Some(cond) = cond {
                        if !st.regs[*cond as usize].is_truthy() {
                            continue;
                        }
                    }
                    let value = st.regs[*value as usize].clone();
                    let delay = delay_value(st, delay)?;
                    sink.schedule_drive(SignalId(*sig as usize), value, &delay);
                }
                SuperOp::Del {
                    target,
                    source,
                    delay,
                } => {
                    let delay = delay_value(st, delay)?;
                    let value = sink.value(SignalId(*source as usize)).clone();
                    sink.schedule_drive(SignalId(*target as usize), value, &delay);
                }
                SuperOp::Reg { sig, triggers } => {
                    let signal = SignalId(*sig as usize);
                    for trigger in triggers {
                        let current = st.regs[trigger.trigger].clone();
                        let previous = st.states[trigger.state].take();
                        let fire = match trigger.mode {
                            RegMode::High => current.is_truthy(),
                            RegMode::Low => !current.is_truthy(),
                            RegMode::Rise => {
                                previous.as_ref().map(|p| !p.is_truthy()).unwrap_or(false)
                                    && current.is_truthy()
                            }
                            RegMode::Fall => {
                                previous.as_ref().map(|p| p.is_truthy()).unwrap_or(false)
                                    && !current.is_truthy()
                            }
                            RegMode::Both => {
                                previous.as_ref().map(|p| p != &current).unwrap_or(false)
                            }
                        };
                        st.states[trigger.state] = Some(current);
                        if !fire {
                            continue;
                        }
                        if let Some(gate) = trigger.gate {
                            if !st.regs[gate].is_truthy() {
                                continue;
                            }
                        }
                        let value = st.regs[trigger.value].clone();
                        sink.schedule_drive(signal, value, &TimeValue::from_delta(1));
                    }
                }
                SuperOp::Var { mem, init } => {
                    st.mems[*mem as usize] = st.regs[*init as usize].clone();
                }
                SuperOp::Ld { dst, mem } => {
                    st.regs[*dst as usize] = st.mems[*mem as usize].clone();
                }
                SuperOp::St { mem, value } => {
                    st.mems[*mem as usize] = st.regs[*value as usize].clone();
                }
                SuperOp::Call {
                    callee,
                    intrinsic,
                    dst,
                    args,
                } => {
                    let arg_values: Vec<ConstValue> = code
                        .args(*args)
                        .iter()
                        .map(|&a| st.regs[a as usize].clone())
                        .collect();
                    let result = match intrinsic {
                        Some(Intrinsic::Assert) => {
                            scr.assertions_checked += 1;
                            if !arg_values.first().map(|a| a.is_truthy()).unwrap_or(false) {
                                scr.assertion_failures += 1;
                            }
                            None
                        }
                        Some(Intrinsic::Ignore) => None,
                        None => call_function(cx, scr, callee.unwrap(), &arg_values)?,
                    };
                    if let (Some(dst), Some(value)) = (dst, result) {
                        st.regs[*dst as usize] = value;
                    }
                }
                SuperOp::Wait {
                    resume,
                    time,
                    observed,
                } => {
                    scr.observed.clear();
                    for &sig in code.args(*observed) {
                        scr.observed.push(SignalId(sig as usize));
                    }
                    let timeout = match time {
                        Some(t) => Some(delay_value(st, t)?),
                        None => None,
                    };
                    st.status = Status::Suspended {
                        resume: *resume as usize,
                    };
                    sink.suspend(idx, &scr.observed, timeout.as_ref());
                    return Ok(());
                }
                SuperOp::Halt => {
                    st.status = Status::Halted;
                    return Ok(());
                }
                SuperOp::Br { target } => {
                    next_block = Some(*target as usize);
                    break;
                }
                SuperOp::BrCond {
                    cond,
                    if_false,
                    if_true,
                } => {
                    next_block = Some(if st.regs[*cond as usize].is_truthy() {
                        *if_true as usize
                    } else {
                        *if_false as usize
                    });
                    break;
                }
                SuperOp::Ret => {
                    return Err(SimError::Runtime("ret outside of a function".to_string()));
                }
            }
        }
        match next_block {
            Some(b) => block = b,
            None => {
                // Entities simply finish their single pass; processes
                // must end in a terminator, which the verifier enforces.
                return Ok(());
            }
        }
    }
}

/// Resolve a (possibly baked) delay operand to its time value.
fn delay_value(st: &InstanceState, delay: &Delay) -> Result<TimeValue, SimError> {
    match delay {
        Delay::Const(t) => Ok(*t),
        Delay::Reg(slot) => time_reg(st, *slot as usize),
    }
}

fn time_reg(st: &InstanceState, slot: usize) -> Result<TimeValue, SimError> {
    st.regs[slot]
        .as_time()
        .copied()
        .ok_or_else(|| SimError::Runtime("expected a time value".to_string()))
}

fn call_function(
    cx: &ExecCx,
    scr: &mut Scratch,
    callee: UnitId,
    args: &[ConstValue],
) -> Result<Option<ConstValue>, SimError> {
    let unit = Arc::clone(&cx.compiled.units[&callee]);
    if unit.kind != UnitKind::Function {
        return Err(SimError::Runtime(format!(
            "call target {} is not a function",
            unit.name
        )));
    }
    let mut regs = unit.new_regs();
    let mut mems = vec![ConstValue::Void; unit.num_mems];
    for (slot, value) in unit.arg_regs.iter().zip(args.iter()) {
        regs[*slot] = value.clone();
    }
    let mut block = unit.entry;
    let mut steps = 0usize;
    loop {
        let mut next_block = None;
        for op in unit.block_ops(block) {
            steps += 1;
            if steps > cx.max_steps {
                return Err(SimError::Runtime(format!(
                    "function {} exceeded the step limit",
                    unit.name
                )));
            }
            match op {
                Op::Pure {
                    opcode,
                    dst,
                    args,
                    imms,
                } => {
                    // Sharing `scr.args` across call frames is fine: the
                    // buffer only lives across one eval_pure, and pure
                    // ops never recurse into another frame.
                    scr.args.clear();
                    scr.args
                        .extend(unit.args(*args).iter().map(|&a| regs[a as usize].clone()));
                    let value = eval_pure(*opcode, &scr.args, imms)
                        .ok_or_else(|| SimError::Runtime(format!("cannot evaluate {}", opcode)))?;
                    regs[*dst] = value;
                }
                Op::Var { mem, init } => mems[*mem] = regs[*init].clone(),
                Op::Ld { dst, mem } => regs[*dst] = mems[*mem].clone(),
                Op::St { mem, value } => mems[*mem] = regs[*value].clone(),
                Op::Call {
                    callee,
                    intrinsic,
                    dst,
                    args,
                } => {
                    let arg_values: Vec<ConstValue> = unit
                        .args(*args)
                        .iter()
                        .map(|&a| regs[a as usize].clone())
                        .collect();
                    let result = match intrinsic {
                        Some(Intrinsic::Assert) => {
                            scr.assertions_checked += 1;
                            if !arg_values.first().map(|a| a.is_truthy()).unwrap_or(false) {
                                scr.assertion_failures += 1;
                            }
                            None
                        }
                        Some(Intrinsic::Ignore) => None,
                        None => call_function(cx, scr, callee.unwrap(), &arg_values)?,
                    };
                    if let (Some(dst), Some(value)) = (dst, result) {
                        regs[*dst] = value;
                    }
                }
                Op::Br { target } => {
                    next_block = Some(*target);
                    break;
                }
                Op::BrCond {
                    cond,
                    if_false,
                    if_true,
                } => {
                    next_block = Some(if regs[*cond].is_truthy() {
                        *if_true
                    } else {
                        *if_false
                    });
                    break;
                }
                Op::Ret { value } => {
                    return Ok(value.map(|v| regs[v].clone()));
                }
                _ => {
                    return Err(SimError::Runtime(
                        "unsupported operation in function".to_string(),
                    ))
                }
            }
        }
        match next_block {
            Some(b) => block = b,
            None => return Ok(None),
        }
    }
}

impl llhd_sim::api::Engine for BlazeSimulator {
    fn engine_name(&self) -> &'static str {
        "blaze"
    }
    fn initialize(&mut self) -> Result<(), SimError> {
        BlazeSimulator::initialize(self)
    }
    fn step(&mut self) -> Result<bool, SimError> {
        BlazeSimulator::step(self)
    }
    fn time(&self) -> TimeValue {
        BlazeSimulator::time(self)
    }
    fn peek(&self, signal: SignalId) -> ConstValue {
        self.signal_value(signal).clone()
    }
    fn poke(&mut self, signal: SignalId, value: ConstValue) {
        BlazeSimulator::poke(self, signal, value)
    }
    fn drain_trace_into(&mut self, buf: &mut Vec<llhd_sim::trace::TraceEvent>) {
        BlazeSimulator::drain_trace_into(self, buf)
    }
    fn finish(&mut self) -> SimResult {
        BlazeSimulator::finish(self)
    }
    fn checkpoint(&self) -> Result<EngineState, SimError> {
        BlazeSimulator::checkpoint(self)
    }
    fn restore(&mut self, state: &EngineState) -> Result<(), SimError> {
        BlazeSimulator::restore(self, state)
    }
    fn set_control(&mut self, control: llhd_sim::RunControl) -> bool {
        self.config.control = control;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session;
    use llhd::assembly::parse_module;
    use llhd_sim::api::{EngineKind, SimSession};
    use llhd_sim::SimResult;

    /// Compiled runs constructed through the unified session surface.
    fn simulate(
        module: &llhd::ir::Module,
        top: &str,
        config: &SimConfig,
    ) -> Result<SimResult, llhd_sim::api::Error> {
        session(module, top)
            .engine(EngineKind::Compile)
            .config(config.clone())
            .build()?
            .run()
    }

    /// Interpreter runs, for differential checks.
    fn simulate_reference(
        module: &llhd::ir::Module,
        top: &str,
        config: &SimConfig,
    ) -> Result<SimResult, llhd_sim::api::Error> {
        SimSession::builder(module, top)
            .engine(EngineKind::Interpret)
            .config(config.clone())
            .build()?
            .run()
    }

    #[test]
    fn compiled_counter_matches_reference() {
        let module = parse_module(
            r#"
            proc @counter (i1$ %clk) -> (i8$ %out) {
            entry:
                %zero = const i8 0
                %i = var i8 %zero
                br %loop
            loop:
                %cur = ld i8* %i
                %one = const i8 1
                %next = add i8 %cur, %one
                st i8* %i, %next
                %delay = const time 1ns
                drv i8$ %out, %next after %delay
                wait %loop for %delay
            }
            "#,
        )
        .unwrap();
        let config = SimConfig::until_nanos(50);
        let reference = simulate_reference(&module, "counter", &config).unwrap();
        let blaze = simulate(&module, "counter", &config).unwrap();
        assert!(reference.trace.equivalent(&blaze.trace));
        assert_eq!(reference.signal_changes, blaze.signal_changes);
        let last = blaze.trace.changes_of("out").last().unwrap().clone();
        assert_eq!(last.value, ConstValue::int(8, 50));
    }

    /// Checkpoint mid-run, discard the session, restore into a fresh
    /// compiled engine, and resume: the final trace must be byte-identical
    /// to an uninterrupted run. Processes carry variables and a resume
    /// block across the boundary, which exercises the per-instance state.
    #[test]
    fn checkpoint_resume_matches_uninterrupted_compiled_run() {
        let module = parse_module(
            r#"
            proc @counter (i1$ %clk) -> (i8$ %out) {
            entry:
                %zero = const i8 0
                %i = var i8 %zero
                br %loop
            loop:
                %cur = ld i8* %i
                %one = const i8 1
                %next = add i8 %cur, %one
                st i8* %i, %next
                %delay = const time 1ns
                drv i8$ %out, %next after %delay
                wait %loop for %delay
            }
            "#,
        )
        .unwrap();
        let config = SimConfig::until_nanos(50);
        let full = simulate(&module, "counter", &config).unwrap();
        let mut first = session(&module, "counter")
            .engine(EngineKind::Compile)
            .config(config.clone())
            .build()
            .unwrap();
        for _ in 0..7 {
            first.step().unwrap();
        }
        let state = first.checkpoint().unwrap();
        assert_eq!(state.engine_name().unwrap(), "blaze");
        drop(first);
        let mut resumed = session(&module, "counter")
            .engine(EngineKind::Compile)
            .config(config.clone())
            .build()
            .unwrap();
        resumed.restore(&state).unwrap();
        while resumed.step().unwrap() {}
        let result = resumed.finish().unwrap();
        assert_eq!(full.trace.events(), result.trace.events());
        assert_eq!(full.end_time, result.end_time);
        assert_eq!(full.signal_changes, result.signal_changes);
        assert_eq!(full.activations, result.activations);
        // A blaze checkpoint must not restore into the interpreter.
        let mut interp = SimSession::builder(&module, "counter")
            .engine(EngineKind::Interpret)
            .config(config.clone())
            .build()
            .unwrap();
        assert!(interp.restore(&state).is_err());
    }

    /// A failed step poisons the engine under the *specialized* dispatch
    /// loop exactly like it did under the generic one: the error replays
    /// on every later step instead of silently resuming the half-applied
    /// cycle.
    #[test]
    fn poisoned_engine_replays_error_under_specialized_dispatch() {
        // A zero-delay inverter pair oscillates forever within one
        // instant; the delta-cycle guard fails the step mid-run. Entities
        // always take the specialized stream, which the test asserts.
        let module = parse_module(
            r#"
            entity @inv (i1$ %a) -> (i1$ %q) {
                %ap = prb i1$ %a
                %n = not i1 %ap
                %delay = const time 0s
                drv i1$ %q, %n after %delay
            }
            entity @top () -> () {
                %zero = const i1 0
                %x = sig i1 %zero
                %y = sig i1 %zero
                inst @inv (%x) -> (%y)
                inst @inv (%y) -> (%x)
            }
            "#,
        )
        .unwrap();
        let design = llhd_sim::elaborate(&module, "top").unwrap();
        let compiled = crate::compile_design(&module, design).unwrap();
        assert!(
            compiled
                .instances
                .iter()
                .filter(|i| i.kind == llhd_sim::design::InstanceKind::Entity)
                .all(|i| i.code.is_some()),
            "entities must execute the specialized stream"
        );
        let mut sim = BlazeSimulator::new(compiled, SimConfig::until_nanos(10));
        let first = loop {
            match sim.step() {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(matches!(first, SimError::Runtime(_)));
        // Later steps replay the failure instead of continuing from the
        // half-applied cycle, and so does a fresh initialize.
        assert_eq!(sim.step().unwrap_err(), first);
        assert_eq!(sim.step().unwrap_err(), first);
        BlazeSimulator::initialize(&mut sim).unwrap_err();
    }

    /// The specialized loop hits the same error points as the generic
    /// one: a `ret` outside a function fails the activation, and the
    /// session replays it.
    #[test]
    fn ret_in_specialized_process_poisons_and_replays() {
        // The wait's back edge makes the process eligible for
        // specialization; the false branch of the entry compare reaches
        // the illegal `ret` on the very first activation.
        let module = parse_module(
            r#"
            proc @bad (i1$ %c) -> () {
            entry:
                %cp = prb i1$ %c
                %t = const time 1ns
                br %cp, %stop, %again
            again:
                wait %entry for %t
            stop:
                ret
            }
            entity @top () -> () {
                %zero = const i1 0
                %c = sig i1 %zero
                inst @bad (%c) -> ()
            }
            "#,
        )
        .unwrap();
        let design = llhd_sim::elaborate(&module, "top").unwrap();
        let compiled = crate::compile_design(&module, design).unwrap();
        assert!(
            compiled
                .instances
                .iter()
                .filter(|i| i.kind == InstanceKind::Process)
                .all(|i| i.code.is_some()),
            "the looping process must execute the specialized stream"
        );
        let mut sim = BlazeSimulator::new(compiled, SimConfig::until_nanos(10));
        let first = BlazeSimulator::initialize(&mut sim).unwrap_err();
        assert!(matches!(first, SimError::Runtime(_)));
        assert_eq!(first.to_string(), "runtime error: ret outside of a function");
        assert_eq!(BlazeSimulator::initialize(&mut sim).unwrap_err(), first);
        assert_eq!(sim.step().unwrap_err(), first);
    }

    #[test]
    fn assertions_work_in_compiled_functions() {
        let module = parse_module(
            r#"
            func @square (i8 %x) i8 {
            entry:
                %r = umul i8 %x, %x
                ret i8 %r
            }
            proc @tb () -> () {
            entry:
                %three = const i8 3
                %nine = const i8 9
                %sq = call i8 @square (%three)
                %ok = eq i8 %sq, %nine
                call void @llhd.assert (%ok)
                %bad = const i8 8
                %notok = eq i8 %sq, %bad
                call void @llhd.assert (%notok)
                halt
            }
            "#,
        )
        .unwrap();
        let result = simulate(&module, "tb", &SimConfig::until_nanos(10)).unwrap();
        assert_eq!(result.assertions_checked, 2);
        assert_eq!(result.assertion_failures, 1);
    }
}
