//! # llhd-blaze — an accelerated LLHD simulator
//!
//! The paper's LLHD-Blaze translates LLHD into LLVM IR and JIT-compiles it.
//! This reproduction keeps the same pipeline position — LLHD in, fast
//! cycle-accurate simulation out — but replaces the external JIT with an
//! ahead-of-time compilation of every unit into a dense, pre-resolved
//! internal form:
//!
//! * SSA values become numbered **register slots** instead of hash-map
//!   entries,
//! * signal references become per-instance **signal slot tables**,
//! * constants are materialised once at compile time,
//! * opcode dispatch happens over a compact [`Op`](compile::Op) enum with
//!   all operand indices pre-computed.
//!
//! The scheduler (event queue, delta cycles, process suspension) is the same
//! event-driven model as the reference interpreter, so the two simulators
//! produce identical traces; only the per-activation execution cost differs.

pub mod compile;
pub mod engine;
pub mod superop;

pub use compile::{
    compile_design, compile_design_with, BlazeOptions, CompileError, CompiledDesign,
};
pub use engine::BlazeSimulator;

use llhd::ir::Module;
use llhd_sim::api::{
    self, CompileBackend, CompiledArtifact, Engine, Error, SessionBuilder, SimSession,
};
use std::sync::Arc;

/// Install this crate as the compile backend of the unified session API,
/// so [`llhd_sim::api::EngineKind::Compile`] (and `Auto` on large designs)
/// resolves to the blaze engine. Idempotent and cheap — call it once at
/// startup, or go through [`session`], which calls it for you.
///
/// ```
/// use llhd_sim::api::{compile_backend, EngineKind, SimSession};
///
/// llhd_blaze::register();
/// assert_eq!(compile_backend().map(|b| b.name), Some("blaze"));
/// let module = llhd::assembly::parse_module(
///     "entity @top () -> () {
///         %zero = const i8 0
///         %q = sig i8 %zero
///     }",
/// )
/// .unwrap();
/// let session = SimSession::builder(&module, "top")
///     .engine(EngineKind::Compile)
///     .build()
///     .unwrap();
/// assert_eq!(session.engine_name(), "blaze");
/// ```
pub fn register() {
    api::register_compile_backend(CompileBackend {
        name: "blaze",
        compile: |module, design| {
            compile_design(module, design)
                .map(|compiled| Arc::new(compiled) as CompiledArtifact)
                .map_err(|e| Error::Compile(e.0))
        },
        instantiate: |artifact, config| {
            let compiled = Arc::clone(artifact)
                .downcast::<CompiledDesign>()
                .map_err(|_| {
                    Error::Compile("cached artifact is not a blaze CompiledDesign".to_string())
                })?;
            Ok(Box::new(BlazeSimulator::new(compiled, config.clone())) as Box<dyn Engine>)
        },
        artifact_bytes: |artifact| {
            artifact
                .downcast_ref::<CompiledDesign>()
                .map(CompiledDesign::approx_bytes)
                .unwrap_or(0)
        },
        artifact_stats: |artifact| {
            artifact
                .downcast_ref::<CompiledDesign>()
                .map(CompiledDesign::unit_stats)
                .unwrap_or_default()
        },
    });
}

/// Start configuring a [`SimSession`] with the blaze backend registered:
/// the one-stop entry point for consumers that want both engines
/// available behind [`llhd_sim::api::EngineKind`].
///
/// ```
/// let module = llhd::assembly::parse_module(
///     "proc @pulse () -> (i1$ %q) {
///     entry:
///         %on = const i1 1
///         %t = const time 2ns
///         drv i1$ %q, %on after %t
///         halt
///     }",
/// )
/// .unwrap();
/// // Engine selection defaults to Auto: small modules run on the
/// // interpreter, large ones on the registered blaze backend.
/// let result = llhd_blaze::session(&module, "pulse")
///     .until_nanos(10)
///     .build()
///     .unwrap()
///     .run()
///     .unwrap();
/// assert_eq!(result.trace.changes_of("q").count(), 1);
/// ```
pub fn session<'m>(module: &'m Module, top: &'m str) -> SessionBuilder<'m> {
    register();
    SimSession::builder(module, top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd::assembly::parse_module;
    use llhd_sim::SimConfig;

    /// The accumulator design of the paper (Figure 2/3/5) with a reduced
    /// iteration count, simulated by both engines; the traces must match.
    #[test]
    fn blaze_and_reference_traces_match() {
        let module = parse_module(
            r#"
            entity @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
                %clkp = prb i1$ %clk
                %dp = prb i32$ %d
                reg i32$ %q, %dp rise %clkp
            }
            entity @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
                %qp = prb i32$ %q
                %xp = prb i32$ %x
                %enp = prb i1$ %en
                %sum = add i32 %qp, %xp
                %dns = array [%qp, %sum]
                %dn = mux [2 x i32] %dns, %enp
                %delay = const time 0s
                drv i32$ %d, %dn after %delay
            }
            entity @acc (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q) {
                %zero = const i32 0
                %d = sig i32 %zero
                inst @acc_ff (%clk, %d) -> (%q)
                inst @acc_comb (%q, %x, %en) -> (%d)
            }
            proc @acc_tb_initial (i32$ %q) -> (i1$ %clk, i32$ %x, i1$ %en) {
            entry:
                %bit0 = const i1 0
                %bit1 = const i1 1
                %zero = const i32 0
                %one = const i32 1
                %many = const i32 20
                %del1ns = const time 1ns
                %del2ns = const time 2ns
                %i = var i32 %zero
                drv i1$ %en, %bit1 after %del2ns
                br %loop
            loop:
                %ip = ld i32* %i
                drv i32$ %x, %ip after %del2ns
                drv i1$ %clk, %bit1 after %del1ns
                drv i1$ %clk, %bit0 after %del2ns
                wait %next for %del2ns
            next:
                %in = add i32 %ip, %one
                st i32* %i, %in
                %cont = ult i32 %ip, %many
                br %cont, %end, %loop
            end:
                halt
            }
            entity @acc_tb () -> () {
                %zero0 = const i1 0
                %zero1 = const i32 0
                %clk = sig i1 %zero0
                %en = sig i1 %zero0
                %x = sig i32 %zero1
                %q = sig i32 %zero1
                inst @acc (%clk, %x, %en) -> (%q)
                inst @acc_tb_initial (%q) -> (%clk, %x, %en)
            }
            "#,
        )
        .unwrap();
        let config = SimConfig::until_nanos(200);
        let reference = session(&module, "acc_tb")
            .engine(llhd_sim::EngineKind::Interpret)
            .config(config.clone())
            .build()
            .unwrap()
            .run()
            .unwrap();
        let blaze = session(&module, "acc_tb")
            .engine(llhd_sim::EngineKind::Compile)
            .config(config.clone())
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(
            reference.trace.equivalent(&blaze.trace),
            "traces diverge:\nreference: {:?}\nblaze: {:?}",
            reference.trace.canonical(),
            blaze.trace.canonical()
        );
        // The accumulator accumulates: q must keep growing.
        let q_changes: Vec<_> = blaze.trace.changes_of("q").collect();
        assert!(q_changes.len() > 5);
    }
}
