//! Compilation of LLHD units into the pre-resolved execution form.

use llhd::ir::{Module, Opcode, RegMode, UnitId, UnitKind, Value};
use llhd::value::ConstValue;
use llhd_sim::design::{ElaboratedDesign, InstanceKind, SignalId};
use llhd_sim::IslandPlan;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An error produced while compiling a unit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompileError(pub String);

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        write!(f, "compile error: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

/// A compiled register trigger.
#[derive(Clone, Debug)]
pub struct CompiledTrigger {
    /// Register slot holding the stored value.
    pub value: usize,
    /// Trigger mode.
    pub mode: RegMode,
    /// Register slot holding the trigger sample.
    pub trigger: usize,
    /// Optional register slot holding the gate condition.
    pub gate: Option<usize>,
    /// State slot remembering the previous trigger sample.
    pub state: usize,
}

/// A compact reference to a run of operand slots in
/// [`CompiledUnit::arg_pool`]. Replaces a per-op `Vec` so compiling an
/// instruction allocates nothing.
#[derive(Clone, Copy, Debug)]
pub struct ArgRange {
    offset: u32,
    len: u32,
}

impl ArgRange {
    /// Append `slots` to `pool` and return the range referencing them.
    pub(crate) fn copy_into(pool: &mut Vec<u32>, slots: &[u32]) -> ArgRange {
        let offset = pool.len() as u32;
        pool.extend_from_slice(slots);
        ArgRange {
            offset,
            len: slots.len() as u32,
        }
    }

    /// The slice of `pool` this range references.
    #[inline]
    pub(crate) fn slice(self, pool: &[u32]) -> &[u32] {
        &pool[self.offset as usize..(self.offset + self.len) as usize]
    }
}

/// Compile-time knobs for the blaze lowering pipeline, exposed for the
/// ablation benchmarks (and anyone who wants the PR-2-era generic
/// dispatch back). The knobs may only change speed, never behaviour —
/// the differential tests assert byte-identical traces across every
/// combination.
///
/// ```
/// use llhd_blaze::{compile_design_with, BlazeOptions};
/// use llhd_sim::{elaborate, SimConfig};
/// use std::sync::Arc;
///
/// let module = llhd::assembly::parse_module(
///     "entity @top () -> () {
///         %zero = const i8 0
///         %q = sig i8 %zero
///     }",
/// )
/// .unwrap();
/// let design = Arc::new(elaborate(&module, "top").unwrap());
/// // Generic dispatch only: no fusion, no per-instance specialization.
/// let compiled = compile_design_with(
///     &module,
///     Arc::clone(&design),
///     BlazeOptions { fuse: false, specialize: false, islands: true },
/// )
/// .unwrap();
/// assert_eq!(compiled.options.fuse, false);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlazeOptions {
    /// Superinstruction fusion: pre-decoded fast-path variants plus the
    /// compare+branch, array+mux, and compute+drive pair fusions. With
    /// `false`, each generic op lowers to exactly one superop.
    pub fuse: bool,
    /// Per-instance specialization: baked signal bindings, inline constant
    /// delays, and cross-block constant folding. With `false`, instances
    /// execute the generic per-op stream through their signal tables.
    pub specialize: bool,
    /// Island-parallel execution: let the engine activate disjoint
    /// sensitivity islands on worker threads when
    /// [`SimConfig::threads`](llhd_sim::SimConfig) asks for more than one.
    /// Purely a speed knob — traces are byte-identical either way. With
    /// `false` the engine always runs the serial activation loop.
    pub islands: bool,
}

impl Default for BlazeOptions {
    fn default() -> Self {
        BlazeOptions {
            fuse: true,
            specialize: true,
            islands: true,
        }
    }
}


/// Recognised intrinsic calls.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Intrinsic {
    /// `llhd.assert`: check a condition.
    Assert,
    /// Any other `llhd.*` call: ignored.
    Ignore,
}

/// One pre-resolved operation.
///
/// Constants never appear here: they are materialized once per register
/// file via [`CompiledUnit::const_regs`] and cost nothing at run time.
#[derive(Clone, Debug)]
pub enum Op {
    /// Evaluate a pure operation.
    Pure {
        opcode: Opcode,
        dst: usize,
        args: ArgRange,
        imms: Vec<usize>,
    },
    /// Probe a signal into a register slot.
    Prb { dst: usize, sig: usize },
    /// Drive a signal.
    Drv {
        sig: usize,
        value: usize,
        delay: usize,
        cond: Option<usize>,
    },
    /// A register storage element.
    Reg {
        sig: usize,
        triggers: Vec<CompiledTrigger>,
    },
    /// A delayed copy of a signal.
    Del {
        target: usize,
        source: usize,
        delay: usize,
    },
    /// Allocate process-local memory.
    Var { mem: usize, init: usize },
    /// Load from process-local memory.
    Ld { dst: usize, mem: usize },
    /// Store to process-local memory.
    St { mem: usize, value: usize },
    /// Call a function or intrinsic.
    Call {
        callee: Option<UnitId>,
        intrinsic: Option<Intrinsic>,
        dst: Option<usize>,
        args: ArgRange,
    },
    /// Suspend until a signal change or timeout.
    Wait {
        resume: usize,
        time: Option<usize>,
        observed: ArgRange,
    },
    /// Suspend forever.
    Halt,
    /// Unconditional branch.
    Br { target: usize },
    /// Conditional branch (false target first, matching the IR).
    BrCond {
        cond: usize,
        if_false: usize,
        if_true: usize,
    },
    /// Return from a function.
    Ret { value: Option<usize> },
}

/// A compiled unit.
#[derive(Clone, Debug)]
pub struct CompiledUnit {
    /// The unit kind.
    pub kind: UnitKind,
    /// The unit name (for diagnostics).
    pub name: String,
    /// All operations of the unit, blocks laid out back to back (one
    /// contiguous stream keeps dispatch cache-friendly and compilation
    /// free of per-block allocations).
    pub ops: Vec<Op>,
    /// Half-open `ops` range of each block, indexed densely.
    pub block_ranges: Vec<(u32, u32)>,
    /// The entry block index.
    pub entry: usize,
    /// Number of value register slots.
    pub num_regs: usize,
    /// Number of memory slots.
    pub num_mems: usize,
    /// Number of register-state slots (one per reg trigger).
    pub num_states: usize,
    /// Number of signal slots.
    pub num_signals: usize,
    /// Register slots of the unit arguments (functions only).
    pub arg_regs: Vec<usize>,
    /// For each unit argument: its signal slot, if it is a signal.
    pub arg_signals: Vec<Option<usize>>,
    /// Dense map from the unit's values (by [`Value::index`]) to signal
    /// slots (`u32::MAX` for non-signal values), used to bind instances.
    pub signal_slot_of_value: Vec<u32>,
    /// Constants pre-materialized into register slots. Register slots are
    /// written only by their unique SSA definition, so loading these once
    /// per register file replaces every runtime `const` execution.
    pub const_regs: Vec<(u32, ConstValue)>,
    /// Operand-slot arena referenced by the [`ArgRange`]s in the ops.
    pub arg_pool: Vec<u32>,
    /// The superinstruction stream (processes and entities only; functions
    /// execute the generic ops). Instance binding specializes it per
    /// instance; see [`crate::superop`].
    pub lowered: Option<crate::superop::LoweredUnit>,
    /// Whether any `const time` in this unit carries an epsilon component.
    /// Collected during the one compile walk so [`compile_design_with`]
    /// can decide enqueue-time drive dropping without re-walking the
    /// module (see [`llhd_sim::sched::module_allows_drive_dropping`] for
    /// the soundness argument).
    pub has_epsilon_time_const: bool,
}

impl CompiledUnit {
    /// A fresh register file with the unit's constants materialized.
    pub fn new_regs(&self) -> Vec<ConstValue> {
        let mut regs = vec![ConstValue::Void; self.num_regs];
        for (slot, value) in &self.const_regs {
            regs[*slot as usize] = value.clone();
        }
        regs
    }

    /// The operand slots referenced by `range`.
    #[inline]
    pub fn args(&self, range: ArgRange) -> &[u32] {
        range.slice(&self.arg_pool)
    }

    /// The operations of block `index`, in execution order.
    #[inline]
    pub fn block_ops(&self, index: usize) -> &[Op] {
        let (start, end) = self.block_ranges[index];
        &self.ops[start as usize..end as usize]
    }

    /// Whether any part of this unit can execute more than once per run:
    /// entities re-run on every sensitivity hit, and a process re-runs
    /// blocks iff its CFG has a back edge (a branch or wait resuming at
    /// its own block or an earlier one). Straight-line processes execute
    /// each op at most once.
    pub fn reexecutes(&self) -> bool {
        if self.kind == UnitKind::Entity {
            return true;
        }
        for (block, &(start, end)) in self.block_ranges.iter().enumerate() {
            for op in &self.ops[start as usize..end as usize] {
                let back = |target: usize| target <= block;
                let has_back_edge = match op {
                    Op::Br { target } => back(*target),
                    Op::BrCond {
                        if_false, if_true, ..
                    } => back(*if_false) || back(*if_true),
                    Op::Wait { resume, .. } => back(*resume),
                    _ => false,
                };
                if has_back_edge {
                    return true;
                }
            }
        }
        false
    }
}

/// A compiled unit instance: the unit plus its signal bindings.
#[derive(Clone, Debug)]
pub struct CompiledInstance {
    /// The compiled unit this instance executes.
    pub unit: UnitId,
    /// Process or entity.
    pub kind: InstanceKind,
    /// Hierarchical name.
    pub name: String,
    /// The global signal bound to each signal slot, pre-resolved through
    /// any `con` aliases so the engine never chases them at run time.
    pub signal_table: Vec<SignalId>,
    /// The specialized superinstruction stream this instance executes
    /// (`None` with [`BlazeOptions::specialize`] off, in which case the
    /// engine falls back to the generic per-op dispatch). Shared so engine
    /// instantiation over a cached design costs a reference-count bump.
    pub code: Option<Arc<crate::superop::SpecializedCode>>,
}

/// A fully compiled design ready for execution by
/// [`BlazeSimulator`](crate::engine::BlazeSimulator).
#[derive(Clone, Debug)]
pub struct CompiledDesign {
    /// Compiled units, indexed by their module handle. Shared pointers keep
    /// per-activation dispatch free of deep copies.
    pub units: HashMap<UnitId, Arc<CompiledUnit>>,
    /// Compiled instances.
    pub instances: Vec<CompiledInstance>,
    /// The elaborated design (signal table, aliases), shared with whoever
    /// elaborated it — typically a session or a design cache.
    pub design: Arc<ElaboratedDesign>,
    /// Whether the scheduler may drop redundant drives before enqueueing
    /// (see [`llhd_sim::sched::module_allows_drive_dropping`]), decided
    /// once at compile time.
    pub allow_drive_drop: bool,
    /// The lowering knobs this design was compiled with.
    pub options: BlazeOptions,
    /// The sensitivity-island partition of the design, computed once at
    /// compile time. Drives the engine's island-parallel instant loop and
    /// stamps its digest into checkpoints (see
    /// [`llhd_sim::IslandPlan`]).
    pub island_plan: IslandPlan,
}

impl CompiledDesign {
    /// A rough retained-size estimate in bytes: op streams, operand pools,
    /// and specialized instance code, by struct size — intentionally cheap
    /// rather than allocator-exact. Feeds the `DesignCache` observability
    /// counters through the backend's `artifact_bytes` hook.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let units: usize = self
            .units
            .values()
            .map(|u| {
                u.name.len()
                    + u.ops.len() * size_of::<Op>()
                    + u.block_ranges.len() * size_of::<(u32, u32)>()
                    + u.arg_pool.len() * size_of::<u32>()
                    + u.signal_slot_of_value.len() * size_of::<u32>()
                    + u.const_regs.len() * size_of::<(u32, ConstValue)>()
                    + u.lowered.as_ref().map_or(0, |l| {
                        l.ops.len() * size_of::<crate::superop::SuperOp>()
                            + l.pool.len() * size_of::<u32>()
                            + (l.consts.len() + l.init_regs.len()) * size_of::<ConstValue>()
                    })
            })
            .sum();
        let instances: usize = self
            .instances
            .iter()
            .map(|i| {
                size_of::<CompiledInstance>()
                    + i.name.len()
                    + i.signal_table.len() * size_of::<usize>()
                    + i.code.as_ref().map_or(0, |c| {
                        c.ops.len() * size_of::<crate::superop::SuperOp>()
                            + c.pool.len() * size_of::<u32>()
                    })
            })
            .sum();
        units + instances
    }

    /// Per-unit compilation statistics — base op counts, superinstruction
    /// counts after lowering, and how many instances run specialized code.
    /// Feeds the introspection surface through the backend's
    /// `artifact_stats` hook; sorted by unit name for a stable listing.
    pub fn unit_stats(&self) -> Vec<llhd_sim::api::UnitArtifactStats> {
        let mut stats: Vec<_> = self
            .units
            .iter()
            .map(|(&id, unit)| {
                let (instances, specialized) = self
                    .instances
                    .iter()
                    .filter(|i| i.unit == id)
                    .fold((0, 0), |(n, s), i| (n + 1, s + i.code.is_some() as usize));
                llhd_sim::api::UnitArtifactStats {
                    name: unit.name.clone(),
                    kind: match unit.kind {
                        UnitKind::Process => "process",
                        UnitKind::Entity => "entity",
                        UnitKind::Function => "function",
                    },
                    base_ops: unit.ops.len(),
                    superops: unit.lowered.as_ref().map_or(0, |l| l.ops.len()),
                    instances,
                    specialized_instances: specialized,
                }
            })
            .collect();
        stats.sort_by(|a, b| a.name.cmp(&b.name));
        stats
    }
}

/// Compile all units of a module and bind the elaborated instances, with
/// the default [`BlazeOptions`] (fusion and specialization on).
///
/// # Errors
///
/// Returns a [`CompileError`] for constructs outside the supported subset.
pub fn compile_design(
    module: &Module,
    design: impl Into<Arc<ElaboratedDesign>>,
) -> Result<CompiledDesign, CompileError> {
    compile_design_with(module, design, BlazeOptions::default())
}

/// [`compile_design`] with explicit lowering knobs (the ablation surface).
///
/// # Errors
///
/// Returns a [`CompileError`] for constructs outside the supported subset.
pub fn compile_design_with(
    module: &Module,
    design: impl Into<Arc<ElaboratedDesign>>,
    options: BlazeOptions,
) -> Result<CompiledDesign, CompileError> {
    let design = design.into();
    let mut units = HashMap::new();
    // Drive dropping is sound iff no time constant anywhere carries an
    // epsilon component; the per-unit compile walk collects that, so no
    // second walk over the module is needed (the criterion matches
    // `llhd_sim::sched::module_allows_drive_dropping`, asserted below).
    let mut allow_drive_drop = true;
    for id in module.units() {
        let compiled = compile_unit_with(module, id, options)?;
        allow_drive_drop &= !compiled.has_epsilon_time_const;
        units.insert(id, Arc::new(compiled));
    }
    debug_assert_eq!(
        allow_drive_drop,
        llhd_sim::sched::module_allows_drive_dropping(module)
    );
    let mut instances = Vec::with_capacity(design.instances.len());
    for instance in &design.instances {
        let unit = &units[&instance.unit];
        let mut signal_table = vec![SignalId(usize::MAX); unit.num_signals];
        for (value, &sig) in &instance.signal_map {
            let slot = unit.signal_slot_of_value[value.index()];
            if slot != u32::MAX {
                signal_table[slot as usize] = design.resolve(sig);
            }
        }
        // Instance-bind-time specialization: bake this instance's signal
        // bindings into its own copy of the (already folded) superop
        // stream. `lowered` is only built when specialization is on.
        let code = unit
            .lowered
            .as_ref()
            .map(|lowered| Arc::new(crate::superop::specialize(lowered, &signal_table)));
        instances.push(CompiledInstance {
            unit: instance.unit,
            kind: instance.kind,
            name: instance.name.clone(),
            signal_table,
            code,
        });
    }
    let island_plan = IslandPlan::build(module, &design);
    Ok(CompiledDesign {
        units,
        instances,
        design,
        allow_drive_drop,
        options,
        island_plan,
    })
}

/// Dense slot allocator: maps `Value::index()` to a compact slot index,
/// assigning slots on first use. Replaces the former per-operand hash-map
/// probes — compile time is on the `simulate()` path, so it gets the same
/// dense-table treatment as the runtime.
struct SlotMap {
    of: Vec<u32>,
    next: u32,
}

impl SlotMap {
    fn new(num_values: usize) -> Self {
        SlotMap {
            of: vec![u32::MAX; num_values],
            next: 0,
        }
    }

    fn get(&mut self, v: Value) -> usize {
        let slot = &mut self.of[v.index()];
        if *slot == u32::MAX {
            *slot = self.next;
            self.next += 1;
        }
        *slot as usize
    }

    fn len(&self) -> usize {
        self.next as usize
    }
}

/// Compile a single unit with the default [`BlazeOptions`].
///
/// # Errors
///
/// Returns a [`CompileError`] for constructs outside the supported subset.
pub fn compile_unit(module: &Module, id: UnitId) -> Result<CompiledUnit, CompileError> {
    compile_unit_with(module, id, BlazeOptions::default())
}

/// Compile a single unit.
pub fn compile_unit_with(
    module: &Module,
    id: UnitId,
    options: BlazeOptions,
) -> Result<CompiledUnit, CompileError> {
    let unit = module.unit(id);
    let num_values = unit.num_value_slots();
    let mut reg_of = SlotMap::new(num_values);
    let mut sig_of = SlotMap::new(num_values);
    let mut mem_of = SlotMap::new(num_values);
    let mut num_states = 0usize;

    let reg = |map: &mut SlotMap, v: Value| -> usize { map.get(v) };

    // Arguments: signal-typed arguments get signal slots, all arguments get
    // register slots (functions read them as values).
    let mut arg_regs = vec![];
    let mut arg_signals = vec![];
    for arg in unit.args() {
        arg_regs.push(reg(&mut reg_of, arg));
        if unit.value_type(arg).is_signal() {
            arg_signals.push(Some(reg(&mut sig_of, arg)));
        } else {
            arg_signals.push(None);
        }
    }

    let block_list = unit.blocks();
    // Count the constants up front: unrolled testbenches materialize
    // thousands, and growing `const_regs` through doublings would memcpy
    // the accumulated `ConstValue`s over and over.
    let num_consts = block_list
        .iter()
        .flat_map(|&b| unit.insts_slice(b))
        .filter(|&&inst| unit.inst_data(inst).opcode == Opcode::Const)
        .count();
    let mut const_regs: Vec<(u32, ConstValue)> = Vec::with_capacity(num_consts);
    let mut arg_pool: Vec<u32> = Vec::with_capacity(unit.num_total_insts());
    let mut block_index = vec![u32::MAX; block_list.iter().map(|b| b.index() + 1).max().unwrap_or(0)];
    for (i, &b) in block_list.iter().enumerate() {
        block_index[b.index()] = i as u32;
    }
    let block_index = |b: llhd::ir::Block| block_index[b.index()] as usize;

    let mut has_epsilon_time_const = false;
    let mut ops: Vec<Op> = Vec::with_capacity(unit.num_total_insts());
    // Parallel to `ops`: whether a pure op's operands are all
    // integer-typed, which lets the superinstruction lowering pick the
    // pre-decoded `IntBin` fast path (types are gone after this walk).
    let mut int_typed: Vec<bool> = Vec::with_capacity(unit.num_total_insts());
    let mut block_ranges = Vec::with_capacity(block_list.len());
    for &block in &block_list {
        let insts = unit.insts_slice(block);
        let start = ops.len() as u32;
        for &inst in insts {
            let data = unit.inst_data(inst);
            let dst = unit.get_inst_result(inst).map(|r| reg(&mut reg_of, r));
            let mut int_args = false;
            let op = match data.opcode {
                Opcode::Const => {
                    // Materialized once into the register file; nothing to
                    // execute at run time.
                    if let Some(ConstValue::Time(t)) = &data.konst {
                        has_epsilon_time_const |= t.epsilon() > 0;
                    }
                    const_regs.push((dst.unwrap() as u32, data.konst.clone().unwrap()));
                    continue;
                }
                Opcode::Sig | Opcode::Inst | Opcode::Con => {
                    // Elaboration-time: allocate the signal slot so instance
                    // binding finds it, then emit nothing — the op stream
                    // carries only instructions that execute.
                    if let Some(result) = unit.get_inst_result(inst) {
                        reg(&mut sig_of, result);
                    }
                    continue;
                }
                Opcode::Prb => Op::Prb {
                    dst: dst.unwrap(),
                    sig: reg(&mut sig_of, data.args[0]),
                },
                Opcode::Drv | Opcode::DrvCond => Op::Drv {
                    sig: reg(&mut sig_of, data.args[0]),
                    value: reg(&mut reg_of, data.args[1]),
                    delay: reg(&mut reg_of, data.args[2]),
                    cond: if data.opcode == Opcode::DrvCond {
                        Some(reg(&mut reg_of, data.args[3]))
                    } else {
                        None
                    },
                },
                Opcode::Del => Op::Del {
                    target: reg(&mut sig_of, unit.inst_result(inst)),
                    source: reg(&mut sig_of, data.args[0]),
                    delay: reg(&mut reg_of, data.args[1]),
                },
                Opcode::Reg => {
                    let mut triggers = vec![];
                    for t in &data.triggers {
                        triggers.push(CompiledTrigger {
                            value: reg(&mut reg_of, t.value),
                            mode: t.mode,
                            trigger: reg(&mut reg_of, t.trigger),
                            gate: t.gate.map(|g| reg(&mut reg_of, g)),
                            state: {
                                let s = num_states;
                                num_states += 1;
                                s
                            },
                        });
                    }
                    Op::Reg {
                        sig: reg(&mut sig_of, data.args[0]),
                        triggers,
                    }
                }
                Opcode::Var | Opcode::Halloc => Op::Var {
                    mem: reg(&mut mem_of, unit.inst_result(inst)),
                    init: reg(&mut reg_of, data.args[0]),
                },
                Opcode::Ld => Op::Ld {
                    dst: dst.unwrap(),
                    mem: reg(&mut mem_of, data.args[0]),
                },
                Opcode::St => Op::St {
                    mem: reg(&mut mem_of, data.args[0]),
                    value: reg(&mut reg_of, data.args[1]),
                },
                Opcode::Free => continue,
                Opcode::Call => {
                    let ext = data
                        .ext_unit
                        .ok_or_else(|| CompileError("call without target".to_string()))?;
                    let name = unit.ext_unit_data(ext).name.clone();
                    let intrinsic = name.ident().and_then(|ident| {
                        ident.strip_prefix("llhd.").map(|rest| {
                            if rest == "assert" {
                                Intrinsic::Assert
                            } else {
                                Intrinsic::Ignore
                            }
                        })
                    });
                    let callee = if intrinsic.is_none() {
                        Some(module.unit_by_name(&name).ok_or_else(|| {
                            CompileError(format!("call to undefined function {}", name))
                        })?)
                    } else {
                        None
                    };
                    let offset = arg_pool.len() as u32;
                    arg_pool.extend(data.args.iter().map(|&a| reg(&mut reg_of, a) as u32));
                    Op::Call {
                        callee,
                        intrinsic,
                        dst,
                        args: ArgRange {
                            offset,
                            len: data.args.len() as u32,
                        },
                    }
                }
                Opcode::Wait | Opcode::WaitTime => {
                    let (time, signals) = if data.opcode == Opcode::WaitTime {
                        (Some(reg(&mut reg_of, data.args[0])), &data.args[1..])
                    } else {
                        (None, &data.args[..])
                    };
                    let offset = arg_pool.len() as u32;
                    arg_pool.extend(signals.iter().map(|&s| reg(&mut sig_of, s) as u32));
                    Op::Wait {
                        resume: block_index(data.blocks[0]),
                        time,
                        observed: ArgRange {
                            offset,
                            len: signals.len() as u32,
                        },
                    }
                }
                Opcode::Halt => Op::Halt,
                Opcode::Br => Op::Br {
                    target: block_index(data.blocks[0]),
                },
                Opcode::BrCond => Op::BrCond {
                    cond: reg(&mut reg_of, data.args[0]),
                    if_false: block_index(data.blocks[0]),
                    if_true: block_index(data.blocks[1]),
                },
                Opcode::Ret => Op::Ret { value: None },
                Opcode::RetValue => Op::Ret {
                    value: Some(reg(&mut reg_of, data.args[0])),
                },
                Opcode::Phi => {
                    return Err(CompileError(
                        "phi nodes are not supported by the compiled simulator".to_string(),
                    ))
                }
                op if op.is_pure() => {
                    int_args = data.args.iter().all(|&a| unit.value_type(a).is_int());
                    let offset = arg_pool.len() as u32;
                    arg_pool.extend(data.args.iter().map(|&a| reg(&mut reg_of, a) as u32));
                    Op::Pure {
                        opcode: op,
                        dst: dst.unwrap(),
                        args: ArgRange {
                            offset,
                            len: data.args.len() as u32,
                        },
                        imms: data.imms.clone(),
                    }
                }
                op => {
                    return Err(CompileError(format!(
                        "unsupported instruction {} in {}",
                        op,
                        unit.name()
                    )))
                }
            };
            ops.push(op);
            int_typed.push(int_args);
        }
        block_ranges.push((start, ops.len() as u32));
    }

    let mut compiled = CompiledUnit {
        kind: unit.kind(),
        name: unit.name().to_string(),
        ops,
        block_ranges,
        entry: 0,
        num_regs: reg_of.len(),
        num_mems: mem_of.len(),
        num_states,
        num_signals: sig_of.len(),
        arg_regs,
        arg_signals,
        signal_slot_of_value: sig_of.of,
        const_regs,
        arg_pool,
        lowered: None,
        has_epsilon_time_const,
    };
    // The lowered stream is only consumed by instance specialization, so
    // it is only built when that knob is on. Functions execute through
    // the generic ops (they never touch signals and are cold next to the
    // activation loop). Of the rest, only *re-executing* bodies are worth
    // lowering: entities (activated on every sensitivity hit) and
    // processes whose CFG has a back edge. A loop-free process — e.g. a
    // testbench `initial` block that a frontend unrolled into thousands
    // of straight-line ops — runs every op at most once, so specializing
    // it can never repay the per-op lowering cost it would add to
    // `compile_design`.
    if options.specialize && compiled.kind != UnitKind::Function && compiled.reexecutes() {
        compiled.lowered = Some(crate::superop::lower_unit(
            &compiled,
            &int_typed,
            options.fuse,
        ));
    }
    Ok(compiled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd::assembly::parse_module;
    use llhd_sim::elaborate;

    #[test]
    fn compiles_process_and_entity() {
        let module = parse_module(
            r#"
            entity @dff (i1$ %clk, i8$ %d) -> (i8$ %q) {
                %clkp = prb i1$ %clk
                %dp = prb i8$ %d
                reg i8$ %q, %dp rise %clkp
            }
            proc @stim () -> (i1$ %clk, i8$ %d) {
            entry:
                %one = const i1 1
                %v = const i8 7
                %t = const time 5ns
                drv i1$ %clk, %one after %t
                drv i8$ %d, %v after %t
                wait %done for %t
            done:
                halt
            }
            entity @top () -> () {
                %z1 = const i1 0
                %z8 = const i8 0
                %clk = sig i1 %z1
                %d = sig i8 %z8
                %q = sig i8 %z8
                inst @dff (%clk, %d) -> (%q)
                inst @stim () -> (%clk, %d)
            }
            "#,
        )
        .unwrap();
        let design = elaborate(&module, "top").unwrap();
        let compiled = compile_design(&module, design).unwrap();
        assert_eq!(compiled.instances.len(), 3);
        let dff = &compiled.units[&module.unit_by_ident("dff").unwrap()];
        assert_eq!(dff.kind, UnitKind::Entity);
        assert_eq!(dff.num_signals, 3);
        assert_eq!(dff.num_states, 1);
        let stim = &compiled.units[&module.unit_by_ident("stim").unwrap()];
        assert_eq!(stim.block_ranges.len(), 2);
        // Every instance's signal table is fully bound.
        for instance in &compiled.instances {
            let unit = &compiled.units[&instance.unit];
            if unit.num_signals > 0 && instance.kind == InstanceKind::Process {
                assert!(instance
                    .signal_table
                    .iter()
                    .all(|s| s.0 != usize::MAX));
            }
        }
    }

    #[test]
    fn unknown_call_target_is_an_error() {
        let module = parse_module(
            r#"
            proc @p () -> () {
            entry:
                %x = const i8 1
                call void @nowhere (%x)
                halt
            }
            "#,
        )
        .unwrap();
        let design = elaborate(&module, "p").unwrap();
        assert!(compile_design(&module, design).is_err());
    }
}
