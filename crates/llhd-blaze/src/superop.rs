//! Superinstruction lowering and per-instance specialization.
//!
//! The generic [`Op`] stream keeps one record per IR
//! instruction and resolves everything through per-instance tables at run
//! time. This module adds the two lowering stages that turn it into the
//! form the hot dispatch loop actually executes:
//!
//! 1. **Superinstruction lowering** (per unit, at `compile_design` time):
//!    each block's contiguous op stream is re-encoded into pre-decoded
//!    [`SuperOp`] records. Operand slots are resolved into variant fields,
//!    pure ops are split into by-reference evaluation variants (no operand
//!    cloning into a scratch buffer), integer-typed binary ops select a
//!    pre-decoded [`IntBin`] fast path (alloc-free for widths ≤ 64 via
//!    `ApInt`'s inline representation), and common adjacent pairs fuse:
//!    compare+branch ([`SuperOp::CmpBr`]), `array`+`mux` selection without
//!    materializing the array ([`SuperOp::Sel`]), and compute+drive
//!    ([`SuperOp::BinDrv`]). Fusion only fires when the intermediate
//!    register has exactly one reader, so nothing observable changes.
//!    Lowering also runs the unit-level constant analysis (`fold_unit`):
//!    pure ops whose inputs are all constants are folded across the whole
//!    unit — their results land in the unit's initial register file
//!    ([`LoweredUnit::init_regs`]) and the ops are marked dropped. The
//!    analysis depends only on the unit's materialized constants, never on
//!    an instance, so it runs exactly once per unit.
//! 2. **Instance specialization** (per instance, at instance-bind time):
//!    every [`CompiledInstance`](crate::compile::CompiledInstance) gets its
//!    own copy of the lowered stream with its bindings baked in — signal
//!    slots become resolved [`SignalId`]s (no table chase per probe/drive),
//!    constant delays become inline [`TimeValue`]s, and the folded ops are
//!    dropped from the emitted stream.
//!
//! Both stages are behind the [`BlazeOptions`](crate::compile::BlazeOptions)
//! knobs so the ablation benchmarks can price them separately, and the
//! differential tests assert byte-identical traces across every knob
//! combination — same value changes, same instants, same statistics, same
//! error points. The one intentional exception is the
//! `max_steps_per_activation` *guard*: fused records count as two executed
//! ops (exact parity with the generic loop), but constant-folded ops no
//! longer execute and therefore no longer count — exactly like the
//! materialized `const` instructions, which stopped counting when they
//! left the op stream.

use crate::compile::{ArgRange, CompiledTrigger, CompiledUnit, Intrinsic, Op};
use llhd::eval::{
    eval_binary, eval_cast, eval_ext_field, eval_ext_slice, eval_ins_field, eval_ins_slice,
    eval_mux, eval_pure, eval_unary,
};
use llhd::ir::{Opcode, UnitId};
use llhd::value::{ApInt, ConstValue, TimeValue};
use llhd_sim::design::SignalId;
use std::cmp::Ordering;

/// A pre-decoded binary operation on integer operands. Selected at
/// lowering time from the IR types, so the dispatch loop goes straight to
/// the `ApInt` method (alloc-free for widths ≤ 64) without re-matching the
/// operand payloads through the generic evaluator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IntBin {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Wrapping multiplication (signed and unsigned agree modulo 2^N).
    Mul,
    /// Unsigned division.
    Udiv,
    /// Unsigned remainder/modulo.
    Urem,
    /// Signed division.
    Sdiv,
    /// Signed remainder.
    Srem,
    /// Signed modulo.
    Smod,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Equality.
    Eq,
    /// Inequality.
    Neq,
    /// Unsigned less-than.
    Ult,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned less-or-equal.
    Ule,
    /// Unsigned greater-or-equal.
    Uge,
    /// Signed less-than.
    Slt,
    /// Signed greater-than.
    Sgt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-or-equal.
    Sge,
}

impl IntBin {
    /// The fast-path kind for `opcode`, if it has one.
    pub fn from_opcode(opcode: Opcode) -> Option<IntBin> {
        Some(match opcode {
            Opcode::Add => IntBin::Add,
            Opcode::Sub => IntBin::Sub,
            Opcode::And => IntBin::And,
            Opcode::Or => IntBin::Or,
            Opcode::Xor => IntBin::Xor,
            Opcode::Umul | Opcode::Smul => IntBin::Mul,
            Opcode::Udiv => IntBin::Udiv,
            Opcode::Urem | Opcode::Umod => IntBin::Urem,
            Opcode::Sdiv => IntBin::Sdiv,
            Opcode::Srem => IntBin::Srem,
            Opcode::Smod => IntBin::Smod,
            Opcode::Shl => IntBin::Shl,
            Opcode::Shr => IntBin::Shr,
            Opcode::Eq => IntBin::Eq,
            Opcode::Neq => IntBin::Neq,
            Opcode::Ult => IntBin::Ult,
            Opcode::Ugt => IntBin::Ugt,
            Opcode::Ule => IntBin::Ule,
            Opcode::Uge => IntBin::Uge,
            Opcode::Slt => IntBin::Slt,
            Opcode::Sgt => IntBin::Sgt,
            Opcode::Sle => IntBin::Sle,
            Opcode::Sge => IntBin::Sge,
            _ => return None,
        })
    }

    /// Evaluate on integer payloads. Must agree exactly with
    /// [`eval_binary`] on `(Int, Int)` operands — the differential tests
    /// enforce this on every design, and `int_fast_path_matches_evaluator`
    /// below enforces it per kind.
    #[inline]
    pub fn eval(self, a: &ApInt, b: &ApInt) -> ConstValue {
        match self {
            IntBin::Add => ConstValue::Int(a.add(b)),
            IntBin::Sub => ConstValue::Int(a.sub(b)),
            IntBin::And => ConstValue::Int(a.and(b)),
            IntBin::Or => ConstValue::Int(a.or(b)),
            IntBin::Xor => ConstValue::Int(a.xor(b)),
            IntBin::Mul => ConstValue::Int(a.mul(b)),
            IntBin::Udiv => ConstValue::Int(a.udiv(b)),
            IntBin::Urem => ConstValue::Int(a.urem(b)),
            IntBin::Sdiv => ConstValue::Int(a.sdiv(b)),
            IntBin::Srem => ConstValue::Int(a.srem(b)),
            IntBin::Smod => ConstValue::Int(a.smod(b)),
            IntBin::Shl => ConstValue::Int(a.shl_bits(b.to_u64() as usize)),
            IntBin::Shr => ConstValue::Int(a.lshr_bits(b.to_u64() as usize)),
            IntBin::Eq => ConstValue::bool(a == b),
            IntBin::Neq => ConstValue::bool(a != b),
            IntBin::Ult => ConstValue::bool(a.ucmp(b) == Ordering::Less),
            IntBin::Ugt => ConstValue::bool(a.ucmp(b) == Ordering::Greater),
            IntBin::Ule => ConstValue::bool(a.ucmp(b) != Ordering::Greater),
            IntBin::Uge => ConstValue::bool(a.ucmp(b) != Ordering::Less),
            IntBin::Slt => ConstValue::bool(a.scmp(b) == Ordering::Less),
            IntBin::Sgt => ConstValue::bool(a.scmp(b) == Ordering::Greater),
            IntBin::Sle => ConstValue::bool(a.scmp(b) != Ordering::Greater),
            IntBin::Sge => ConstValue::bool(a.scmp(b) != Ordering::Less),
        }
    }
}

/// Evaluate a binary superop: the pre-decoded integer fast path when both
/// operands are integers, the shared evaluator otherwise.
#[inline]
pub fn eval_bin(kind: Option<IntBin>, opcode: Opcode, a: &ConstValue, b: &ConstValue) -> Option<ConstValue> {
    if let (Some(kind), ConstValue::Int(a), ConstValue::Int(b)) = (kind, a, b) {
        return Some(kind.eval(a, b));
    }
    eval_binary(opcode, a, b)
}

/// A drive/wait delay operand: a register slot, or a constant baked in by
/// specialization (saving the per-drive register read and time extraction).
#[derive(Clone, Debug)]
pub enum Delay {
    /// Read the delay from a register slot at run time.
    Reg(u32),
    /// A delay that specialization proved constant.
    Const(TimeValue),
}

/// One pre-decoded superinstruction.
///
/// Signal operands (`sig`, `target`, `source`, the pool entries of a
/// `Wait`'s observed list) hold *signal slots* in the per-unit lowered
/// form and *resolved [`SignalId`]s* after [`specialize`] — only the
/// specialized form is ever executed.
#[derive(Clone, Debug)]
pub enum SuperOp {
    /// Generic pure fallback (aggregate construction and anything without
    /// a by-reference variant): clones its operands and calls [`eval_pure`].
    Pure {
        /// The opcode to evaluate.
        opcode: Opcode,
        /// Destination register slot.
        dst: u32,
        /// Operand register slots in the pool.
        args: ArgRange,
        /// Immediate operands.
        imms: Vec<usize>,
    },
    /// A binary operation evaluated by reference.
    Bin {
        /// Pre-decoded integer fast path, when the operand types are
        /// integers.
        kind: Option<IntBin>,
        /// The opcode, for the generic fallback and diagnostics.
        opcode: Opcode,
        /// Destination register slot.
        dst: u32,
        /// Left operand register slot.
        a: u32,
        /// Right operand register slot.
        b: u32,
    },
    /// A unary operation (`not`, `neg`, `alias`) evaluated by reference.
    Un {
        /// The opcode.
        opcode: Opcode,
        /// Destination register slot.
        dst: u32,
        /// Operand register slot.
        a: u32,
    },
    /// A width cast (`zext`, `sext`, `trunc`) evaluated by reference.
    Cast {
        /// The opcode.
        opcode: Opcode,
        /// Destination register slot.
        dst: u32,
        /// Operand register slot.
        a: u32,
        /// Target width.
        width: u32,
    },
    /// `extf` field extraction, by reference.
    ExtF {
        /// Destination register slot.
        dst: u32,
        /// Aggregate operand register slot.
        a: u32,
        /// Field index.
        index: u32,
    },
    /// `exts` slice extraction, by reference.
    ExtS {
        /// Destination register slot.
        dst: u32,
        /// Aggregate operand register slot.
        a: u32,
        /// Slice offset.
        offset: u32,
        /// Slice length.
        length: u32,
    },
    /// `insf` field insertion, by reference.
    InsF {
        /// Destination register slot.
        dst: u32,
        /// Aggregate operand register slot.
        a: u32,
        /// Inserted value register slot.
        b: u32,
        /// Field index.
        index: u32,
    },
    /// `inss` slice insertion, by reference.
    InsS {
        /// Destination register slot.
        dst: u32,
        /// Aggregate operand register slot.
        a: u32,
        /// Inserted value register slot.
        b: u32,
        /// Slice offset.
        offset: u32,
    },
    /// `mux` evaluated by reference (no clone of the choices array).
    Mux {
        /// Destination register slot.
        dst: u32,
        /// Choices (array) register slot.
        choices: u32,
        /// Selector register slot.
        sel: u32,
    },
    /// Fused `array`+`mux`: select one of the element registers directly,
    /// without ever materializing the array.
    Sel {
        /// Destination register slot.
        dst: u32,
        /// Selector register slot.
        sel: u32,
        /// Element register slots in the pool.
        elems: ArgRange,
    },
    /// Fused compare+branch: evaluate the comparison and branch on it
    /// without materializing the boolean.
    CmpBr {
        /// Pre-decoded integer fast path.
        kind: Option<IntBin>,
        /// The comparison opcode.
        opcode: Opcode,
        /// Left operand register slot.
        a: u32,
        /// Right operand register slot.
        b: u32,
        /// Block index when the comparison is false.
        if_false: u32,
        /// Block index when the comparison is true.
        if_true: u32,
    },
    /// Fused compute+drive: evaluate a binary operation and drive the
    /// result. The (dead) destination slot is kept so specialization can
    /// fold a constant compute into a plain drive.
    BinDrv {
        /// Pre-decoded integer fast path.
        kind: Option<IntBin>,
        /// The compute opcode.
        opcode: Opcode,
        /// Destination register slot (no remaining readers).
        dst: u32,
        /// Left operand register slot.
        a: u32,
        /// Right operand register slot.
        b: u32,
        /// The driven signal.
        sig: u32,
        /// The drive delay.
        delay: Delay,
        /// Optional condition register slot.
        cond: Option<u32>,
    },
    /// Probe a signal into a register slot.
    Prb {
        /// Destination register slot.
        dst: u32,
        /// The probed signal.
        sig: u32,
    },
    /// Drive a signal.
    Drv {
        /// The driven signal.
        sig: u32,
        /// Value register slot.
        value: u32,
        /// The drive delay.
        delay: Delay,
        /// Optional condition register slot.
        cond: Option<u32>,
    },
    /// A delayed copy of a signal.
    Del {
        /// The driven signal.
        target: u32,
        /// The source signal.
        source: u32,
        /// The copy delay.
        delay: Delay,
    },
    /// A register storage element.
    Reg {
        /// The driven signal.
        sig: u32,
        /// The triggers, sharing the unit's state slots.
        triggers: Vec<CompiledTrigger>,
    },
    /// Allocate process-local memory.
    Var {
        /// Memory slot.
        mem: u32,
        /// Initial value register slot.
        init: u32,
    },
    /// Load from process-local memory.
    Ld {
        /// Destination register slot.
        dst: u32,
        /// Memory slot.
        mem: u32,
    },
    /// Store to process-local memory.
    St {
        /// Memory slot.
        mem: u32,
        /// Value register slot.
        value: u32,
    },
    /// Call a function or intrinsic.
    Call {
        /// The called unit, unless this is an intrinsic.
        callee: Option<UnitId>,
        /// The recognised intrinsic, if any.
        intrinsic: Option<Intrinsic>,
        /// Destination register slot.
        dst: Option<u32>,
        /// Argument register slots in the pool.
        args: ArgRange,
    },
    /// Suspend until a signal change or timeout.
    Wait {
        /// Block index to resume at.
        resume: u32,
        /// Optional timeout.
        time: Option<Delay>,
        /// Observed signals in the pool.
        observed: ArgRange,
    },
    /// Suspend forever.
    Halt,
    /// Unconditional branch.
    Br {
        /// Target block index.
        target: u32,
    },
    /// Conditional branch.
    BrCond {
        /// Condition register slot.
        cond: u32,
        /// Block index when false.
        if_false: u32,
        /// Block index when true.
        if_true: u32,
    },
    /// Return — illegal outside functions; kept so the runtime error (and
    /// engine poisoning) replays identically to the generic path.
    Ret,
}

/// The per-unit lowered superinstruction stream, in slot space, with the
/// unit-level constant analysis already applied (constant folding depends
/// only on the unit's materialized constants, never on an instance, so it
/// runs once here rather than once per instance).
#[derive(Clone, Debug, Default)]
pub struct LoweredUnit {
    /// All superops, blocks laid out back to back. Constant branches and
    /// drive conditions are already simplified in place.
    pub ops: Vec<SuperOp>,
    /// Half-open `ops` range of each block.
    pub block_ranges: Vec<(u32, u32)>,
    /// Operand pool referenced by the [`ArgRange`]s.
    pub pool: Vec<u32>,
    /// Per-op: constant-folded out of the stream (skipped at
    /// specialization emit; their results live in [`LoweredUnit::consts`]).
    pub dropped: Vec<bool>,
    /// The constant state of every register slot: the unit's materialized
    /// constants plus every folded result.
    pub consts: Vec<Option<ConstValue>>,
    /// The initial register file with the folded constants applied.
    /// Engines clone this per instance instead of re-materializing.
    pub init_regs: Vec<ConstValue>,
}

impl LoweredUnit {
    /// The operand slots referenced by `range`.
    #[inline]
    pub fn args(&self, range: ArgRange) -> &[u32] {
        range.slice(&self.pool)
    }
}

/// How often each register slot is read by the generic op stream. Fusion
/// requires the fused-away intermediate to have exactly one reader.
fn reg_read_counts(unit: &CompiledUnit) -> Vec<u32> {
    let mut reads = vec![0u32; unit.num_regs];
    let mut read = |slot: usize| reads[slot] += 1;
    for op in &unit.ops {
        match op {
            Op::Pure { args, .. } => {
                for &a in unit.args(*args) {
                    read(a as usize);
                }
            }
            Op::Prb { .. } | Op::Halt | Op::Br { .. } => {}
            Op::Drv {
                value, delay, cond, ..
            } => {
                read(*value);
                read(*delay);
                if let Some(c) = cond {
                    read(*c);
                }
            }
            Op::Del { delay, .. } => read(*delay),
            Op::Reg { triggers, .. } => {
                for t in triggers {
                    read(t.value);
                    read(t.trigger);
                    if let Some(g) = t.gate {
                        read(g);
                    }
                }
            }
            Op::Var { init, .. } => read(*init),
            Op::Ld { .. } => {}
            Op::St { value, .. } => read(*value),
            Op::Call { args, .. } => {
                for &a in unit.args(*args) {
                    read(a as usize);
                }
            }
            Op::Wait { time, .. } => {
                if let Some(t) = time {
                    read(*t);
                }
            }
            Op::BrCond { cond, .. } => read(*cond),
            Op::Ret { value } => {
                if let Some(v) = value {
                    read(*v);
                }
            }
        }
    }
    reads
}

/// Lower a compiled unit's generic op stream into superinstructions.
///
/// `int_typed` is parallel to `unit.ops` and marks pure ops whose operands
/// are all integer-typed (computed from the IR types during compilation);
/// `fuse` enables pair fusion and is threaded through from
/// [`BlazeOptions::fuse`](crate::compile::BlazeOptions).
pub fn lower_unit(unit: &CompiledUnit, int_typed: &[bool], fuse: bool) -> LoweredUnit {
    let reads = reg_read_counts(unit);
    let mut out = LoweredUnit {
        ops: Vec::with_capacity(unit.ops.len()),
        block_ranges: Vec::with_capacity(unit.block_ranges.len()),
        pool: Vec::new(),
        dropped: Vec::new(),
        consts: Vec::new(),
        init_regs: Vec::new(),
    };
    for block in 0..unit.block_ranges.len() {
        let (start, end) = unit.block_ranges[block];
        let (start, end) = (start as usize, end as usize);
        let block_start = out.ops.len() as u32;
        let mut i = start;
        while i < end {
            let op = &unit.ops[i];
            // Pair fusion: a pure compute whose single reader is the
            // immediately following op.
            if fuse && i + 1 < end {
                if let Some(fused) = try_fuse(unit, int_typed, &reads, i, &mut out.pool) {
                    out.ops.push(fused);
                    i += 2;
                    continue;
                }
            }
            let lowered = lower_op(unit, int_typed, op, i, &mut out.pool);
            out.ops.push(lowered);
            i += 1;
        }
        out.block_ranges.push((block_start, out.ops.len() as u32));
    }
    fold_unit(&mut out, unit);
    out
}

/// Constant-fold the lowered stream to fixpoint. Register slots are
/// written by their unique SSA definition only, so a slot holding a
/// materialized constant (or a folded result) is constant for the whole
/// run of any instance — the analysis is purely unit-level. Blocks are
/// laid out in definition order, so a forward pass folds whole chains at
/// once and the loop almost always converges on the second (no-change)
/// pass. Folding uses the same evaluation functions the runtime would, so
/// a fold can never produce a value the generic path would not have
/// produced; ops whose evaluation fails are kept so runtime errors (and
/// engine poisoning) replay identically.
fn fold_unit(lowered: &mut LoweredUnit, unit: &CompiledUnit) {
    let mut consts: Vec<Option<ConstValue>> = vec![None; unit.num_regs];
    for (slot, value) in &unit.const_regs {
        consts[*slot as usize] = Some(value.clone());
    }
    let mut dropped = vec![false; lowered.ops.len()];
    loop {
        let mut changed = false;
        for (i, dropped) in dropped.iter_mut().enumerate() {
            if *dropped {
                continue;
            }
            match fold_op(&lowered.ops[i], &lowered.pool, &consts) {
                Fold::None => {}
                Fold::Value(dst, value) => {
                    consts[dst as usize] = Some(value);
                    *dropped = true;
                    changed = true;
                }
                Fold::Drop => {
                    *dropped = true;
                    changed = true;
                }
                Fold::Replace(new_op) => {
                    lowered.ops[i] = new_op;
                    changed = true;
                }
                Fold::ValueAndReplace(dst, value, new_op) => {
                    consts[dst as usize] = Some(value);
                    lowered.ops[i] = new_op;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut init_regs = unit.new_regs();
    for (slot, value) in consts.iter().enumerate() {
        if let Some(value) = value {
            init_regs[slot] = value.clone();
        }
    }
    lowered.dropped = dropped;
    lowered.consts = consts;
    lowered.init_regs = init_regs;
}

/// Try to fuse `unit.ops[i]` with its successor. Returns the fused
/// superop, or `None` when the pair does not match a fusion pattern. Every
/// pattern requires the intermediate register to have exactly one reader
/// (the successor), so dropping its write is unobservable.
fn try_fuse(
    unit: &CompiledUnit,
    int_typed: &[bool],
    reads: &[u32],
    i: usize,
    pool: &mut Vec<u32>,
) -> Option<SuperOp> {
    let (first, second) = (&unit.ops[i], &unit.ops[i + 1]);
    let Op::Pure {
        opcode,
        dst,
        args,
        imms,
    } = first
    else {
        return None;
    };
    if !imms.is_empty() || reads[*dst] != 1 {
        return None;
    }
    let arg_slots = unit.args(*args);
    // array+mux: select among the element registers directly, never
    // materializing the array (saves a per-activation heap allocation).
    if *opcode == Opcode::Array && !arg_slots.is_empty() {
        if let Op::Pure {
            opcode: Opcode::Mux,
            dst: mux_dst,
            args: mux_args,
            imms: mux_imms,
        } = second
        {
            let mux_slots = unit.args(*mux_args);
            if mux_imms.is_empty() && mux_slots.len() == 2 && mux_slots[0] as usize == *dst {
                let sel = mux_slots[1];
                return Some(SuperOp::Sel {
                    dst: *mux_dst as u32,
                    sel,
                    elems: ArgRange::copy_into(pool, arg_slots),
                });
            }
        }
    }
    // Only opcodes the *binary* evaluator handles may fuse: `array`,
    // `struct`, and `mux` are two-operand pure ops with their own
    // evaluation rules, and a fused `BinDrv` over them would fail at run
    // time on a perfectly valid design.
    if arg_slots.len() != 2 || matches!(opcode, Opcode::Array | Opcode::Struct | Opcode::Mux) {
        return None;
    }
    let (a, b) = (arg_slots[0], arg_slots[1]);
    let kind = if int_typed[i] {
        IntBin::from_opcode(*opcode)
    } else {
        None
    };
    match second {
        // compare+branch: branch on the comparison without materializing
        // the boolean.
        Op::BrCond {
            cond,
            if_false,
            if_true,
        } if *cond == *dst && opcode.is_comparison() => Some(SuperOp::CmpBr {
            kind,
            opcode: *opcode,
            a,
            b,
            if_false: *if_false as u32,
            if_true: *if_true as u32,
        }),
        // compute+drive: evaluate and drive in one record. The compute
        // still runs unconditionally (matching the generic stream, where
        // the pure op precedes the drive's condition check).
        Op::Drv {
            sig,
            value,
            delay,
            cond,
        } if *value == *dst => Some(SuperOp::BinDrv {
            kind,
            opcode: *opcode,
            dst: *dst as u32,
            a,
            b,
            sig: *sig as u32,
            delay: Delay::Reg(*delay as u32),
            cond: cond.map(|c| c as u32),
        }),
        _ => None,
    }
}

/// Lower one generic op (no fusion) into its superop form.
fn lower_op(
    unit: &CompiledUnit,
    int_typed: &[bool],
    op: &Op,
    index: usize,
    pool: &mut Vec<u32>,
) -> SuperOp {
    match op {
        Op::Pure {
            opcode,
            dst,
            args,
            imms,
        } => {
            let slots = unit.args(*args);
            let dst = *dst as u32;
            match opcode {
                Opcode::Alias | Opcode::Not | Opcode::Neg if slots.len() == 1 => SuperOp::Un {
                    opcode: *opcode,
                    dst,
                    a: slots[0],
                },
                Opcode::Zext | Opcode::Sext | Opcode::Trunc
                    if slots.len() == 1 && !imms.is_empty() =>
                {
                    SuperOp::Cast {
                        opcode: *opcode,
                        dst,
                        a: slots[0],
                        width: imms[0] as u32,
                    }
                }
                Opcode::Mux if slots.len() == 2 && imms.is_empty() => SuperOp::Mux {
                    dst,
                    choices: slots[0],
                    sel: slots[1],
                },
                Opcode::ExtField if slots.len() == 1 && !imms.is_empty() => SuperOp::ExtF {
                    dst,
                    a: slots[0],
                    index: imms[0] as u32,
                },
                Opcode::ExtSlice if slots.len() == 1 && imms.len() >= 2 => SuperOp::ExtS {
                    dst,
                    a: slots[0],
                    offset: imms[0] as u32,
                    length: imms[1] as u32,
                },
                Opcode::InsField if slots.len() == 2 && !imms.is_empty() => SuperOp::InsF {
                    dst,
                    a: slots[0],
                    b: slots[1],
                    index: imms[0] as u32,
                },
                Opcode::InsSlice if slots.len() == 2 && imms.len() >= 2 => SuperOp::InsS {
                    dst,
                    a: slots[0],
                    b: slots[1],
                    offset: imms[0] as u32,
                },
                op2 if slots.len() == 2
                    && imms.is_empty()
                    && !matches!(op2, Opcode::Array | Opcode::Struct | Opcode::Mux) =>
                {
                    SuperOp::Bin {
                        kind: if int_typed[index] {
                            IntBin::from_opcode(*opcode)
                        } else {
                            None
                        },
                        opcode: *opcode,
                        dst,
                        a: slots[0],
                        b: slots[1],
                    }
                }
                _ => SuperOp::Pure {
                    opcode: *opcode,
                    dst,
                    args: ArgRange::copy_into(pool, slots),
                    imms: imms.clone(),
                },
            }
        }
        Op::Prb { dst, sig } => SuperOp::Prb {
            dst: *dst as u32,
            sig: *sig as u32,
        },
        Op::Drv {
            sig,
            value,
            delay,
            cond,
        } => SuperOp::Drv {
            sig: *sig as u32,
            value: *value as u32,
            delay: Delay::Reg(*delay as u32),
            cond: cond.map(|c| c as u32),
        },
        Op::Del {
            target,
            source,
            delay,
        } => SuperOp::Del {
            target: *target as u32,
            source: *source as u32,
            delay: Delay::Reg(*delay as u32),
        },
        Op::Reg { sig, triggers } => SuperOp::Reg {
            sig: *sig as u32,
            triggers: triggers.clone(),
        },
        Op::Var { mem, init } => SuperOp::Var {
            mem: *mem as u32,
            init: *init as u32,
        },
        Op::Ld { dst, mem } => SuperOp::Ld {
            dst: *dst as u32,
            mem: *mem as u32,
        },
        Op::St { mem, value } => SuperOp::St {
            mem: *mem as u32,
            value: *value as u32,
        },
        Op::Call {
            callee,
            intrinsic,
            dst,
            args,
        } => SuperOp::Call {
            callee: *callee,
            intrinsic: *intrinsic,
            dst: dst.map(|d| d as u32),
            args: ArgRange::copy_into(pool, unit.args(*args)),
        },
        Op::Wait {
            resume,
            time,
            observed,
        } => SuperOp::Wait {
            resume: *resume as u32,
            time: time.map(|t| Delay::Reg(t as u32)),
            observed: ArgRange::copy_into(pool, unit.args(*observed)),
        },
        Op::Halt => SuperOp::Halt,
        Op::Br { target } => SuperOp::Br {
            target: *target as u32,
        },
        Op::BrCond {
            cond,
            if_false,
            if_true,
        } => SuperOp::BrCond {
            cond: *cond as u32,
            if_false: *if_false as u32,
            if_true: *if_true as u32,
        },
        Op::Ret { .. } => SuperOp::Ret,
    }
}

/// The per-instance specialized execution form: the unit's superops with
/// this instance's signal bindings and constants baked in. The matching
/// initial register file lives on the unit's [`LoweredUnit::init_regs`]
/// (it is instance-independent).
#[derive(Clone, Debug)]
pub struct SpecializedCode {
    /// The superops; signal operands hold resolved [`SignalId`]s.
    pub ops: Vec<SuperOp>,
    /// Half-open `ops` range of each block.
    pub block_ranges: Vec<(u32, u32)>,
    /// Operand pool; `Wait` observed entries hold resolved [`SignalId`]s,
    /// everything else register slots.
    pub pool: Vec<u32>,
}

impl SpecializedCode {
    /// The operations of block `index`, in execution order.
    #[inline]
    pub fn block_ops(&self, index: usize) -> &[SuperOp] {
        let (start, end) = self.block_ranges[index];
        &self.ops[start as usize..end as usize]
    }

    /// The pool slots referenced by `range`.
    #[inline]
    pub fn args(&self, range: ArgRange) -> &[u32] {
        range.slice(&self.pool)
    }
}

/// Specialize `lowered` for one instance: a single emit pass that skips
/// the folded ops, bakes the signal bindings from `signal_table` into the
/// stream, and inlines constant delays (the constant analysis itself is
/// unit-level and already done by [`lower_unit`]). See the module docs
/// for the invariants this preserves.
pub fn specialize(lowered: &LoweredUnit, signal_table: &[SignalId]) -> SpecializedCode {
    let consts = &lowered.consts;
    let resolve = |slot: u32| signal_table[slot as usize].0 as u32;
    let bake_delay = |delay: &Delay| match delay {
        Delay::Reg(slot) => match &consts[*slot as usize] {
            Some(ConstValue::Time(t)) => Delay::Const(*t),
            // Non-time constants keep the register path so the runtime
            // error ("expected a time value") replays identically.
            _ => Delay::Reg(*slot),
        },
        Delay::Const(t) => Delay::Const(*t),
    };
    let mut out = SpecializedCode {
        ops: Vec::with_capacity(lowered.ops.len()),
        block_ranges: Vec::with_capacity(lowered.block_ranges.len()),
        pool: Vec::new(),
    };
    for &(start, end) in &lowered.block_ranges {
        let block_start = out.ops.len() as u32;
        for i in start as usize..end as usize {
            if lowered.dropped[i] {
                continue;
            }
            let op = match &lowered.ops[i] {
                SuperOp::Prb { dst, sig } => SuperOp::Prb {
                    dst: *dst,
                    sig: resolve(*sig),
                },
                SuperOp::Drv {
                    sig,
                    value,
                    delay,
                    cond,
                } => SuperOp::Drv {
                    sig: resolve(*sig),
                    value: *value,
                    delay: bake_delay(delay),
                    cond: *cond,
                },
                SuperOp::BinDrv {
                    kind,
                    opcode,
                    dst,
                    a,
                    b,
                    sig,
                    delay,
                    cond,
                } => SuperOp::BinDrv {
                    kind: *kind,
                    opcode: *opcode,
                    dst: *dst,
                    a: *a,
                    b: *b,
                    sig: resolve(*sig),
                    delay: bake_delay(delay),
                    cond: *cond,
                },
                SuperOp::Del {
                    target,
                    source,
                    delay,
                } => SuperOp::Del {
                    target: resolve(*target),
                    source: resolve(*source),
                    delay: bake_delay(delay),
                },
                SuperOp::Reg { sig, triggers } => SuperOp::Reg {
                    sig: resolve(*sig),
                    triggers: triggers.clone(),
                },
                SuperOp::Wait {
                    resume,
                    time,
                    observed,
                } => {
                    let resolved: Vec<u32> = lowered
                        .args(*observed)
                        .iter()
                        .map(|&slot| resolve(slot))
                        .collect();
                    SuperOp::Wait {
                        resume: *resume,
                        time: time.as_ref().map(bake_delay),
                        observed: ArgRange::copy_into(&mut out.pool, &resolved),
                    }
                }
                SuperOp::Pure {
                    opcode,
                    dst,
                    args,
                    imms,
                } => SuperOp::Pure {
                    opcode: *opcode,
                    dst: *dst,
                    args: ArgRange::copy_into(&mut out.pool, lowered.args(*args)),
                    imms: imms.clone(),
                },
                SuperOp::Sel { dst, sel, elems } => SuperOp::Sel {
                    dst: *dst,
                    sel: *sel,
                    elems: ArgRange::copy_into(&mut out.pool, lowered.args(*elems)),
                },
                SuperOp::Call {
                    callee,
                    intrinsic,
                    dst,
                    args,
                } => SuperOp::Call {
                    callee: *callee,
                    intrinsic: *intrinsic,
                    dst: *dst,
                    args: ArgRange::copy_into(&mut out.pool, lowered.args(*args)),
                },
                other => other.clone(),
            };
            out.ops.push(op);
        }
        out.block_ranges.push((block_start, out.ops.len() as u32));
    }
    out
}

/// The outcome of a fold attempt on one op.
enum Fold {
    /// Nothing foldable.
    None,
    /// The op's result is the given constant; the op disappears.
    Value(u32, ConstValue),
    /// The op disappears without producing a value (false-cond drive).
    Drop,
    /// The op simplifies to another op (const branch, const drive cond).
    Replace(SuperOp),
    /// The op both produces a constant and simplifies (const compute of a
    /// fused compute+drive).
    ValueAndReplace(u32, ConstValue, SuperOp),
}

/// Attempt to fold one op whose inputs are all constants. All checks are
/// by reference — this runs for every op on every fixpoint pass, so it
/// must not clone values just to discover there is nothing to fold.
fn fold_op(op: &SuperOp, pool: &[u32], consts: &[Option<ConstValue>]) -> Fold {
    let konst = |slot: u32| consts[slot as usize].as_ref();
    match op {
        SuperOp::Bin {
            kind,
            opcode,
            dst,
            a,
            b,
        } => {
            if let (Some(a), Some(b)) = (konst(*a), konst(*b)) {
                if let Some(v) = eval_bin(*kind, *opcode, a, b) {
                    return Fold::Value(*dst, v);
                }
            }
            Fold::None
        }
        SuperOp::Un { opcode, dst, a } => {
            if let Some(a) = konst(*a) {
                if let Some(v) = eval_unary(*opcode, a) {
                    return Fold::Value(*dst, v);
                }
            }
            Fold::None
        }
        SuperOp::Cast {
            opcode,
            dst,
            a,
            width,
        } => {
            if let Some(a) = konst(*a) {
                if let Some(v) = eval_cast(*opcode, a, *width as usize) {
                    return Fold::Value(*dst, v);
                }
            }
            Fold::None
        }
        SuperOp::ExtF { dst, a, index } => {
            if let Some(a) = konst(*a) {
                if let Some(v) = eval_ext_field(a, *index as usize) {
                    return Fold::Value(*dst, v);
                }
            }
            Fold::None
        }
        SuperOp::ExtS {
            dst,
            a,
            offset,
            length,
        } => {
            if let Some(a) = konst(*a) {
                if let Some(v) = eval_ext_slice(a, *offset as usize, *length as usize) {
                    return Fold::Value(*dst, v);
                }
            }
            Fold::None
        }
        SuperOp::InsF { dst, a, b, index } => {
            if let (Some(a), Some(b)) = (konst(*a), konst(*b)) {
                if let Some(v) = eval_ins_field(a, b, *index as usize) {
                    return Fold::Value(*dst, v);
                }
            }
            Fold::None
        }
        SuperOp::InsS { dst, a, b, offset } => {
            if let (Some(a), Some(b)) = (konst(*a), konst(*b)) {
                if let Some(v) = eval_ins_slice(a, b, *offset as usize, 0) {
                    return Fold::Value(*dst, v);
                }
            }
            Fold::None
        }
        SuperOp::Mux { dst, choices, sel } => {
            if let (Some(c), Some(s)) = (konst(*choices), konst(*sel)) {
                if let Some(v) = eval_mux(c, s) {
                    return Fold::Value(*dst, v);
                }
            }
            Fold::None
        }
        SuperOp::Sel { dst, sel, elems } => {
            let slots = elems.slice(pool);
            if let Some(idx) = konst(*sel).and_then(|s| s.to_u64()) {
                if !slots.is_empty() && slots.iter().all(|&e| konst(e).is_some()) {
                    let pick = slots[(idx as usize).min(slots.len() - 1)];
                    return Fold::Value(*dst, konst(pick).unwrap().clone());
                }
            }
            Fold::None
        }
        SuperOp::Pure {
            opcode,
            dst,
            args,
            imms,
        } => {
            let slots = args.slice(pool);
            if !slots.iter().all(|&a| konst(a).is_some()) {
                return Fold::None;
            }
            let arg_values: Vec<ConstValue> =
                slots.iter().map(|&a| konst(a).unwrap().clone()).collect();
            if let Some(v) = eval_pure(*opcode, &arg_values, imms) {
                return Fold::Value(*dst, v);
            }
            Fold::None
        }
        SuperOp::CmpBr {
            kind,
            opcode,
            a,
            b,
            if_false,
            if_true,
        } => {
            if let (Some(a), Some(b)) = (konst(*a), konst(*b)) {
                if let Some(v) = eval_bin(*kind, *opcode, a, b) {
                    let target = if v.is_truthy() { *if_true } else { *if_false };
                    return Fold::Replace(SuperOp::Br { target });
                }
            }
            Fold::None
        }
        SuperOp::BrCond {
            cond,
            if_false,
            if_true,
        } => {
            if let Some(c) = konst(*cond) {
                let target = if c.is_truthy() { *if_true } else { *if_false };
                return Fold::Replace(SuperOp::Br { target });
            }
            Fold::None
        }
        SuperOp::BinDrv {
            kind,
            opcode,
            dst,
            a,
            b,
            sig,
            delay,
            cond,
        } => {
            if let (Some(av), Some(bv)) = (konst(*a), konst(*b)) {
                if let Some(v) = eval_bin(*kind, *opcode, av, bv) {
                    return Fold::ValueAndReplace(
                        *dst,
                        v,
                        SuperOp::Drv {
                            sig: *sig,
                            value: *dst,
                            delay: delay.clone(),
                            cond: *cond,
                        },
                    );
                }
            }
            Fold::None
        }
        SuperOp::Drv {
            sig,
            value,
            delay,
            cond: Some(cond),
        } => {
            // A constant condition either disappears or the drive becomes
            // unconditional; the drive itself stays (signals change).
            match konst(*cond) {
                Some(c) if c.is_truthy() => Fold::Replace(SuperOp::Drv {
                    sig: *sig,
                    value: *value,
                    delay: delay.clone(),
                    cond: None,
                }),
                Some(_) => Fold::Drop,
                None => Fold::None,
            }
        }
        _ => Fold::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_design_with, BlazeOptions};
    use llhd::assembly::parse_module;
    use llhd_sim::elaborate;

    /// Every pre-decoded integer fast path computes exactly what the
    /// shared evaluator computes, across widths that cross the inline
    /// limb boundary.
    #[test]
    fn int_fast_path_matches_evaluator() {
        let opcodes = [
            Opcode::Add,
            Opcode::Sub,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Umul,
            Opcode::Smul,
            Opcode::Udiv,
            Opcode::Urem,
            Opcode::Umod,
            Opcode::Sdiv,
            Opcode::Srem,
            Opcode::Smod,
            Opcode::Shl,
            Opcode::Shr,
            Opcode::Eq,
            Opcode::Neq,
            Opcode::Ult,
            Opcode::Ugt,
            Opcode::Ule,
            Opcode::Uge,
            Opcode::Slt,
            Opcode::Sgt,
            Opcode::Sle,
            Opcode::Sge,
        ];
        let samples: [(u64, u64); 6] = [
            (0, 0),
            (1, 2),
            (200, 100),
            (u64::MAX, 1),
            (7, 0),
            (0x8000_0000_0000_0000, 3),
        ];
        for &opcode in &opcodes {
            let kind = IntBin::from_opcode(opcode).expect("every opcode maps");
            for &width in &[1usize, 8, 64, 80] {
                for &(a, b) in &samples {
                    let av = ConstValue::Int(ApInt::from_u64(width, a));
                    let bv = ConstValue::Int(ApInt::from_u64(width, b));
                    let fast = match (&av, &bv) {
                        (ConstValue::Int(x), ConstValue::Int(y)) => kind.eval(x, y),
                        _ => unreachable!(),
                    };
                    let reference = eval_binary(opcode, &av, &bv).unwrap();
                    assert_eq!(
                        fast, reference,
                        "{:?} i{} {} {}",
                        opcode, width, a, b
                    );
                }
            }
        }
    }

    fn compiled_for(src: &str, top: &str, options: BlazeOptions) -> crate::CompiledDesign {
        let module = parse_module(src).unwrap();
        let design = elaborate(&module, top).unwrap();
        compile_design_with(&module, design, options).unwrap()
    }

    const FUSIBLE: &str = r#"
        entity @alu (i8$ %a, i8$ %b, i1$ %sel) -> (i8$ %y) {
            %ap = prb i8$ %a
            %bp = prb i8$ %b
            %sp = prb i1$ %sel
            %sum = add i8 %ap, %bp
            %xorv = xor i8 %ap, %bp
            %ys = array [%sum, %xorv]
            %y0 = mux [2 x i8] %ys, %sp
            %delay = const time 1ns
            drv i8$ %y, %y0 after %delay
        }
        proc @count (i8$ %y) -> (i8$ %a) {
        entry:
            %zero = const i8 0
            %one = const i8 1
            %two = const i8 2
            %three = add i8 %one, %two
            %step = const time 2ns
            %i = var i8 %zero
            br %loop
        loop:
            %cur = ld i8* %i
            %next = add i8 %cur, %three
            st i8* %i, %next
            drv i8$ %a, %next after %step
            %cap = const i8 50
            %more = ult i8 %next, %cap
            br %more, %end, %pause
        pause:
            wait %loop for %step
        end:
            halt
        }
        entity @top () -> () {
            %z8 = const i8 0
            %z1 = const i1 0
            %a = sig i8 %z8
            %b = sig i8 %z8
            %sel = sig i1 %z1
            %y = sig i8 %z8
            inst @alu (%a, %b, %sel) -> (%y)
            inst @count (%y) -> (%a)
        }
    "#;

    /// Fusion produces the promised superinstructions: the entity's
    /// array+mux collapses into a `Sel`, and the process's compare+branch
    /// into a `CmpBr`. With the knob off, neither appears.
    #[test]
    fn fusion_forms_sel_and_cmp_br() {
        let fused = compiled_for(FUSIBLE, "top", BlazeOptions::default());
        let count_ops = |design: &crate::CompiledDesign, pred: fn(&SuperOp) -> bool| {
            design
                .instances
                .iter()
                .filter_map(|i| i.code.as_ref())
                .flat_map(|c| c.ops.iter())
                .filter(|op| pred(op))
                .count()
        };
        assert!(count_ops(&fused, |op| matches!(op, SuperOp::Sel { .. })) > 0);
        assert!(count_ops(&fused, |op| matches!(op, SuperOp::CmpBr { .. })) > 0);
        let unfused = compiled_for(
            FUSIBLE,
            "top",
            BlazeOptions {
                fuse: false,
                specialize: true,
                islands: true,
            },
        );
        assert_eq!(count_ops(&unfused, |op| matches!(op, SuperOp::Sel { .. })), 0);
        assert_eq!(
            count_ops(&unfused, |op| matches!(op, SuperOp::CmpBr { .. })),
            0
        );
    }

    /// Specialization folds constant chains out of the stream (`add
    /// %one, %two` never executes) and bakes constant delays inline.
    #[test]
    fn specialization_folds_constants_and_bakes_delays() {
        let design = compiled_for(FUSIBLE, "top", BlazeOptions::default());
        let count = design
            .instances
            .iter()
            .find(|i| i.name.contains("count"))
            .unwrap();
        let code = count.code.as_ref().expect("looping process specializes");
        // The `%three = add %one, %two` fold removed one of the two adds;
        // only the loop's `%next = add %cur, %three` survives.
        let adds = code
            .ops
            .iter()
            .filter(|op| matches!(op, SuperOp::Bin { opcode: Opcode::Add, .. }))
            .count();
        assert_eq!(adds, 1, "the constant add must fold out of the stream");
        // Its result landed in the unit's initial register file: some
        // register holds the folded value 3.
        let lowered = design.units[&count.unit].lowered.as_ref().unwrap();
        assert!(lowered
            .init_regs
            .iter()
            .any(|v| v == &ConstValue::int(8, 3)));
        // Every drive and wait in the stream carries an inline constant
        // delay (all delays in this design are `const time`).
        for op in &code.ops {
            match op {
                SuperOp::Drv { delay, .. } | SuperOp::BinDrv { delay, .. } => {
                    assert!(matches!(delay, Delay::Const(_)), "unbaked drive delay");
                }
                SuperOp::Wait { time: Some(t), .. } => {
                    assert!(matches!(t, Delay::Const(_)), "unbaked wait timeout");
                }
                _ => {}
            }
        }
    }

    /// A `mux` result driven directly (with the array kept alive by a
    /// second reader, so `Sel` fusion cannot fire first) must NOT fuse
    /// into a `BinDrv` — the binary evaluator cannot evaluate `mux`, and
    /// a fused record would fail at run time on a valid design.
    /// Regression test for exactly that bug.
    #[test]
    fn mux_feeding_a_drive_does_not_fuse() {
        let design = compiled_for(
            r#"
            entity @pick (i8$ %a, i8$ %b, i1$ %sel) -> (i8$ %y, i8$ %z) {
                %ap = prb i8$ %a
                %bp = prb i8$ %b
                %sp = prb i1$ %sel
                %ys = array [%ap, %bp]
                %z0 = extf i8 %ys, 0
                %delay = const time 1ns
                %y0 = mux [2 x i8] %ys, %sp
                drv i8$ %y, %y0 after %delay
                drv i8$ %z, %z0 after %delay
            }
            entity @top () -> () {
                %z8 = const i8 0
                %z1 = const i1 0
                %a = sig i8 %z8
                %b = sig i8 %z8
                %sel = sig i1 %z1
                %y = sig i8 %z8
                %z = sig i8 %z8
                inst @pick (%a, %b, %sel) -> (%y, %z)
            }
            "#,
            "top",
            BlazeOptions::default(),
        );
        for instance in &design.instances {
            if let Some(code) = &instance.code {
                assert!(
                    code.ops
                        .iter()
                        .all(|op| !matches!(op, SuperOp::BinDrv { opcode: Opcode::Mux, .. })),
                    "mux must never fuse into a BinDrv"
                );
            }
        }
        // And the design actually runs under the specialized dispatch.
        crate::BlazeSimulator::new(design, llhd_sim::SimConfig::until_nanos(10))
            .run()
            .unwrap();
    }

    /// The re-execution heuristic: straight-line processes stay on the
    /// generic dispatch, looping processes and entities specialize.
    #[test]
    fn straight_line_processes_are_not_specialized() {
        let design = compiled_for(
            r#"
            proc @once () -> (i1$ %out) {
            entry:
                %one = const i1 1
                %t = const time 1ns
                drv i1$ %out, %one after %t
                halt
            }
            entity @top () -> () {
                %zero = const i1 0
                %out = sig i1 %zero
                inst @once () -> (%out)
            }
            "#,
            "top",
            BlazeOptions::default(),
        );
        let once = design
            .instances
            .iter()
            .find(|i| i.name.contains("once"))
            .unwrap();
        assert!(once.code.is_none(), "straight-line process must stay generic");
    }
}
