//! Smoke tests for the paper-artifact binaries.
//!
//! The `table2`/`table3`/`table4`/`figure5` binaries are thin `main`
//! wrappers over `llhd_bench::report`; these tests run the same rendering
//! paths (with a reduced cycle count where simulation is involved) so the
//! artifact generation cannot silently rot.

use llhd_bench::report::{render_figure5, render_table2, render_table3, render_table4};
use llhd_bench::{measure_design, table3_rows, table4_rows};
use llhd_designs::all_designs;

#[test]
fn table2_renders_and_traces_match() {
    // One small and one mid-sized design with a handful of cycles keeps the
    // interpreter run fast while still exercising all three engines.
    let designs = all_designs();
    let rows: Vec<_> = designs[..2].iter().map(|d| measure_design(d, 10)).collect();
    let out = render_table2(&rows);
    assert!(out.contains("Table 2: simulation performance"));
    for row in &rows {
        assert!(out.contains(&row.design), "missing row for {}", row.design);
        assert!(row.traces_match, "traces differ for {}", row.design);
    }
    assert!(out.contains("Traces match between all engines"));
    assert!(!out.contains("DIFFER"));
}

#[test]
fn table3_renders_all_irs_with_llhd_first() {
    let rows = table3_rows();
    let out = render_table3(&rows);
    let mut lines = out.lines();
    assert_eq!(lines.next(), Some("Table 3: comparison against other hardware-targeted IRs"));
    let header = lines.next().unwrap();
    assert!(header.starts_with("IR"));
    let first = lines.next().unwrap();
    assert!(first.starts_with("LLHD"), "LLHD must be the first row: {first}");
    // Header + one line per IR.
    assert_eq!(out.lines().count(), 2 + rows.len());
}

#[test]
fn table4_renders_all_designs_with_denser_bitcode() {
    let rows = table4_rows();
    let out = render_table4(&rows);
    assert!(out.contains("Table 4: size efficiency"));
    for row in &rows {
        assert!(out.contains(&row.design), "missing row for {}", row.design);
    }
    // The closing summary asserts the paper's qualitative claim.
    assert!(out.contains("denser than the human-readable text"));
}

#[test]
fn figure5_renders_all_stages() {
    let out = render_figure5();
    assert!(out.contains("=== SystemVerilog input (Figure 3) ==="));
    assert!(out.contains("=== Behavioural LLHD"));
    assert!(out.contains("=== Structural LLHD"));
    assert!(out.contains("=== Lowering report ==="));
    // The behavioural column must show processes, the structural column the
    // registers produced by desequentialization.
    assert!(out.contains("proc @"));
    assert!(out.contains("reg "));
}
