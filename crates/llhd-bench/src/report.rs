//! Text rendering of the paper's tables and figures.
//!
//! The `table2`/`table3`/`table4`/`figure5` binaries are thin wrappers
//! around these functions so the artifact-generation logic itself is
//! exercised by the test suite and cannot silently rot.

use crate::{fmt_duration, Table2Row, Table4Row};
use llhd::capabilities::IrCapabilities;
use std::fmt::Write;

/// Render the Table 2 reproduction (simulation performance).
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    writeln!(out, "Table 2: simulation performance (this reproduction)").unwrap();
    writeln!(
        out,
        "{:<16} {:>5} {:>9} {:>10} {:>10} {:>10} {:>8} {:>7}",
        "Design", "LoC", "Cycles", "Int.", "Blaze", "Baseline", "Int/Blz", "Trace"
    )
    .unwrap();
    for row in rows {
        writeln!(
            out,
            "{:<16} {:>5} {:>9} {} {} {} {:>7.1}x {:>7}",
            row.design,
            row.loc,
            row.cycles,
            fmt_duration(row.interpreter),
            fmt_duration(row.blaze),
            fmt_duration(row.baseline),
            row.interpreter_slowdown(),
            if row.traces_match { "match" } else { "DIFFER" },
        )
        .unwrap();
    }
    let all_match = rows.iter().all(|r| r.traces_match);
    writeln!(out).unwrap();
    writeln!(
        out,
        "Traces {} between all engines; interpreter is {:.1}x slower than the compiled simulator on average.",
        if all_match { "match" } else { "DO NOT match" },
        rows.iter().map(|r| r.interpreter_slowdown()).sum::<f64>() / rows.len().max(1) as f64
    )
    .unwrap();
    out
}

fn yes(value: bool) -> &'static str {
    if value {
        "yes"
    } else {
        "-"
    }
}

/// Render the Table 3 reproduction (IR capability comparison).
pub fn render_table3(rows: &[IrCapabilities]) -> String {
    let mut out = String::new();
    writeln!(out, "Table 3: comparison against other hardware-targeted IRs").unwrap();
    writeln!(
        out,
        "{:<10} {:>6} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7}",
        "IR", "Levels", "Turing", "Verif", "9-val", "4-val", "Behav", "Struct", "Netlist"
    )
    .unwrap();
    for row in rows {
        writeln!(
            out,
            "{:<10} {:>6} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7}",
            row.name,
            row.levels,
            yes(row.turing_complete),
            yes(row.verification),
            yes(row.nine_valued_logic),
            yes(row.four_valued_logic),
            yes(row.behavioural),
            yes(row.structural),
            yes(row.netlist),
        )
        .unwrap();
    }
    out
}

fn kb(bytes: usize) -> f64 {
    bytes as f64 / 1024.0
}

/// Render the Table 4 reproduction (size efficiency).
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    writeln!(out, "Table 4: size efficiency [kB]").unwrap();
    writeln!(
        out,
        "{:<16} {:>8} {:>9} {:>9} {:>9} {:>12}",
        "Design", "SV", "Text", "Bitcode", "In-Mem.", "Text/Bitcode"
    )
    .unwrap();
    for row in rows {
        writeln!(
            out,
            "{:<16} {:>8.1} {:>9.1} {:>9.1} {:>9.1} {:>11.2}x",
            row.design,
            kb(row.sv_bytes),
            kb(row.text_bytes),
            kb(row.bitcode_bytes),
            kb(row.in_memory_bytes),
            row.text_bytes as f64 / row.bitcode_bytes.max(1) as f64,
        )
        .unwrap();
    }
    let text: usize = rows.iter().map(|r| r.text_bytes).sum();
    let bitcode: usize = rows.iter().map(|r| r.bitcode_bytes).sum();
    writeln!(out).unwrap();
    writeln!(
        out,
        "Bitcode is {:.1}x denser than the human-readable text overall.",
        text as f64 / bitcode.max(1) as f64
    )
    .unwrap();
    out
}

/// Render the Figure 5 reproduction (the accumulator lowering end-to-end).
pub fn render_figure5() -> String {
    let (behavioural, structural, report) = crate::figure5_stages();
    let mut out = String::new();
    writeln!(out, "=== SystemVerilog input (Figure 3) ===").unwrap();
    writeln!(out, "{}", llhd_designs::accumulator_source()).unwrap();
    writeln!(
        out,
        "=== Behavioural LLHD (Moore output, left column of Figure 5) ==="
    )
    .unwrap();
    writeln!(out, "{}", behavioural).unwrap();
    writeln!(out, "=== Structural LLHD (right column of Figure 5) ===").unwrap();
    writeln!(out, "{}", structural).unwrap();
    writeln!(out, "=== Lowering report ===").unwrap();
    writeln!(
        out,
        "process lowering: {}, desequentialization: {}, inlined calls: {}, rejected (testbench) processes: {:?}",
        report.lowered_processes,
        report.desequentialized_processes,
        report.inlined_calls,
        report.rejected
    )
    .unwrap();
    out
}
