//! # llhd-bench — regenerating the paper's tables and figures
//!
//! This crate contains the measurement harness behind the `table2`,
//! `table3`, `table4`, and `figure5` binaries and the Criterion benchmarks.
//! See `EXPERIMENTS.md` at the repository root for the mapping between the
//! paper's evaluation artifacts and these entry points.

pub mod harness;
pub mod report;
pub mod suites;

use llhd::assembly::write_module;
use llhd::bitcode::encode_module;
use llhd::capabilities::{llhd_capabilities, other_ir_capabilities, IrCapabilities};
use llhd::ir::size::module_memory;
use llhd_designs::{all_designs, Design};
use llhd_opt::pipeline::{lower_to_structural, optimize_module, LoweringOptions};
use llhd_sim::api::{EngineKind, SimSession};
use llhd_sim::SimConfig;
use std::time::{Duration, Instant};

/// One row of the Table 2 reproduction.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Design name.
    pub design: String,
    /// Lines of SystemVerilog code of the design under test.
    pub loc: usize,
    /// Simulated clock cycles.
    pub cycles: u64,
    /// Wall-clock time of the reference interpreter (LLHD-Sim).
    pub interpreter: Duration,
    /// Wall-clock time of the compiled simulator (LLHD-Blaze).
    pub blaze: Duration,
    /// Wall-clock time of the baseline: the compiled simulator running on
    /// the cleaned-up (optimized) module, standing in for the commercial
    /// simulator of the paper.
    pub baseline: Duration,
    /// Whether the traces of all three runs are equivalent.
    pub traces_match: bool,
}

impl Table2Row {
    /// Interpreter slowdown relative to the compiled simulator.
    pub fn interpreter_slowdown(&self) -> f64 {
        self.interpreter.as_secs_f64() / self.blaze.as_secs_f64().max(1e-9)
    }

    /// Speedup of the compiled simulator over the baseline (values above 1.0
    /// mean Blaze is faster).
    pub fn blaze_speedup(&self) -> f64 {
        self.baseline.as_secs_f64() / self.blaze.as_secs_f64().max(1e-9)
    }
}

/// Run the Table 2 measurement for one design with the given cycle count.
///
/// # Panics
///
/// Panics if a design fails to build or simulate; that indicates a bug in
/// the design suite rather than a measurement outcome.
pub fn measure_design(design: &Design, cycles: u64) -> Table2Row {
    llhd_blaze::register();
    let module = design.build().expect("design must build");
    let config = SimConfig::until_nanos(design.sim_time_ns(cycles))
        .with_trace_filter(&[design.probe_signal]);
    let run = |module: &llhd::ir::Module, engine: EngineKind| {
        SimSession::builder(module, design.top)
            .engine(engine)
            .config(config.clone())
            .build()
            .expect("session builds")
            .run()
            .expect("simulation runs")
    };

    // One untimed warm-up run per configuration before its sample: the
    // first simulation of a process pays one-off costs (lazy allocator
    // growth, page faults on fresh memory, engine registration) that
    // would otherwise land entirely on whichever engine happens to be
    // measured first and skew the smallest designs by double digits.
    run(&module, EngineKind::Interpret);
    let start = Instant::now();
    let reference = run(&module, EngineKind::Interpret);
    let interpreter = start.elapsed();

    run(&module, EngineKind::Compile);
    let start = Instant::now();
    let blaze_result = run(&module, EngineKind::Compile);
    let blaze = start.elapsed();

    // Baseline: compiled simulation of the cleaned-up module (the stand-in
    // for a mature commercial simulator; see DESIGN.md).
    let mut optimized = module.clone();
    optimize_module(&mut optimized);
    run(&optimized, EngineKind::Compile);
    let start = Instant::now();
    let baseline_result = run(&optimized, EngineKind::Compile);
    let baseline = start.elapsed();

    let traces_match = reference.trace.equivalent(&blaze_result.trace)
        && reference.trace.equivalent(&baseline_result.trace);

    Table2Row {
        design: design.name.to_string(),
        loc: design.sv_lines(),
        cycles,
        interpreter,
        blaze,
        baseline,
        traces_match,
    }
}

/// Produce all rows of the Table 2 reproduction.
pub fn table2_rows(cycles: u64) -> Vec<Table2Row> {
    all_designs()
        .iter()
        .map(|d| measure_design(d, cycles))
        .collect()
}

/// One row of the Table 4 reproduction.
#[derive(Clone, Debug)]
pub struct Table4Row {
    /// Design name.
    pub design: String,
    /// Size of the SystemVerilog source in bytes.
    pub sv_bytes: usize,
    /// Size of the LLHD assembly text in bytes.
    pub text_bytes: usize,
    /// Size of the LLHD bitcode in bytes.
    pub bitcode_bytes: usize,
    /// Estimated in-memory size of the IR in bytes.
    pub in_memory_bytes: usize,
}

/// Produce all rows of the Table 4 reproduction.
pub fn table4_rows() -> Vec<Table4Row> {
    all_designs()
        .iter()
        .map(|design| {
            let module = design.build().expect("design must build");
            Table4Row {
                design: design.name.to_string(),
                sv_bytes: design.sv_bytes(),
                text_bytes: write_module(&module).len(),
                bitcode_bytes: encode_module(&module).len(),
                in_memory_bytes: module_memory(&module).total(),
            }
        })
        .collect()
}

/// The capability matrix of Table 3: LLHD first, then the other IRs.
pub fn table3_rows() -> Vec<IrCapabilities> {
    let mut rows = vec![llhd_capabilities()];
    rows.extend(other_ir_capabilities());
    rows
}

/// The stages of the Figure 5 lowering of the accumulator: behavioural
/// input, and the structural output, as assembly text, plus the lowering
/// report.
pub fn figure5_stages() -> (String, String, llhd_opt::LoweringReport) {
    let module = llhd_designs::accumulator_example().expect("accumulator example");
    let behavioural = write_module(&module);
    let mut lowered = module;
    let report = lower_to_structural(&mut lowered, &LoweringOptions::default());
    (behavioural, write_module(&lowered), report)
}

/// Format a duration in seconds with millisecond resolution.
pub fn fmt_duration(d: Duration) -> String {
    format!("{:8.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_single_design_smoke() {
        let designs = all_designs();
        let row = measure_design(&designs[2], 20);
        assert!(row.traces_match, "traces must match for {}", row.design);
        assert!(row.cycles == 20);
        assert!(row.interpreter > Duration::ZERO);
    }

    #[test]
    fn table4_rows_are_complete_and_ordered() {
        let rows = table4_rows();
        assert_eq!(rows.len(), 10);
        for row in &rows {
            assert!(row.text_bytes > 0);
            assert!(row.bitcode_bytes > 0);
            assert!(
                row.bitcode_bytes < row.text_bytes,
                "{}: bitcode should be denser than text",
                row.design
            );
            assert!(row.in_memory_bytes > row.text_bytes / 2);
        }
    }

    #[test]
    fn table3_has_llhd_first() {
        let rows = table3_rows();
        assert_eq!(rows[0].name, "LLHD");
        assert_eq!(rows.len(), 8);
    }

    #[test]
    fn figure5_lowering_succeeds() {
        let (behavioural, structural, report) = figure5_stages();
        assert!(behavioural.contains("proc @"));
        assert!(report.lowered_processes + report.desequentialized_processes >= 2);
        assert!(structural.contains("reg "));
    }
}
