//! CI regression gate for the benchmark suites.
//!
//! Re-measures the Table 2 simulation suite and the Table 4 serialization
//! suite (the exact loops behind `cargo bench --bench simulation` /
//! `--bench serialization`, shared via [`llhd_bench::suites`]) and
//! compares the fresh medians against the committed `BENCH_simulation.json`
//! and `BENCH_serialization.json` baselines. The comparison tables are
//! printed either way; the process exits non-zero if any benchmark's
//! median regressed by more than the threshold.
//!
//! Flags:
//! * `--quick` — fewer/shorter samples (what `ci.sh` runs; full-length
//!   sampling is the default). Quick samples are noisy on loaded
//!   machines, so any quick-mode regression is re-measured at full
//!   length before the gate fails — only reproducible regressions count.
//! * `--baseline PATH` — compare the *simulation* suite against a
//!   different baseline file (default: the committed `BENCH_simulation.json`
//!   at the workspace root; the serialization suite always gates against
//!   the committed `BENCH_serialization.json`).
//! * `--threshold PCT` — allowed regression in percent (default 20).

use llhd_bench::harness::{default_json_path, BenchConfig, Harness};
use llhd_bench::suites::{serialization_suite, simulation_suite};
use std::time::Duration;

/// Extract `(name, median_ns)` pairs from a `BENCH_*.json` report, which
/// the in-repo harness emits with one benchmark object per line.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = vec![];
    for line in text.lines() {
        let name = match extract_str(line, "\"name\": \"") {
            Some(n) => n,
            None => continue,
        };
        let median = match extract_num(line, "\"median_ns\": ") {
            Some(m) => m,
            None => continue,
        };
        out.push((name, median));
    }
    out
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    // Names produced by the harness never contain escaped quotes.
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:9.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:9.3} us", ns / 1e3)
    } else {
        format!("{:9.0} ns", ns)
    }
}

/// One gated suite: a name, the shared measurement loop, and the baseline
/// to compare against.
struct Suite {
    name: &'static str,
    run: fn(&mut Harness),
    baseline_path: String,
}

/// Gate one suite: measure, compare, and (in quick mode) re-measure any
/// regression at full length before counting it. Returns the reproducible
/// regressions as `(benchmark, ratio)`.
fn gate_suite(suite: &Suite, quick: bool, threshold_pct: f64) -> Vec<(String, f64)> {
    let baseline_text = match std::fs::read_to_string(&suite.baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "bench_gate: cannot read baseline {}: {} — nothing to gate against",
                suite.baseline_path, e
            );
            std::process::exit(2);
        }
    };
    let baseline = parse_baseline(&baseline_text);
    if baseline.is_empty() {
        eprintln!(
            "bench_gate: baseline {} contains no benchmarks",
            suite.baseline_path
        );
        std::process::exit(2);
    }

    let config = if quick {
        BenchConfig {
            warmup: Duration::from_millis(60),
            samples: 5,
            sample_time: Duration::from_millis(30),
            json_path: None,
        }
    } else {
        BenchConfig {
            json_path: None,
            ..BenchConfig::new(suite.name)
        }
    };
    println!(
        "bench_gate: measuring {} suite ({} mode), baseline {}",
        suite.name,
        if quick { "quick" } else { "full" },
        suite.baseline_path
    );
    let mut h = Harness::new(suite.name, config);
    (suite.run)(&mut h);

    println!();
    println!(
        "{:<34} {:>12} {:>12} {:>8}",
        "benchmark", "baseline", "current", "ratio"
    );
    let mut regressions = vec![];
    let limit = 1.0 + threshold_pct / 100.0;
    for result in h.results() {
        let base = baseline
            .iter()
            .find(|(name, _)| name == &result.name)
            .map(|&(_, median)| median);
        match base {
            Some(base) => {
                let ratio = result.median_ns / base.max(1e-9);
                let marker = if ratio > limit { "  REGRESSED" } else { "" };
                println!(
                    "{:<34} {:>12} {:>12} {:>7.2}x{}",
                    result.name,
                    fmt_ns(base),
                    fmt_ns(result.median_ns),
                    ratio,
                    marker
                );
                if ratio > limit {
                    regressions.push((result.name.clone(), ratio));
                }
            }
            None => {
                println!(
                    "{:<34} {:>12} {:>12}     (new)",
                    result.name,
                    "-",
                    fmt_ns(result.median_ns)
                );
            }
        }
    }
    // Quick-mode samples (5 × 30 ms) are noisy on loaded machines; before
    // failing, re-measure just the offending benchmarks at full length
    // and keep only the regressions that persist.
    if !regressions.is_empty() && quick {
        println!(
            "bench_gate: {} regression(s) in quick mode; re-measuring at full length to filter noise",
            regressions.len()
        );
        let mut retry = Harness::new(
            suite.name,
            BenchConfig {
                json_path: None,
                ..BenchConfig::new(suite.name)
            },
        );
        retry.set_filters(regressions.iter().map(|(name, _)| name.clone()).collect());
        (suite.run)(&mut retry);
        regressions = regressions
            .into_iter()
            .filter_map(|(name, quick_ratio)| {
                let full_ratio = retry
                    .results()
                    .iter()
                    .find(|r| r.name == name)
                    .zip(baseline.iter().find(|(b, _)| b == &name))
                    .map(|(r, &(_, base))| r.median_ns / base.max(1e-9));
                match full_ratio {
                    // Report the reproducible full-length ratio, not the
                    // noisy quick-mode one that triggered the retry.
                    Some(ratio) if ratio > limit => Some((name, ratio)),
                    Some(_) => {
                        println!("  {}: not reproducible at full length — noise", name);
                        None
                    }
                    None => Some((name, quick_ratio)),
                }
            })
            .collect();
    }
    println!();
    regressions
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut baseline_path: Option<String> = None;
    let mut threshold_pct = 20.0f64;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => quick = true,
            "--baseline" => {
                baseline_path = argv.get(i + 1).cloned();
                i += 1;
            }
            "--threshold" => match argv.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(t) => {
                    threshold_pct = t;
                    i += 1;
                }
                None => {
                    eprintln!("bench_gate: --threshold requires a number in percent");
                    std::process::exit(2);
                }
            },
            other => eprintln!("bench_gate: ignoring unknown argument {:?}", other),
        }
        i += 1;
    }
    let suites = [
        Suite {
            name: "simulation",
            run: simulation_suite,
            baseline_path: baseline_path.unwrap_or_else(|| default_json_path("simulation")),
        },
        Suite {
            name: "serialization",
            run: serialization_suite,
            baseline_path: default_json_path("serialization"),
        },
    ];
    let mut regressions = vec![];
    for suite in &suites {
        regressions.extend(gate_suite(suite, quick, threshold_pct));
    }

    if regressions.is_empty() {
        println!(
            "bench_gate: OK — no median regressed more than {:.0}% vs the baselines",
            threshold_pct
        );
    } else {
        println!(
            "bench_gate: FAILED — {} benchmark(s) regressed more than {:.0}%:",
            regressions.len(),
            threshold_pct
        );
        for (name, ratio) in &regressions {
            println!("  {}  ({:.2}x the baseline median)", name, ratio);
        }
        std::process::exit(1);
    }
}
