//! Regenerates Table 2: simulation performance of the ten benchmark
//! designs, comparing the reference interpreter (LLHD-Sim), the compiled
//! simulator (LLHD-Blaze), and the baseline (compiled simulation of the
//! optimized module, standing in for the commercial simulator).
//!
//! Usage: `table2 [cycles]` (default: 100 clock cycles per design;
//! `--paper-cycles` uses the per-design cycle counts of the paper, which can
//! take a very long time with the interpreter).

use llhd_bench::report::render_table2;
use llhd_bench::table2_rows;
use llhd_designs::all_designs;

fn main() {
    let arg = std::env::args().nth(1);
    let rows = if arg.as_deref() == Some("--paper-cycles") {
        all_designs()
            .iter()
            .map(|d| llhd_bench::measure_design(d, d.paper_cycles))
            .collect()
    } else {
        let cycles: u64 = arg.and_then(|s| s.parse().ok()).unwrap_or(100);
        table2_rows(cycles)
    };
    print!("{}", render_table2(&rows));
}
