//! Regenerates Table 2: simulation performance of the ten benchmark
//! designs, comparing the reference interpreter (LLHD-Sim), the compiled
//! simulator (LLHD-Blaze), and the baseline (compiled simulation of the
//! optimized module, standing in for the commercial simulator).
//!
//! Usage: `table2 [cycles]` (default: 100 clock cycles per design;
//! `--paper-cycles` uses the per-design cycle counts of the paper, which can
//! take a very long time with the interpreter).

use llhd_bench::{fmt_duration, table2_rows};
use llhd_designs::all_designs;

fn main() {
    let arg = std::env::args().nth(1);
    let rows = if arg.as_deref() == Some("--paper-cycles") {
        all_designs()
            .iter()
            .map(|d| llhd_bench::measure_design(d, d.paper_cycles))
            .collect()
    } else {
        let cycles: u64 = arg.and_then(|s| s.parse().ok()).unwrap_or(100);
        table2_rows(cycles)
    };

    println!("Table 2: simulation performance (this reproduction)");
    println!(
        "{:<16} {:>5} {:>9} {:>10} {:>10} {:>10} {:>8} {:>7}",
        "Design", "LoC", "Cycles", "Int.", "Blaze", "Baseline", "Int/Blz", "Trace"
    );
    for row in &rows {
        println!(
            "{:<16} {:>5} {:>9} {} {} {} {:>7.1}x {:>7}",
            row.design,
            row.loc,
            row.cycles,
            fmt_duration(row.interpreter),
            fmt_duration(row.blaze),
            fmt_duration(row.baseline),
            row.interpreter_slowdown(),
            if row.traces_match { "match" } else { "DIFFER" },
        );
    }
    let all_match = rows.iter().all(|r| r.traces_match);
    println!();
    println!(
        "Traces {} between all engines; interpreter is {:.1}x slower than the compiled simulator on average.",
        if all_match { "match" } else { "DO NOT match" },
        rows.iter().map(|r| r.interpreter_slowdown()).sum::<f64>() / rows.len() as f64
    );
}
