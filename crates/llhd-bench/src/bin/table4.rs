//! Regenerates Table 4: size efficiency of the representations — the
//! SystemVerilog source, the LLHD assembly text, the binary bitcode, and the
//! in-memory IR.

use llhd_bench::report::render_table4;
use llhd_bench::table4_rows;

fn main() {
    print!("{}", render_table4(&table4_rows()));
}
