//! Regenerates Table 4: size efficiency of the representations — the
//! SystemVerilog source, the LLHD assembly text, the binary bitcode, and the
//! in-memory IR.

use llhd_bench::table4_rows;

fn kb(bytes: usize) -> f64 {
    bytes as f64 / 1024.0
}

fn main() {
    println!("Table 4: size efficiency [kB]");
    println!(
        "{:<16} {:>8} {:>9} {:>9} {:>9} {:>12}",
        "Design", "SV", "Text", "Bitcode", "In-Mem.", "Text/Bitcode"
    );
    let rows = table4_rows();
    for row in &rows {
        println!(
            "{:<16} {:>8.1} {:>9.1} {:>9.1} {:>9.1} {:>11.2}x",
            row.design,
            kb(row.sv_bytes),
            kb(row.text_bytes),
            kb(row.bitcode_bytes),
            kb(row.in_memory_bytes),
            row.text_bytes as f64 / row.bitcode_bytes as f64,
        );
    }
    let text: usize = rows.iter().map(|r| r.text_bytes).sum();
    let bitcode: usize = rows.iter().map(|r| r.bitcode_bytes).sum();
    println!();
    println!(
        "Bitcode is {:.1}x denser than the human-readable text overall.",
        text as f64 / bitcode as f64
    );
}
