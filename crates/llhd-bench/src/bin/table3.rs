//! Regenerates Table 3: the qualitative comparison of hardware IRs. LLHD's
//! row is derived from the implemented feature set (see
//! `llhd::capabilities`); the other rows reproduce the published
//! capabilities as reported in the paper.

use llhd_bench::table3_rows;

fn yes(value: bool) -> &'static str {
    if value {
        "yes"
    } else {
        "-"
    }
}

fn main() {
    println!("Table 3: comparison against other hardware-targeted IRs");
    println!(
        "{:<10} {:>6} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7}",
        "IR", "Levels", "Turing", "Verif", "9-val", "4-val", "Behav", "Struct", "Netlist"
    );
    for row in table3_rows() {
        println!(
            "{:<10} {:>6} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>7}",
            row.name,
            row.levels,
            yes(row.turing_complete),
            yes(row.verification),
            yes(row.nine_valued_logic),
            yes(row.four_valued_logic),
            yes(row.behavioural),
            yes(row.structural),
            yes(row.netlist),
        );
    }
}
