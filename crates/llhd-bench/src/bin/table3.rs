//! Regenerates Table 3: the qualitative comparison of hardware IRs. LLHD's
//! row is derived from the implemented feature set (see
//! `llhd::capabilities`); the other rows reproduce the published
//! capabilities as reported in the paper.

use llhd_bench::report::render_table3;
use llhd_bench::table3_rows;

fn main() {
    print!("{}", render_table3(&table3_rows()));
}
