//! Regenerates Figure 5: the end-to-end lowering of the accumulator design
//! from Behavioural LLHD (as emitted by the Moore frontend from the
//! SystemVerilog of Figure 3) to Structural LLHD.

use llhd_bench::figure5_stages;

fn main() {
    let (behavioural, structural, report) = figure5_stages();
    println!("=== SystemVerilog input (Figure 3) ===");
    println!("{}", llhd_designs::accumulator_source());
    println!("=== Behavioural LLHD (Moore output, left column of Figure 5) ===");
    println!("{}", behavioural);
    println!("=== Structural LLHD (right column of Figure 5) ===");
    println!("{}", structural);
    println!("=== Lowering report ===");
    println!(
        "process lowering: {}, desequentialization: {}, inlined calls: {}, rejected (testbench) processes: {:?}",
        report.lowered_processes,
        report.desequentialized_processes,
        report.inlined_calls,
        report.rejected
    );
}
