//! Regenerates Figure 5: the end-to-end lowering of the accumulator design
//! from Behavioural LLHD (as emitted by the Moore frontend from the
//! SystemVerilog of Figure 3) to Structural LLHD.

use llhd_bench::report::render_figure5;

fn main() {
    print!("{}", render_figure5());
}
