//! Reusable benchmark suites.
//!
//! The measurement loops live here so both the `cargo bench` targets
//! (which emit the committed `BENCH_*.json` baselines) and the CI
//! regression gate (`bench_gate`, which re-measures in quick mode and
//! compares against those baselines) run the *same* code over the same
//! designs — a gate that measured something subtly different from the
//! baseline would drift into noise.
//!
//! Every simulation is constructed through the unified
//! [`llhd_sim::api::SimSession`] surface, with the engine pinned per
//! benchmark so the two engines stay individually tracked.

use crate::harness::Harness;
use llhd::assembly::{parse_module, write_module};
use llhd::bitcode::{decode_module, encode_module};
use llhd_designs::all_designs;
use llhd_sim::api::{BatchJob, DesignCache, EngineKind, SimSession};
use llhd_sim::SimConfig;

/// The number of simulated clock cycles per iteration of the simulation
/// suite (the throughput element count).
pub const SIMULATION_CYCLES: u64 = 50;

/// The Table 2 simulation suite: every benchmark design through both the
/// reference interpreter and the compiled simulator, tracing disabled,
/// plus the batch runner fanning all designs across the available cores.
pub fn simulation_suite(h: &mut Harness) {
    llhd_blaze::register();
    // One design lives at a time: holding all ten built modules across
    // the whole suite measurably degrades (and destabilizes) the
    // per-iteration elaborate/compile allocations of the small designs,
    // which would poison the per-design baselines.
    for design in all_designs() {
        let interp_name = format!("llhd-sim/{}", design.name);
        let blaze_name = format!("llhd-blaze/{}", design.name);
        let run_name = format!("blaze-run/{}", design.name);
        if !h.wants(&interp_name) && !h.wants(&blaze_name) && !h.wants(&run_name) {
            continue;
        }
        let module = design.build().expect("design must build");
        let config =
            SimConfig::until_nanos(design.sim_time_ns(SIMULATION_CYCLES)).without_trace();
        h.bench_throughput(
            &interp_name,
            SIMULATION_CYCLES,
            || {
                SimSession::builder(&module, design.top)
                    .engine(EngineKind::Interpret)
                    .config(config.clone())
                    .build()
                    .unwrap()
                    .run()
                    .unwrap()
            },
        );
        h.bench_throughput(
            &blaze_name,
            SIMULATION_CYCLES,
            || {
                SimSession::builder(&module, design.top)
                    .engine(EngineKind::Compile)
                    .config(config.clone())
                    .build()
                    .unwrap()
                    .run()
                    .unwrap()
            },
        );
        // The *run phase* of the compiled engine — the number the paper's
        // Table 2/3 story hinges on. Elaboration and `compile_design` are
        // served from a prewarmed design cache (the steady state of the
        // batch runner or a simulation server), so each iteration measures
        // engine instantiation plus the stepping loop only.
        if h.wants(&run_name) {
            let cache = DesignCache::new();
            let key = DesignCache::fingerprint(&module);
            SimSession::builder(&module, design.top)
                .engine(EngineKind::Compile)
                .config(config.clone())
                .cache(&cache)
                .cache_key(key)
                .build()
                .unwrap();
            h.bench_throughput(&run_name, SIMULATION_CYCLES, || {
                SimSession::builder(&module, design.top)
                    .engine(EngineKind::Compile)
                    .config(config.clone())
                    .cache(&cache)
                    .cache_key(key)
                    .build()
                    .unwrap()
                    .run()
                    .unwrap()
            });
        }
    }
    // The first scale-out workload: all ten designs as one batch, fanned
    // across std threads (one worker per core), compiled engine, with a
    // shared design cache so each design is compiled once per *batch
    // process lifetime* — the steady state a simulation server would see.
    // The whole fixture is skipped when a filter excludes the benchmark
    // (e.g. bench_gate's targeted quick-mode re-measure).
    if h.wants("batch/all-designs") {
        let built: Vec<_> = all_designs()
            .into_iter()
            .map(|design| {
                let module = design.build().expect("design must build");
                let config =
                    SimConfig::until_nanos(design.sim_time_ns(SIMULATION_CYCLES)).without_trace();
                (design, module, config)
            })
            .collect();
        let jobs: Vec<BatchJob> = built
            .iter()
            .map(|(design, module, config)| BatchJob {
                module,
                top: design.top,
                engine: EngineKind::Compile,
                config: config.clone(),
                cache_key: None,
            })
            .collect();
        let cache = DesignCache::new();
        h.bench_throughput(
            "batch/all-designs",
            SIMULATION_CYCLES * jobs.len() as u64,
            || {
                let results = SimSession::run_batch(&jobs, Some(&cache));
                for result in &results {
                    result.as_ref().unwrap();
                }
                results
            },
        );
    }
    sim_parallel(h);
    server_throughput(h);
    server_overload_shed(h);
    router_fleet_throughput(h);
    session_step_peek(h);
    checkpoint_roundtrip(h);
}

/// Thread counts measured per design in the `sim-parallel/*` suite.
/// `t1` is the serial loop (the parallel branch never engages below two
/// threads), so `t2`/`t4` against `t1` is the intra-simulation speedup.
const SIM_PARALLEL_THREADS: [usize; 3] = [1, 2, 4];

/// Simulated cycles per iteration of the `sim-parallel/*` suite — fewer
/// than [`SIMULATION_CYCLES`] because the generated designs are 10×–100×
/// the base corpus and each iteration activates every island every cycle.
const SIM_PARALLEL_CYCLES: u64 = 20;

/// The intra-simulation parallelism suite: generated designs with a
/// known island partition (see [`llhd_designs::generate`]), each run at
/// 1/2/4 worker threads on the compiled engine (plus the interpreter on
/// one design as a cross-engine reference). Within one design the trace
/// is byte-identical at every thread count — the differential tests pin
/// that down — so any delta between `t1` and `tN` is pure scheduling.
/// Throughput is reported in simulated cycles per second.
///
/// Caveat for reading baselines: speedups above 1× require actual
/// hardware parallelism. On a single-core host the `t2`/`t4` numbers
/// measure the overhead of the parallel machinery (bucketing, scoped
/// spawn, drive replay), not its benefit — still worth tracking, since
/// that overhead is the cost every multi-core win has to clear.
fn sim_parallel(h: &mut Harness) {
    use llhd_designs::{fir_bank, noc_mesh};

    let designs = [fir_bank(16, 32, 7), noc_mesh(8, 8, 11)];
    for (i, design) in designs.iter().enumerate() {
        let names: Vec<String> = SIM_PARALLEL_THREADS
            .iter()
            .map(|t| format!("sim-parallel/{}/t{}", design.name, t))
            .collect();
        let interp_name = format!("sim-parallel/{}/interp-t4", design.name);
        let wanted =
            names.iter().any(|n| h.wants(n)) || (i == 0 && h.wants(&interp_name));
        if !wanted {
            continue;
        }
        let module = design.build().expect("generated design must build");
        let base = SimConfig::until_nanos(design.sim_time_ns(SIM_PARALLEL_CYCLES))
            .without_trace();
        for (name, &threads) in names.iter().zip(&SIM_PARALLEL_THREADS) {
            let config = base.clone().with_threads(threads);
            h.bench_throughput(name, SIM_PARALLEL_CYCLES, || {
                SimSession::builder(&module, &design.top)
                    .engine(EngineKind::Compile)
                    .config(config.clone())
                    .build()
                    .unwrap()
                    .run()
                    .unwrap()
            });
        }
        if i == 0 {
            let config = base.clone().with_threads(4);
            h.bench_throughput(&interp_name, SIM_PARALLEL_CYCLES, || {
                SimSession::builder(&module, &design.top)
                    .engine(EngineKind::Interpret)
                    .config(config.clone())
                    .build()
                    .unwrap()
                    .run()
                    .unwrap()
            });
        }
    }
}

/// A free-running fixture for the interactive-session benchmark: one
/// process toggling one signal forever (within the configured horizon).
const SESSION_FIXTURE: &str = r#"
proc @blink () -> (i1$ %led) {
entry:
    %on = const i1 1
    %off = const i1 0
    %delay = const time 5ns
    drv i1$ %led, %on after %delay
    wait %next for %delay
next:
    drv i1$ %led, %off after %delay
    wait %entry for %delay
}
"#;

/// Simulated headroom for the session fixture, far beyond what any
/// measurement loop consumes, so `step` never runs the event queue dry
/// mid-benchmark (a drained session would degrade into no-op steps and
/// poison the baseline).
const SESSION_HEADROOM_NS: u128 = 1_000_000_000_000;

/// Step/peek pairs per iteration of `session/step-peek`.
const SESSION_PAIRS: u64 = 64;

/// The interactive hot path of a stateful server session: advance the
/// engine one scheduler step, then read a signal back by hierarchical
/// name — the `session.step` + `session.peek` round trip minus the
/// protocol layer, on the compiled engine.
fn session_step_peek(h: &mut Harness) {
    if !h.wants("session/step-peek") {
        return;
    }
    let module = parse_module(SESSION_FIXTURE).expect("fixture parses");
    let mut session = SimSession::builder(&module, "blink")
        .engine(EngineKind::Compile)
        .config(SimConfig::until_nanos(SESSION_HEADROOM_NS).without_trace())
        .build()
        .unwrap();
    h.bench_throughput("session/step-peek", SESSION_PAIRS, || {
        let mut last = None;
        for _ in 0..SESSION_PAIRS {
            session.step().unwrap();
            last = Some(session.peek("blink.led").unwrap());
        }
        last
    });
}

/// A full engine checkpoint/restore round trip on the largest benchmark
/// design (compiled engine, mid-run state): serialize the live engine to
/// an [`llhd_sim::api::EngineState`] and restore it into a second
/// session. Throughput is reported in checkpoint bytes per second.
fn checkpoint_roundtrip(h: &mut Harness) {
    if !h.wants("checkpoint-roundtrip") {
        return;
    }
    let design = all_designs()
        .into_iter()
        .max_by_key(|d| d.build().map(|m| write_module(&m).len()).unwrap_or(0))
        .unwrap();
    let module = design.build().unwrap();
    let config = SimConfig::until_nanos(design.sim_time_ns(SIMULATION_CYCLES)).without_trace();
    let build = || {
        SimSession::builder(&module, design.top)
            .engine(EngineKind::Compile)
            .config(config.clone())
            .build()
            .unwrap()
    };
    let mut live = build();
    // Step to a mid-run cut so the checkpoint carries a realistic event
    // queue and register state, not the empty post-initialize snapshot.
    for _ in 0..100 {
        if !live.step().unwrap() {
            break;
        }
    }
    let mut target = build();
    let bytes = live.checkpoint().unwrap().as_bytes().len() as u64;
    h.bench_throughput("checkpoint-roundtrip", bytes, || {
        let state = live.checkpoint().unwrap();
        target.restore(&state).unwrap();
        state
    });
}

/// Concurrent clients per iteration of the `server/throughput` benchmark.
const SERVER_CLIENTS: usize = 4;

/// The second scale-out workload: the full request path of the persistent
/// simulation server. N persistent TCP clients each fire one request per
/// benchmark design (mixed designs, compiled engine, design-key requests)
/// at a *warm* server — the steady state the ROADMAP's server mode is
/// for: every request is JSON decode + cache hit + engine instantiation +
/// run + JSON encode, with zero parse/elaborate/compile on the hot path.
fn server_throughput(h: &mut Harness) {
    use llhd_server::json::Json;
    use llhd_server::{Client, Server, ServerConfig};

    if !h.wants("server/throughput") {
        return;
    }
    let running = Server::spawn_tcp(ServerConfig::default(), "127.0.0.1:0")
        .expect("bind an ephemeral port");
    // Warm the server: ship every design's source once, keep the keys.
    let mut warm = Client::connect(running.addr()).expect("connect");
    let mut requests = Vec::new();
    for design in all_designs() {
        let module = design.build().expect("design must build");
        let response = warm
            .request(&Json::obj([
                ("type", Json::str("sim")),
                ("source", Json::str(llhd::assembly::write_module(&module))),
                ("top", Json::str(design.top)),
                ("engine", Json::str("compile")),
                ("until_ns", Json::uint(design.sim_time_ns(SIMULATION_CYCLES))),
            ]))
            .expect("warm request");
        assert_eq!(
            response.get("ok"),
            Some(&Json::Bool(true)),
            "warmup failed: {}",
            response
        );
        let key = response
            .get("result")
            .and_then(|r| r.get("design"))
            .and_then(Json::as_str)
            .expect("design key")
            .to_string();
        requests.push(Json::obj([
            ("type", Json::str("sim")),
            ("design", Json::str(key)),
            ("top", Json::str(design.top)),
            ("engine", Json::str("compile")),
            ("until_ns", Json::uint(design.sim_time_ns(SIMULATION_CYCLES))),
        ]));
    }
    // Persistent connections, one per client, reused across iterations —
    // a server benchmark that re-connects per request would measure TCP
    // setup, not the simulation path.
    let clients: Vec<std::sync::Mutex<Client>> = (0..SERVER_CLIENTS)
        .map(|_| std::sync::Mutex::new(Client::connect(running.addr()).expect("connect")))
        .collect();
    h.bench_throughput(
        "server/throughput",
        SIMULATION_CYCLES * (SERVER_CLIENTS * requests.len()) as u64,
        || {
            std::thread::scope(|scope| {
                for (i, slot) in clients.iter().enumerate() {
                    let requests = &requests;
                    scope.spawn(move || {
                        let mut client = slot.lock().unwrap();
                        // Stagger the design order per client so the mix
                        // stays mixed even when requests interleave.
                        for k in 0..requests.len() {
                            let request = &requests[(k + i) % requests.len()];
                            let response = client.request(request).expect("request");
                            assert_eq!(
                                response.get("ok"),
                                Some(&Json::Bool(true)),
                                "server error: {}",
                                response
                            );
                        }
                    });
                }
            });
        },
    );
    drop(clients);
    let mut closer = Client::connect(running.addr()).expect("connect");
    let ack = closer
        .request(&Json::obj([("type", Json::str("shutdown"))]))
        .expect("shutdown");
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)));
    running.join().expect("server exits cleanly");
}

/// Shed round-trips per iteration of `server/overload-shed`.
const SHED_REQUESTS: u64 = 64;

/// The admission-control fast path: how quickly an overloaded server
/// turns work away. A job group larger than the queue cap is always
/// shed at admission, so each round-trip is JSON decode + shed
/// decision + `overloaded` encode — the cost a saturated server pays
/// per refused request, which bounds how fast it stays responsive (and
/// keeps answering `ping`/`stats`) while clients back off.
fn server_overload_shed(h: &mut Harness) {
    use llhd_server::json::Json;
    use llhd_server::{Client, Server, ServerConfig};

    if !h.wants("server/overload-shed") {
        return;
    }
    let running = Server::spawn_tcp(
        ServerConfig {
            queue_cap: Some(1),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind an ephemeral port");
    let mut client = Client::connect(running.addr()).expect("connect");
    // Warm the design key so the measured requests resolve without
    // parsing; the single-job warmup fits under the cap and runs.
    let design = all_designs().into_iter().next().expect("benchmark designs");
    let module = design.build().expect("design must build");
    let warm = client
        .request(&Json::obj([
            ("type", Json::str("sim")),
            ("source", Json::str(write_module(&module))),
            ("top", Json::str(design.top)),
            ("until_ns", Json::uint(10)),
        ]))
        .expect("warm request");
    assert_eq!(warm.get("ok"), Some(&Json::Bool(true)), "warmup failed: {}", warm);
    let key = warm
        .get("result")
        .and_then(|r| r.get("design"))
        .and_then(Json::as_str)
        .expect("design key")
        .to_string();
    // Two key-only jobs against a cap of one: `depth + 2 > 1` holds no
    // matter what else is in flight, so every round-trip is a
    // deterministic shed — no timing races, pure fast-reject path.
    let request = Json::obj([
        ("type", Json::str("batch")),
        (
            "jobs",
            Json::Arr(
                (0..2)
                    .map(|_| {
                        Json::obj([
                            ("design", Json::str(key.clone())),
                            ("top", Json::str(design.top)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    h.bench_throughput("server/overload-shed", SHED_REQUESTS, || {
        for _ in 0..SHED_REQUESTS {
            let response = client.request(&request).expect("request");
            let kind = response
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str);
            assert_eq!(kind, Some("overloaded"), "expected a shed: {}", response);
        }
    });
    let ack = client
        .request(&Json::obj([("type", Json::str("shutdown"))]))
        .expect("shutdown");
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)));
    running.join().expect("server exits cleanly");
}

/// Workers in the `router/fleet-throughput` fleet.
const FLEET_WORKERS: usize = 2;
/// Concurrent clients against the router.
const FLEET_CLIENTS: usize = 4;

/// The fleet-routing path end to end: N clients fire warm design-key
/// requests at an `llhd-router` in front of a fleet of workers. Against
/// `server/throughput` (same request mix, one worker, no router), the
/// delta is the routing tax — one extra JSON parse, the placement
/// lookup, and one extra network hop per request — paid for spreading
/// the work over every worker's cache and cores.
fn router_fleet_throughput(h: &mut Harness) {
    use llhd_router::{Router, RouterConfig, WorkerSpec};
    use llhd_server::json::Json;
    use llhd_server::{Client, Server, ServerConfig};

    if !h.wants("router/fleet-throughput") {
        return;
    }
    let workers: Vec<llhd_server::RunningServer> = (0..FLEET_WORKERS)
        .map(|_| {
            Server::spawn_tcp(ServerConfig::default(), "127.0.0.1:0")
                .expect("bind an ephemeral port")
        })
        .collect();
    let router = Router::spawn_tcp(
        RouterConfig {
            workers: workers
                .iter()
                .enumerate()
                .map(|(i, worker)| WorkerSpec {
                    id: format!("w{}", i),
                    addr: worker.addr(),
                })
                .collect(),
            ..RouterConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind the router");
    // Warm through the router: the source submission places each design
    // on its ring owner and teaches the router its fingerprint, so the
    // measured keyed requests route straight to the warm worker.
    let mut warm = Client::connect(router.addr()).expect("connect");
    let mut requests = Vec::new();
    for design in all_designs() {
        let module = design.build().expect("design must build");
        let response = warm
            .request(&Json::obj([
                ("type", Json::str("sim")),
                ("source", Json::str(write_module(&module))),
                ("top", Json::str(design.top)),
                ("engine", Json::str("compile")),
                ("until_ns", Json::uint(design.sim_time_ns(SIMULATION_CYCLES))),
            ]))
            .expect("warm request");
        assert_eq!(
            response.get("ok"),
            Some(&Json::Bool(true)),
            "warmup failed: {}",
            response
        );
        let key = response
            .get("result")
            .and_then(|r| r.get("design"))
            .and_then(Json::as_str)
            .expect("design key")
            .to_string();
        requests.push(Json::obj([
            ("type", Json::str("sim")),
            ("design", Json::str(key)),
            ("top", Json::str(design.top)),
            ("engine", Json::str("compile")),
            ("until_ns", Json::uint(design.sim_time_ns(SIMULATION_CYCLES))),
        ]));
    }
    let clients: Vec<std::sync::Mutex<Client>> = (0..FLEET_CLIENTS)
        .map(|_| std::sync::Mutex::new(Client::connect(router.addr()).expect("connect")))
        .collect();
    h.bench_throughput(
        "router/fleet-throughput",
        SIMULATION_CYCLES * (FLEET_CLIENTS * requests.len()) as u64,
        || {
            std::thread::scope(|scope| {
                for (i, slot) in clients.iter().enumerate() {
                    let requests = &requests;
                    scope.spawn(move || {
                        let mut client = slot.lock().unwrap();
                        for k in 0..requests.len() {
                            let request = &requests[(k + i) % requests.len()];
                            let response = client.request(request).expect("request");
                            assert_eq!(
                                response.get("ok"),
                                Some(&Json::Bool(true)),
                                "fleet error: {}",
                                response
                            );
                        }
                    });
                }
            });
        },
    );
    drop(clients);
    let mut closer = Client::connect(router.addr()).expect("connect");
    let ack = closer
        .request(&Json::obj([("type", Json::str("shutdown"))]))
        .expect("shutdown");
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)));
    router.join().expect("router exits cleanly");
    for worker in workers {
        let mut direct = Client::connect(worker.addr()).expect("connect");
        let ack = direct
            .request(&Json::obj([("type", Json::str("shutdown"))]))
            .expect("shutdown");
        assert_eq!(ack.get("ok"), Some(&Json::Bool(true)));
        worker.join().expect("worker exits cleanly");
    }
}

/// The Table 4 serialization suite: text emission/parsing and bitcode
/// encode/decode rates over the largest benchmark design. Shared between
/// `cargo bench --bench serialization` and the CI regression gate.
pub fn serialization_suite(h: &mut Harness) {
    // The largest design of the suite exercises the serializers hardest.
    let design = all_designs()
        .into_iter()
        .max_by_key(|d| d.build().map(|m| write_module(&m).len()).unwrap_or(0))
        .unwrap();
    let module = design.build().unwrap();
    let text = write_module(&module);
    let bitcode = encode_module(&module);

    h.bench_throughput("write_text", text.len() as u64, || write_module(&module));
    h.bench_throughput("parse_text", text.len() as u64, || {
        parse_module(&text).unwrap()
    });
    h.bench_throughput("encode_bitcode", bitcode.len() as u64, || {
        encode_module(&module)
    });
    h.bench_throughput("decode_bitcode", bitcode.len() as u64, || {
        decode_module(&bitcode).unwrap()
    });
}
