//! Reusable benchmark suites.
//!
//! The measurement loops live here so both the `cargo bench` targets
//! (which emit the committed `BENCH_*.json` baselines) and the CI
//! regression gate (`bench_gate`, which re-measures in quick mode and
//! compares against those baselines) run the *same* code over the same
//! designs — a gate that measured something subtly different from the
//! baseline would drift into noise.

use crate::harness::Harness;
use llhd_designs::all_designs;
use llhd_sim::SimConfig;

/// The number of simulated clock cycles per iteration of the simulation
/// suite (the throughput element count).
pub const SIMULATION_CYCLES: u64 = 50;

/// The Table 2 simulation suite: every benchmark design through both the
/// reference interpreter and the compiled simulator, tracing disabled.
pub fn simulation_suite(h: &mut Harness) {
    for design in all_designs() {
        let module = design.build().expect("design must build");
        let config =
            SimConfig::until_nanos(design.sim_time_ns(SIMULATION_CYCLES)).without_trace();
        h.bench_throughput(
            &format!("llhd-sim/{}", design.name),
            SIMULATION_CYCLES,
            || llhd_sim::simulate(&module, design.top, &config).unwrap(),
        );
        h.bench_throughput(
            &format!("llhd-blaze/{}", design.name),
            SIMULATION_CYCLES,
            || llhd_blaze::simulate(&module, design.top, &config).unwrap(),
        );
    }
}
