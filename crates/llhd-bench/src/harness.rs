//! A self-contained benchmark harness (criterion replacement).
//!
//! The workspace builds in offline sandboxes with no registry access, so the
//! benches under `benches/` use this in-repo harness instead of an external
//! dependency. It keeps the parts of criterion the paper reproduction needs:
//!
//! * a warmup phase before any measurement,
//! * per-iteration wall-clock statistics (median of N samples, where each
//!   sample batches enough iterations to be timeable),
//! * optional throughput (elements per second) reporting, and
//! * machine-readable JSON emission in the `BENCH_<suite>.json` shape used
//!   for trend tracking across PRs.
//!
//! ```no_run
//! let mut h = llhd_bench::harness::Harness::from_args("example");
//! h.bench("add", || std::hint::black_box(1u64 + 2));
//! h.finish();
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-exported so benches can guard values without pulling in `std::hint`
/// everywhere.
pub use std::hint::black_box as bb;

/// Tuning knobs for one harness run.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Minimum time spent running the function before measurement starts.
    pub warmup: Duration,
    /// Number of timed samples per benchmark; the reported statistic is the
    /// median over these.
    pub samples: usize,
    /// Target wall-clock time per sample; the harness batches iterations so
    /// one sample takes roughly this long.
    pub sample_time: Duration,
    /// Where to write the JSON report; `None` disables emission.
    pub json_path: Option<String>,
}

impl BenchConfig {
    /// The default configuration for a benchmark suite.
    pub fn new(suite: &str) -> Self {
        BenchConfig {
            warmup: Duration::from_millis(300),
            samples: 11,
            sample_time: Duration::from_millis(120),
            json_path: Some(default_json_path(suite)),
        }
    }

    /// A configuration for smoke tests: one quick sample, no JSON.
    pub fn fast() -> Self {
        BenchConfig {
            warmup: Duration::from_millis(1),
            samples: 3,
            sample_time: Duration::from_millis(2),
            json_path: None,
        }
    }
}

/// Default report location: `BENCH_<suite>.json` at the workspace root
/// (found by walking up from this crate to the directory holding
/// `Cargo.lock`), so `cargo bench` updates the committed baselines no
/// matter which directory cargo runs the bench from. Falls back to the
/// current directory outside a workspace checkout. Also how the
/// regression gate (`bench_gate`) locates the committed baseline.
pub fn default_json_path(suite: &str) -> String {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .find(|p| p.join("Cargo.lock").exists())
        .map(|root| {
            root.join(format!("BENCH_{}.json", suite))
                .to_string_lossy()
                .into_owned()
        })
        .unwrap_or_else(|| format!("BENCH_{}.json", suite))
}

/// Measured statistics for one benchmark, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name, `group/function` style.
    pub name: String,
    /// Median per-iteration time over all samples.
    pub median_ns: f64,
    /// Mean per-iteration time over all samples.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations batched into each sample.
    pub iters_per_sample: u64,
    /// Elements processed per iteration (for throughput), if declared.
    pub elements: Option<u64>,
}

impl BenchResult {
    /// Throughput in elements per second, if the benchmark declared an
    /// element count.
    pub fn throughput_per_sec(&self) -> Option<f64> {
        self.elements
            .map(|n| n as f64 / (self.median_ns / 1e9).max(1e-12))
    }
}

/// A running benchmark suite: measures closures and collects results.
pub struct Harness {
    suite: String,
    config: BenchConfig,
    filters: Vec<String>,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Create a harness with an explicit configuration.
    pub fn new(suite: &str, config: BenchConfig) -> Self {
        Harness {
            suite: suite.to_string(),
            config,
            filters: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Create a harness configured from the process arguments.
    ///
    /// Recognised flags (all optional, order-independent): `--samples N`
    /// (clamped to at least 1), `--json PATH`, `--no-json`, `--fast`. The
    /// `--bench` flag that `cargo bench` passes to `harness = false`
    /// targets is ignored. Positional arguments are substring filters on
    /// benchmark names (the criterion idiom, e.g.
    /// `cargo bench --bench simulation -- RISC-V`); a filtered run skips
    /// the JSON report so partial results never overwrite a committed
    /// baseline, unless `--json PATH` explicitly asks for one.
    ///
    /// `--fast` runs do not write JSON (their numbers are not comparable to
    /// full runs, so they must not overwrite committed `BENCH_*.json`
    /// baselines) unless an explicit `--json PATH` asks for it.
    ///
    /// The default report path is `BENCH_<suite>.json` at the workspace
    /// root; set the `LLHD_BENCH_DIR` environment variable to redirect it.
    pub fn from_args(suite: &str) -> Self {
        let mut fast = false;
        let mut samples: Option<usize> = None;
        let mut filters: Vec<String> = Vec::new();
        // None = use the default; Some(None) = --no-json; Some(Some(p)) = --json p.
        let mut json: Option<Option<String>> = None;
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--samples" => match argv.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) => {
                        samples = Some(n.max(1));
                        i += 1;
                    }
                    None => eprintln!("--samples requires a positive integer; ignoring"),
                },
                // Don't let --json swallow a following flag as its path.
                "--json" => match argv.get(i + 1) {
                    Some(p) if !p.starts_with("--") => {
                        json = Some(Some(p.clone()));
                        i += 1;
                    }
                    _ => eprintln!("--json requires a path; ignoring"),
                },
                "--no-json" => json = Some(None),
                "--fast" => fast = true,
                arg if !arg.starts_with('-') => filters.push(arg.to_string()),
                // `cargo bench` passes `--bench`; ignore unknown flags.
                _ => {}
            }
            i += 1;
        }
        let mut config = if fast {
            BenchConfig::fast()
        } else {
            let mut c = BenchConfig::new(suite);
            if let Ok(dir) = std::env::var("LLHD_BENCH_DIR") {
                c.json_path = Some(format!("{}/BENCH_{}.json", dir, suite));
            }
            c
        };
        if let Some(n) = samples {
            config.samples = n;
        }
        if !filters.is_empty() && json.is_none() {
            println!("filtering on {:?}; skipping the JSON report", filters);
            json = Some(None);
        }
        if let Some(path) = json {
            config.json_path = path;
        }
        println!("suite: {} ({} samples)", suite, config.samples);
        let mut harness = Self::new(suite, config);
        harness.filters = filters;
        harness
    }

    /// Restrict the harness to benchmarks whose name contains one of the
    /// given substrings (the same filtering `from_args` wires up from
    /// positional arguments). Used by `bench_gate` to re-measure only the
    /// benchmarks that regressed in quick mode.
    pub fn set_filters(&mut self, filters: Vec<String>) {
        self.filters = filters;
    }

    /// Whether a benchmark with this name would run under the current
    /// filters. Suites use it to skip building fixtures for benchmarks
    /// that a filtered run excludes anyway.
    pub fn wants(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Measure `f`, reporting per-iteration statistics under `name`.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, f: F) {
        self.run(name, None, f);
    }

    /// Measure `f` which processes `elements` items per call, so the report
    /// can include throughput.
    pub fn bench_throughput<T, F: FnMut() -> T>(&mut self, name: &str, elements: u64, f: F) {
        self.run(name, Some(elements), f);
    }

    fn run<T, F: FnMut() -> T>(&mut self, name: &str, elements: Option<u64>, mut f: F) {
        if !self.wants(name) {
            return;
        }
        // Warmup: run until the warmup budget is spent (at least once), and
        // estimate the per-iteration cost while doing so.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        loop {
            black_box(f());
            warmup_iters += 1;
            if warmup_start.elapsed() >= self.config.warmup {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        // Batch enough iterations that one sample hits the sample-time
        // target; a single iteration per sample is fine for slow functions.
        let iters_per_sample = ((self.config.sample_time.as_secs_f64() / per_iter.max(1e-9))
            .ceil() as u64)
            .max(1);

        // Guard against a zero sample count reaching us through a
        // hand-built BenchConfig; the statistics below need at least one.
        let samples = self.config.samples.max(1);
        let mut sample_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            sample_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        sample_ns.sort_by(|a, b| a.total_cmp(b));

        let median_ns = median_of_sorted(&sample_ns);
        let mean_ns = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;
        let result = BenchResult {
            name: name.to_string(),
            median_ns,
            mean_ns,
            min_ns: sample_ns[0],
            max_ns: *sample_ns.last().unwrap(),
            samples: sample_ns.len(),
            iters_per_sample,
            elements,
        };
        let throughput = match result.throughput_per_sec() {
            Some(t) => format!("  {:>12.0} elem/s", t),
            None => String::new(),
        };
        println!(
            "  {:<40} median {:>12}  (min {:>12}){}",
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.min_ns),
            throughput
        );
        self.results.push(result);
    }

    /// The results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Render the JSON report for the collected results.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"suite\": {},\n", json_string(&self.suite)));
        out.push_str("  \"unit\": \"ns_per_iter\",\n");
        out.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let throughput = match r.throughput_per_sec() {
                Some(t) => format!(", \"throughput_per_sec\": {:.1}", t),
                None => String::new(),
            };
            out.push_str(&format!(
                "    {{\"name\": {}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}{}}}{}\n",
                json_string(&r.name),
                r.median_ns,
                r.mean_ns,
                r.min_ns,
                r.max_ns,
                r.samples,
                r.iters_per_sample,
                throughput,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Print the summary and write the JSON report (if configured).
    pub fn finish(self) {
        if let Some(path) = &self.config.json_path {
            match std::fs::write(path, self.to_json()) {
                Ok(()) => println!("wrote {}", path),
                Err(e) => eprintln!("failed to write {}: {}", path, e),
            }
        }
    }
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{:.0} ns", ns)
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports_json() {
        let mut h = Harness::new("unit", BenchConfig::fast());
        h.bench("noop", || 1u64 + 1);
        h.bench_throughput("sum", 1000, || (0u64..1000).sum::<u64>());
        assert_eq!(h.results().len(), 2);
        assert!(h.results()[0].median_ns >= 0.0);
        assert!(h.results()[1].throughput_per_sec().unwrap() > 0.0);
        let json = h.to_json();
        assert!(json.contains("\"suite\": \"unit\""));
        assert!(json.contains("\"name\": \"noop\""));
        assert!(json.contains("throughput_per_sec"));
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median_of_sorted(&[1.0, 3.0, 5.0]), 3.0);
        assert_eq!(median_of_sorted(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
