//! Ablation benchmark for the design choices called out in DESIGN.md:
//!
//! * how much of LLHD-Blaze's advantage comes from the pre-resolved compiled
//!   form versus from running on a cleaned-up module (the compiled simulator
//!   is benchmarked on both the `-O0` and the optimized module), and
//! * what the interpreter gains from the same cleanup.
//!
//! Run with `cargo bench -p llhd-bench --bench ablation`; emits
//! `BENCH_ablation.json` for trend tracking.

use llhd_bench::harness::Harness;
use llhd_designs::design_by_name;
use llhd_opt::pipeline::optimize_module;
use llhd_sim::SimConfig;

fn main() {
    let design = design_by_name("RISC-V Core").unwrap();
    let module = design.build().unwrap();
    let mut optimized = module.clone();
    optimize_module(&mut optimized);
    let config = SimConfig::until_nanos(design.sim_time_ns(50)).without_trace();

    let mut h = Harness::from_args("ablation");
    h.bench("interpreter_O0", || {
        llhd_sim::simulate(&module, design.top, &config).unwrap()
    });
    h.bench("interpreter_optimized", || {
        llhd_sim::simulate(&optimized, design.top, &config).unwrap()
    });
    h.bench("blaze_O0", || {
        llhd_blaze::simulate(&module, design.top, &config).unwrap()
    });
    h.bench("blaze_optimized", || {
        llhd_blaze::simulate(&optimized, design.top, &config).unwrap()
    });
    h.finish();
}
