//! Ablation benchmark for the design choices called out in DESIGN.md:
//!
//! * how much of LLHD-Blaze's advantage comes from the pre-resolved compiled
//!   form versus from running on a cleaned-up module (the compiled simulator
//!   is benchmarked on both the `-O0` and the optimized module),
//! * what the interpreter gains from the same cleanup, and
//! * what each stage of the blaze lowering pipeline buys on the run phase:
//!   `blaze_run_generic` executes the PR-2-era generic per-op dispatch
//!   (specialization off), `blaze_run_nofuse` adds per-instance
//!   specialization (baked signal bindings, constant folding, inline
//!   delays) without superinstruction fusion, and `blaze_run_full` is the
//!   shipping configuration. All three share one ahead-of-time compile per
//!   configuration, so the numbers isolate the dispatch loop.
//!
//! Run with `cargo bench -p llhd-bench --bench ablation`; emits
//! `BENCH_ablation.json` for trend tracking.

use llhd_bench::harness::Harness;
use llhd_blaze::{compile_design_with, BlazeOptions, BlazeSimulator};
use llhd_designs::design_by_name;
use llhd_opt::pipeline::optimize_module;
use llhd_sim::api::{EngineKind, SimSession};
use llhd_sim::{elaborate, SimConfig};
use std::sync::Arc;

fn main() {
    llhd_blaze::register();
    let design = design_by_name("RISC-V Core").unwrap();
    let module = design.build().unwrap();
    let mut optimized = module.clone();
    optimize_module(&mut optimized);
    let config = SimConfig::until_nanos(design.sim_time_ns(50)).without_trace();
    let run = |module: &llhd::ir::Module, engine: EngineKind| {
        SimSession::builder(module, design.top)
            .engine(engine)
            .config(config.clone())
            .build()
            .unwrap()
            .run()
            .unwrap()
    };

    let mut h = Harness::from_args("ablation");
    h.bench("interpreter_O0", || run(&module, EngineKind::Interpret));
    h.bench("interpreter_optimized", || {
        run(&optimized, EngineKind::Interpret)
    });
    h.bench("blaze_O0", || run(&module, EngineKind::Compile));
    h.bench("blaze_optimized", || run(&optimized, EngineKind::Compile));

    // Lowering-stage ablation on the run phase: one compile per
    // configuration, engine instantiation + stepping measured.
    let elaborated = Arc::new(elaborate(&module, design.top).unwrap());
    for (name, options) in [
        (
            "blaze_run_generic",
            BlazeOptions {
                fuse: false,
                specialize: false,
                islands: true,
            },
        ),
        (
            "blaze_run_nofuse",
            BlazeOptions {
                fuse: false,
                specialize: true,
                islands: true,
            },
        ),
        ("blaze_run_full", BlazeOptions::default()),
    ] {
        let compiled = Arc::new(
            compile_design_with(&module, Arc::clone(&elaborated), options).unwrap(),
        );
        h.bench(name, || {
            BlazeSimulator::new(Arc::clone(&compiled), config.clone())
                .run()
                .unwrap()
        });
    }
    h.finish();
}
