//! Ablation benchmark for the design choices called out in DESIGN.md:
//!
//! * how much of LLHD-Blaze's advantage comes from the pre-resolved compiled
//!   form versus from running on a cleaned-up module (the compiled simulator
//!   is benchmarked on both the `-O0` and the optimized module), and
//! * what the interpreter gains from the same cleanup.
//!
//! Run with `cargo bench -p llhd-bench --bench ablation`; emits
//! `BENCH_ablation.json` for trend tracking.

use llhd_bench::harness::Harness;
use llhd_designs::design_by_name;
use llhd_opt::pipeline::optimize_module;
use llhd_sim::api::{EngineKind, SimSession};
use llhd_sim::SimConfig;

fn main() {
    llhd_blaze::register();
    let design = design_by_name("RISC-V Core").unwrap();
    let module = design.build().unwrap();
    let mut optimized = module.clone();
    optimize_module(&mut optimized);
    let config = SimConfig::until_nanos(design.sim_time_ns(50)).without_trace();
    let run = |module: &llhd::ir::Module, engine: EngineKind| {
        SimSession::builder(module, design.top)
            .engine(engine)
            .config(config.clone())
            .build()
            .unwrap()
            .run()
            .unwrap()
    };

    let mut h = Harness::from_args("ablation");
    h.bench("interpreter_O0", || run(&module, EngineKind::Interpret));
    h.bench("interpreter_optimized", || {
        run(&optimized, EngineKind::Interpret)
    });
    h.bench("blaze_O0", || run(&module, EngineKind::Compile));
    h.bench("blaze_optimized", || run(&optimized, EngineKind::Compile));
    h.finish();
}
