//! Ablation benchmark for the design choices called out in DESIGN.md:
//!
//! * how much of LLHD-Blaze's advantage comes from the pre-resolved compiled
//!   form versus from running on a cleaned-up module (the compiled simulator
//!   is benchmarked on both the `-O0` and the optimized module), and
//! * what the interpreter gains from the same cleanup.

use criterion::{criterion_group, criterion_main, Criterion};
use llhd_designs::design_by_name;
use llhd_opt::pipeline::optimize_module;
use llhd_sim::SimConfig;

fn bench_ablation(c: &mut Criterion) {
    let design = design_by_name("RISC-V Core").unwrap();
    let module = design.build().unwrap();
    let mut optimized = module.clone();
    optimize_module(&mut optimized);
    let config = SimConfig::until_nanos(design.sim_time_ns(50)).without_trace();

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.bench_function("interpreter_O0", |b| {
        b.iter(|| llhd_sim::simulate(&module, design.top, &config).unwrap())
    });
    group.bench_function("interpreter_optimized", |b| {
        b.iter(|| llhd_sim::simulate(&optimized, design.top, &config).unwrap())
    });
    group.bench_function("blaze_O0", |b| {
        b.iter(|| llhd_blaze::simulate(&module, design.top, &config).unwrap())
    });
    group.bench_function("blaze_optimized", |b| {
        b.iter(|| llhd_blaze::simulate(&optimized, design.top, &config).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
