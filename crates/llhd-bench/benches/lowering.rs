//! Criterion benchmark behind Figure 5: cost of the Behavioural → Structural
//! lowering pipeline (ECM, TCM, TCFE, process lowering, deseq).

use criterion::{criterion_group, criterion_main, Criterion};
use llhd_designs::accumulator_example;
use llhd_opt::pipeline::{lower_to_structural, optimize_module, LoweringOptions};

fn bench_lowering(c: &mut Criterion) {
    let module = accumulator_example().unwrap();
    let mut group = c.benchmark_group("lowering");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.bench_function("optimize_accumulator", |b| {
        b.iter(|| {
            let mut m = module.clone();
            optimize_module(&mut m);
            m
        })
    });
    group.bench_function("lower_accumulator_to_structural", |b| {
        b.iter(|| {
            let mut m = module.clone();
            lower_to_structural(&mut m, &LoweringOptions::default())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lowering);
criterion_main!(benches);
