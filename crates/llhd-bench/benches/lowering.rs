//! Benchmark behind Figure 5: cost of the Behavioural → Structural lowering
//! pipeline (ECM, TCM, TCFE, process lowering, deseq).
//!
//! Run with `cargo bench -p llhd-bench --bench lowering`; emits
//! `BENCH_lowering.json` for trend tracking.

use llhd_bench::harness::Harness;
use llhd_designs::accumulator_example;
use llhd_opt::pipeline::{lower_to_structural, optimize_module, LoweringOptions};

fn main() {
    let module = accumulator_example().unwrap();
    let mut h = Harness::from_args("lowering");
    h.bench("optimize_accumulator", || {
        let mut m = module.clone();
        optimize_module(&mut m);
        m
    });
    h.bench("lower_accumulator_to_structural", || {
        let mut m = module.clone();
        lower_to_structural(&mut m, &LoweringOptions::default())
    });
    h.finish();
}
