//! Benchmark behind Table 4: cost of the three representations (text
//! emission/parsing, bitcode encoding/decoding) for the benchmark designs.
//!
//! Run with `cargo bench -p llhd-bench --bench serialization`; emits
//! `BENCH_serialization.json` for trend tracking. Throughput is reported in
//! bytes of the respective representation per second. The measurement loop
//! lives in [`llhd_bench::suites::serialization_suite`], shared with the CI
//! regression gate (`bench_gate`).

use llhd_bench::harness::Harness;
use llhd_bench::suites::serialization_suite;

fn main() {
    let mut h = Harness::from_args("serialization");
    serialization_suite(&mut h);
    h.finish();
}
