//! Criterion benchmark behind Table 4: cost of the three representations
//! (text emission/parsing, bitcode encoding/decoding) for the benchmark
//! designs.

use criterion::{criterion_group, criterion_main, Criterion};
use llhd::assembly::{parse_module, write_module};
use llhd::bitcode::{decode_module, encode_module};
use llhd_designs::all_designs;

fn bench_serialization(c: &mut Criterion) {
    // The largest design of the suite exercises the serializers hardest.
    let design = all_designs()
        .into_iter()
        .max_by_key(|d| d.build().map(|m| write_module(&m).len()).unwrap_or(0))
        .unwrap();
    let module = design.build().unwrap();
    let text = write_module(&module);
    let bitcode = encode_module(&module);

    let mut group = c.benchmark_group("serialization");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.bench_function("write_text", |b| b.iter(|| write_module(&module)));
    group.bench_function("parse_text", |b| b.iter(|| parse_module(&text).unwrap()));
    group.bench_function("encode_bitcode", |b| b.iter(|| encode_module(&module)));
    group.bench_function("decode_bitcode", |b| {
        b.iter(|| decode_module(&bitcode).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_serialization);
criterion_main!(benches);
