//! Benchmark behind Table 4: cost of the three representations (text
//! emission/parsing, bitcode encoding/decoding) for the benchmark designs.
//!
//! Run with `cargo bench -p llhd-bench --bench serialization`; emits
//! `BENCH_serialization.json` for trend tracking. Throughput is reported in
//! bytes of the respective representation per second.

use llhd::assembly::{parse_module, write_module};
use llhd::bitcode::{decode_module, encode_module};
use llhd_bench::harness::Harness;
use llhd_designs::all_designs;

fn main() {
    // The largest design of the suite exercises the serializers hardest.
    let design = all_designs()
        .into_iter()
        .max_by_key(|d| d.build().map(|m| write_module(&m).len()).unwrap_or(0))
        .unwrap();
    let module = design.build().unwrap();
    let text = write_module(&module);
    let bitcode = encode_module(&module);

    let mut h = Harness::from_args("serialization");
    h.bench_throughput("write_text", text.len() as u64, || write_module(&module));
    h.bench_throughput("parse_text", text.len() as u64, || {
        parse_module(&text).unwrap()
    });
    h.bench_throughput("encode_bitcode", bitcode.len() as u64, || {
        encode_module(&module)
    });
    h.bench_throughput("decode_bitcode", bitcode.len() as u64, || {
        decode_module(&bitcode).unwrap()
    });
    h.finish();
}
