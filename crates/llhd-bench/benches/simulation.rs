//! Benchmark behind Table 2: per-design simulation throughput of the
//! reference interpreter versus the compiled simulator.
//!
//! Run with `cargo bench -p llhd-bench --bench simulation`; emits
//! `BENCH_simulation.json` for trend tracking. Throughput is reported in
//! simulated clock cycles per second. The measurement loop itself lives
//! in [`llhd_bench::suites::simulation_suite`], shared with the CI
//! regression gate (`bench_gate`).

use llhd_bench::harness::Harness;
use llhd_bench::suites::simulation_suite;

fn main() {
    let mut h = Harness::from_args("simulation");
    simulation_suite(&mut h);
    h.finish();
}
