//! Criterion benchmark behind Table 2: per-design simulation throughput of
//! the reference interpreter versus the compiled simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llhd_designs::all_designs;
use llhd_sim::SimConfig;

fn bench_simulation(c: &mut Criterion) {
    let cycles = 50;
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for design in all_designs() {
        let module = design.build().expect("design must build");
        let config = SimConfig::until_nanos(design.sim_time_ns(cycles)).without_trace();
        group.bench_with_input(
            BenchmarkId::new("llhd-sim", design.name),
            &module,
            |b, module| {
                b.iter(|| llhd_sim::simulate(module, design.top, &config).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("llhd-blaze", design.name),
            &module,
            |b, module| {
                b.iter(|| llhd_blaze::simulate(module, design.top, &config).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
