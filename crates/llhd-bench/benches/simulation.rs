//! Benchmark behind Table 2: per-design simulation throughput of the
//! reference interpreter versus the compiled simulator.
//!
//! Run with `cargo bench -p llhd-bench --bench simulation`; emits
//! `BENCH_simulation.json` for trend tracking. Throughput is reported in
//! simulated clock cycles per second.

use llhd_bench::harness::Harness;
use llhd_designs::all_designs;
use llhd_sim::SimConfig;

fn main() {
    let cycles = 50;
    let mut h = Harness::from_args("simulation");
    for design in all_designs() {
        let module = design.build().expect("design must build");
        let config = SimConfig::until_nanos(design.sim_time_ns(cycles)).without_trace();
        h.bench_throughput(&format!("llhd-sim/{}", design.name), cycles, || {
            llhd_sim::simulate(&module, design.top, &config).unwrap()
        });
        h.bench_throughput(&format!("llhd-blaze/{}", design.name), cycles, || {
            llhd_blaze::simulate(&module, design.top, &config).unwrap()
        });
    }
    h.finish();
}
