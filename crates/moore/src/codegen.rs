//! Lowering of the SystemVerilog AST to Behavioural LLHD.
//!
//! The mapping follows §3 of the paper: modules become entities, `always`
//! blocks and `initial` blocks become processes instantiated inside the
//! entity, continuous assignments become data flow directly inside the
//! entity, and module instantiations become `inst` instructions. The output
//! is intentionally unoptimized ("-O0"); cleanup is the job of `llhd-opt`.

use crate::ast::*;
use crate::CompileError;
use llhd::ir::{Module, Signature, UnitBuilder, UnitData, UnitKind, UnitName, Value};
use llhd::ty::{int_ty, signal_ty};
use llhd::value::{ConstValue, TimeValue};
use std::collections::HashMap;

/// Compile a parsed source file into an LLHD module.
///
/// # Errors
///
/// Returns a [`CompileError`] for constructs outside the supported subset
/// (for example non-identifier instance connections).
pub fn compile_ast(file: &SourceFile) -> Result<Module, CompileError> {
    let mut module = Module::new();
    // Port directory for instantiations (modules may be used before they are
    // declared).
    let ports_of: HashMap<String, Vec<Port>> = file
        .modules
        .iter()
        .map(|m| (m.name.clone(), m.ports.clone()))
        .collect();
    for decl in &file.modules {
        compile_module(decl, &ports_of, &mut module)?;
    }
    Ok(module)
}

fn err(message: impl Into<String>) -> CompileError {
    CompileError {
        line: 0,
        message: message.into(),
    }
}

struct NetInfo {
    signal: Value,
    width: usize,
}

fn compile_module(
    decl: &ModuleDecl,
    ports_of: &HashMap<String, Vec<Port>>,
    module: &mut Module,
) -> Result<(), CompileError> {
    // Entity signature: inputs then outputs.
    let inputs: Vec<&Port> = decl
        .ports
        .iter()
        .filter(|p| p.direction == Direction::Input)
        .collect();
    let outputs: Vec<&Port> = decl
        .ports
        .iter()
        .filter(|p| p.direction == Direction::Output)
        .collect();
    let sig = Signature::new_entity(
        inputs.iter().map(|p| signal_ty(int_ty(p.width))).collect(),
        outputs.iter().map(|p| signal_ty(int_ty(p.width))).collect(),
    );
    let mut entity = UnitData::new(UnitKind::Entity, UnitName::global(&decl.name), sig);

    // Net directory: ports first, then internal declarations.
    let mut nets: HashMap<String, NetInfo> = HashMap::new();
    for (i, port) in inputs.iter().chain(outputs.iter()).enumerate() {
        let value = entity.arg_value(i);
        entity.set_value_name(value, port.name.clone());
        nets.insert(
            port.name.clone(),
            NetInfo {
                signal: value,
                width: port.width,
            },
        );
    }
    {
        let mut builder = UnitBuilder::new(&mut entity);
        for item in &decl.items {
            if let Item::Declaration { width, names } = item {
                for name in names {
                    if nets.contains_key(name) {
                        continue;
                    }
                    let zero = builder.ins_const(ConstValue::int(*width, 0));
                    let signal = builder.sig(zero);
                    builder.unit_mut().set_value_name(signal, name.clone());
                    nets.insert(
                        name.clone(),
                        NetInfo {
                            signal,
                            width: *width,
                        },
                    );
                }
            }
        }
    }

    // Generated child processes to instantiate: (unit, inputs, outputs).
    let mut children: Vec<(UnitData, Vec<String>, Vec<String>)> = vec![];
    let mut counter = 0usize;

    {
        let mut builder = UnitBuilder::new(&mut entity);
        for item in &decl.items {
            match item {
                Item::Declaration { .. } => {}
                Item::Assign { target, value } => {
                    // Continuous assignments become data flow in the entity.
                    let target_info = nets
                        .get(target)
                        .ok_or_else(|| err(format!("assignment to undeclared net '{}'", target)))?;
                    let mut reads = vec![];
                    value.reads(&mut reads);
                    let mut env = HashMap::new();
                    for name in &reads {
                        let info = nets
                            .get(name)
                            .ok_or_else(|| err(format!("use of undeclared net '{}'", name)))?;
                        let probed = builder.prb(info.signal);
                        env.insert(name.clone(), (probed, info.width));
                    }
                    let result = gen_expr(&mut builder, &env, value, target_info.width)?;
                    let delay = builder.const_time(TimeValue::ZERO);
                    builder.drv(target_info.signal, result, delay);
                }
                Item::AlwaysFf { clock, body } => {
                    counter += 1;
                    let unit_name = format!("{}_ff_{}", decl.name, counter);
                    let (unit, ins, outs) = gen_always_ff(&unit_name, clock, body, &nets)?;
                    children.push((unit, ins, outs));
                }
                Item::AlwaysComb { body } => {
                    counter += 1;
                    let unit_name = format!("{}_comb_{}", decl.name, counter);
                    let (unit, ins, outs) = gen_always_comb(&unit_name, body, &nets)?;
                    children.push((unit, ins, outs));
                }
                Item::Initial { body } => {
                    counter += 1;
                    let unit_name = format!("{}_initial_{}", decl.name, counter);
                    let (unit, ins, outs) = gen_initial(&unit_name, body, &nets)?;
                    children.push((unit, ins, outs));
                }
                Item::Instance {
                    module: target,
                    name: _,
                    connections,
                } => {
                    let ports = ports_of
                        .get(target)
                        .ok_or_else(|| err(format!("instantiation of unknown module '{}'", target)))?;
                    // Resolve connections to nets per port.
                    let mut by_port: HashMap<&str, &Expr> = HashMap::new();
                    for (i, (port_name, expr)) in connections.iter().enumerate() {
                        match port_name {
                            Some(name) => {
                                by_port.insert(name.as_str(), expr);
                            }
                            None => {
                                let port = ports.get(i).ok_or_else(|| {
                                    err(format!("too many connections for '{}'", target))
                                })?;
                                by_port.insert(port.name.as_str(), expr);
                            }
                        }
                    }
                    let mut in_sigs = vec![];
                    let mut out_sigs = vec![];
                    let mut in_tys = vec![];
                    let mut out_tys = vec![];
                    for port in ports {
                        let expr = by_port.get(port.name.as_str()).ok_or_else(|| {
                            err(format!(
                                "missing connection for port '{}' of '{}'",
                                port.name, target
                            ))
                        })?;
                        let net_name = match expr {
                            Expr::Ident(name) => name,
                            _ => {
                                return Err(err(
                                    "instance connections must be plain identifiers".to_string(),
                                ))
                            }
                        };
                        let info = nets.get(net_name).ok_or_else(|| {
                            err(format!("use of undeclared net '{}'", net_name))
                        })?;
                        match port.direction {
                            Direction::Input => {
                                in_sigs.push(info.signal);
                                in_tys.push(signal_ty(int_ty(port.width)));
                            }
                            Direction::Output => {
                                out_sigs.push(info.signal);
                                out_tys.push(signal_ty(int_ty(port.width)));
                            }
                        }
                    }
                    let ext = builder.ext_unit(
                        UnitName::global(target),
                        Signature::new_entity(in_tys, out_tys),
                    );
                    builder.inst(ext, in_sigs, out_sigs);
                }
            }
        }

        // Instantiate the generated processes.
        for (unit, ins, outs) in &children {
            let in_sigs: Vec<Value> = ins.iter().map(|n| nets[n].signal).collect();
            let out_sigs: Vec<Value> = outs.iter().map(|n| nets[n].signal).collect();
            let ext = builder.ext_unit(unit.name().clone(), unit.sig().clone());
            builder.inst(ext, in_sigs, out_sigs);
        }
    }

    for (unit, _, _) in children {
        module.add_unit(unit);
    }
    module.add_unit(entity);
    Ok(())
}

type ProcSpec = (UnitData, Vec<String>, Vec<String>);

/// Determine the read (minus written) and written net lists of a statement
/// body, keeping only names that refer to declared nets.
fn io_sets(body: &[Stmt], extra_reads: &[&str], nets: &HashMap<String, NetInfo>) -> (Vec<String>, Vec<String>) {
    let mut reads = vec![];
    stmts_read(body, &mut reads);
    for name in extra_reads {
        if !reads.contains(&name.to_string()) {
            reads.insert(0, name.to_string());
        }
    }
    let mut writes = vec![];
    stmts_written(body, &mut writes);
    let reads = reads
        .into_iter()
        .filter(|n| nets.contains_key(n) && !writes.contains(n))
        .collect();
    let writes = writes.into_iter().filter(|n| nets.contains_key(n)).collect();
    (reads, writes)
}

fn proc_signature(
    reads: &[String],
    writes: &[String],
    nets: &HashMap<String, NetInfo>,
) -> Signature {
    Signature::new_entity(
        reads.iter().map(|n| signal_ty(int_ty(nets[n].width))).collect(),
        writes.iter().map(|n| signal_ty(int_ty(nets[n].width))).collect(),
    )
}

/// Set up a process unit and the mapping from net names to its argument
/// values.
fn new_process(
    name: &str,
    reads: &[String],
    writes: &[String],
    nets: &HashMap<String, NetInfo>,
) -> (UnitData, HashMap<String, (Value, usize)>) {
    let sig = proc_signature(reads, writes, nets);
    let mut unit = UnitData::new(UnitKind::Process, UnitName::global(name), sig);
    let mut args = HashMap::new();
    for (i, net) in reads.iter().chain(writes.iter()).enumerate() {
        let value = unit.arg_value(i);
        unit.set_value_name(value, net.clone());
        args.insert(net.clone(), (value, nets[net].width));
    }
    (unit, args)
}

/// Generate the process for an `always_ff @(posedge clk)` block.
fn gen_always_ff(
    name: &str,
    clock: &str,
    body: &[Stmt],
    nets: &HashMap<String, NetInfo>,
) -> Result<ProcSpec, CompileError> {
    let (reads, writes) = io_sets(body, &[clock], nets);
    let (mut unit, args) = new_process(name, &reads, &writes, nets);
    {
        let mut b = UnitBuilder::new(&mut unit);
        let init = b.block("init");
        let check = b.block("check");
        let clk_sig = args[clock].0;
        b.append_to(init);
        let clk0 = b.prb(clk_sig);
        b.wait(check, vec![clk_sig]);
        b.append_to(check);
        let clk1 = b.prb(clk_sig);
        let chg = b.neq(clk0, clk1);
        let posedge = b.and(chg, clk1);
        // Probe every read signal once after the clock edge check.
        let mut env = HashMap::new();
        for net in reads.iter().chain(writes.iter()) {
            let (signal, width) = args[net];
            let probed = b.prb(signal);
            env.insert(net.clone(), (probed, width));
        }
        gen_conditional_drives(&mut b, &args, &env, body, Some(posedge))?;
        b.br(init);
    }
    Ok((unit, reads, writes))
}

/// Generate the process for an `always_comb` block.
fn gen_always_comb(
    name: &str,
    body: &[Stmt],
    nets: &HashMap<String, NetInfo>,
) -> Result<ProcSpec, CompileError> {
    let (reads, writes) = io_sets(body, &[], nets);
    let (mut unit, args) = new_process(name, &reads, &writes, nets);
    {
        let mut b = UnitBuilder::new(&mut unit);
        let entry = b.block("entry");
        b.append_to(entry);
        let mut env = HashMap::new();
        for net in reads.iter().chain(writes.iter()) {
            let (signal, width) = args[net];
            let probed = b.prb(signal);
            env.insert(net.clone(), (probed, width));
        }
        // Blocking semantics: fold the statements into final values per
        // written net, then drive them.
        let mut values: HashMap<String, Value> = writes
            .iter()
            .map(|n| (n.clone(), env[n].0))
            .collect();
        let mut max_delay = 0u128;
        fold_blocking(&mut b, &env, body, &mut values, &mut max_delay)?;
        let delay = b.const_time(TimeValue::from_femtos(max_delay));
        for net in &writes {
            let (signal, _) = args[net];
            b.drv(signal, values[net], delay);
        }
        let observed: Vec<Value> = reads.iter().map(|n| args[n].0).collect();
        b.wait(entry, observed);
    }
    Ok((unit, reads, writes))
}

/// Generate the process for an `initial` block (testbench stimulus).
fn gen_initial(
    name: &str,
    body: &[Stmt],
    nets: &HashMap<String, NetInfo>,
) -> Result<ProcSpec, CompileError> {
    let (reads, writes) = io_sets(body, &[], nets);
    let (mut unit, args) = new_process(name, &reads, &writes, nets);
    {
        let mut b = UnitBuilder::new(&mut unit);
        let entry = b.block("entry");
        b.append_to(entry);
        // Unroll repeat loops, splitting blocks at every delay.
        let flattened = flatten_initial(body);
        for stmt in &flattened {
            match stmt {
                Stmt::Delay { delay_fs } => {
                    if *delay_fs == 0 {
                        continue;
                    }
                    let next = b.anonymous_block();
                    let delay = b.const_time(TimeValue::from_femtos(*delay_fs));
                    b.wait_time(next, delay, vec![]);
                    b.append_to(next);
                }
                Stmt::Assign {
                    target,
                    value,
                    delay_fs,
                    ..
                } => {
                    let (signal, width) = *args
                        .get(target)
                        .ok_or_else(|| err(format!("assignment to undeclared net '{}'", target)))?;
                    let mut env = HashMap::new();
                    let mut read_names = vec![];
                    value.reads(&mut read_names);
                    for net in read_names {
                        if let Some(&(sig, w)) = args.get(&net) {
                            let probed = b.prb(sig);
                            env.insert(net, (probed, w));
                        }
                    }
                    let result = gen_expr(&mut b, &env, value, width)?;
                    let delay = b.const_time(TimeValue::from_femtos(delay_fs.unwrap_or(0)));
                    b.drv(signal, result, delay);
                }
                Stmt::If { .. } => {
                    let mut env = HashMap::new();
                    for net in reads.iter().chain(writes.iter()) {
                        let (signal, width) = args[net];
                        let probed = b.prb(signal);
                        env.insert(net.clone(), (probed, width));
                    }
                    gen_conditional_drives(&mut b, &args, &env, std::slice::from_ref(stmt), None)?;
                }
                Stmt::Repeat { .. } => unreachable!("repeat loops are unrolled"),
            }
        }
        b.halt();
    }
    Ok((unit, reads, writes))
}

/// Unroll `repeat` loops into a flat statement list.
fn flatten_initial(body: &[Stmt]) -> Vec<Stmt> {
    let mut out = vec![];
    for stmt in body {
        match stmt {
            Stmt::Repeat { count, body } => {
                let inner = flatten_initial(body);
                for _ in 0..*count {
                    out.extend(inner.iter().cloned());
                }
            }
            other => out.push(other.clone()),
        }
    }
    out
}

/// Emit conditional drives for non-blocking assignments: each assignment
/// becomes a `drv ... if cond` where `cond` is the conjunction of the edge
/// condition and the enclosing `if` conditions.
fn gen_conditional_drives(
    b: &mut UnitBuilder,
    args: &HashMap<String, (Value, usize)>,
    env: &HashMap<String, (Value, usize)>,
    body: &[Stmt],
    condition: Option<Value>,
) -> Result<(), CompileError> {
    for stmt in body {
        match stmt {
            Stmt::Assign {
                target,
                value,
                delay_fs,
                ..
            } => {
                let (signal, width) = *args
                    .get(target)
                    .ok_or_else(|| err(format!("assignment to undeclared net '{}'", target)))?;
                let result = gen_expr(b, env, value, width)?;
                let delay = b.const_time(TimeValue::from_femtos(delay_fs.unwrap_or(0)));
                match condition {
                    Some(cond) => {
                        b.drv_cond(signal, result, delay, cond);
                    }
                    None => {
                        b.drv(signal, result, delay);
                    }
                }
            }
            Stmt::If {
                condition: if_cond,
                then_body,
                else_body,
            } => {
                let cond_value = gen_expr_bool(b, env, if_cond)?;
                let then_cond = match condition {
                    Some(outer) => b.and(outer, cond_value),
                    None => cond_value,
                };
                gen_conditional_drives(b, args, env, then_body, Some(then_cond))?;
                if !else_body.is_empty() {
                    let not_cond = b.not(cond_value);
                    let else_cond = match condition {
                        Some(outer) => b.and(outer, not_cond),
                        None => not_cond,
                    };
                    gen_conditional_drives(b, args, env, else_body, Some(else_cond))?;
                }
            }
            Stmt::Delay { .. } => {}
            Stmt::Repeat { .. } => {
                return Err(err("repeat loops are only supported in initial blocks"))
            }
        }
    }
    Ok(())
}

/// Fold blocking assignments into per-net values (combinational semantics).
fn fold_blocking(
    b: &mut UnitBuilder,
    env: &HashMap<String, (Value, usize)>,
    body: &[Stmt],
    values: &mut HashMap<String, Value>,
    max_delay: &mut u128,
) -> Result<(), CompileError> {
    for stmt in body {
        match stmt {
            Stmt::Assign {
                target,
                value,
                delay_fs,
                ..
            } => {
                if let Some(d) = delay_fs {
                    *max_delay = (*max_delay).max(*d);
                }
                // Reads of already-assigned nets see the folded value.
                let mut local_env = env.clone();
                for (name, &v) in values.iter() {
                    if let Some(entry) = local_env.get_mut(name) {
                        entry.0 = v;
                    }
                }
                let width = env
                    .get(target)
                    .map(|e| e.1)
                    .ok_or_else(|| err(format!("assignment to undeclared net '{}'", target)))?;
                let result = gen_expr(b, &local_env, value, width)?;
                values.insert(target.clone(), result);
            }
            Stmt::If {
                condition,
                then_body,
                else_body,
            } => {
                let cond = {
                    let mut local_env = env.clone();
                    for (name, &v) in values.iter() {
                        if let Some(entry) = local_env.get_mut(name) {
                            entry.0 = v;
                        }
                    }
                    gen_expr_bool(b, &local_env, condition)?
                };
                let mut then_values = values.clone();
                let mut else_values = values.clone();
                fold_blocking(b, env, then_body, &mut then_values, max_delay)?;
                fold_blocking(b, env, else_body, &mut else_values, max_delay)?;
                // Merge with a mux per net that differs.
                for (name, then_value) in &then_values {
                    let else_value = else_values[name];
                    if *then_value != else_value {
                        let choices = b.array(vec![else_value, *then_value]);
                        let merged = b.mux(choices, cond);
                        values.insert(name.clone(), merged);
                    }
                }
            }
            Stmt::Delay { .. } => {}
            Stmt::Repeat { .. } => {
                return Err(err("repeat loops are only supported in initial blocks"))
            }
        }
    }
    Ok(())
}

/// Generate an expression, adapted to `target_width` bits.
fn gen_expr(
    b: &mut UnitBuilder,
    env: &HashMap<String, (Value, usize)>,
    expr: &Expr,
    target_width: usize,
) -> Result<Value, CompileError> {
    let value = gen_expr_raw(b, env, expr, target_width)?;
    Ok(adapt_width(b, value, target_width))
}

/// Generate an expression as a single-bit condition.
fn gen_expr_bool(
    b: &mut UnitBuilder,
    env: &HashMap<String, (Value, usize)>,
    expr: &Expr,
) -> Result<Value, CompileError> {
    let value = gen_expr_raw(b, env, expr, 1)?;
    let width = b.unit().value_type(value).unwrap_int();
    if width == 1 {
        return Ok(value);
    }
    let zero = b.const_int(width, 0);
    Ok(b.neq(value, zero))
}

fn adapt_width(b: &mut UnitBuilder, value: Value, target_width: usize) -> Value {
    let width = b.unit().value_type(value).unwrap_int();
    if width == target_width {
        value
    } else if width < target_width {
        b.zext(value, target_width)
    } else {
        b.trunc(value, target_width)
    }
}

fn gen_expr_raw(
    b: &mut UnitBuilder,
    env: &HashMap<String, (Value, usize)>,
    expr: &Expr,
    hint_width: usize,
) -> Result<Value, CompileError> {
    Ok(match expr {
        Expr::Ident(name) => {
            env.get(name)
                .ok_or_else(|| err(format!("use of undeclared net '{}'", name)))?
                .0
        }
        Expr::Literal { value, width } => {
            let w = width.unwrap_or_else(|| hint_width.max(32).max(64 - value.leading_zeros() as usize));
            b.const_int(w.max(1), *value)
        }
        Expr::Unary(op, operand) => {
            let value = gen_expr_raw(b, env, operand, hint_width)?;
            match op {
                UnaryOp::Not => b.not(value),
                UnaryOp::Neg => b.neg(value),
                UnaryOp::LogicNot => {
                    let width = b.unit().value_type(value).unwrap_int();
                    let zero = b.const_int(width, 0);
                    b.eq(value, zero)
                }
            }
        }
        Expr::Binary(op, lhs, rhs) => {
            let mut a = gen_expr_raw(b, env, lhs, hint_width)?;
            let mut c = gen_expr_raw(b, env, rhs, hint_width)?;
            // Promote both operands to a common width.
            let wa = b.unit().value_type(a).unwrap_int();
            let wc = b.unit().value_type(c).unwrap_int();
            let width = wa.max(wc);
            a = adapt_width(b, a, width);
            c = adapt_width(b, c, width);
            match op {
                BinaryOp::Add => b.add(a, c),
                BinaryOp::Sub => b.sub(a, c),
                BinaryOp::Mul => b.umul(a, c),
                BinaryOp::Div => b.udiv(a, c),
                BinaryOp::Mod => b.urem(a, c),
                BinaryOp::And => b.and(a, c),
                BinaryOp::Or => b.or(a, c),
                BinaryOp::Xor => b.xor(a, c),
                BinaryOp::Eq => b.eq(a, c),
                BinaryOp::Neq => b.neq(a, c),
                BinaryOp::Lt => b.ult(a, c),
                BinaryOp::Le => b.ule(a, c),
                BinaryOp::Gt => b.ugt(a, c),
                BinaryOp::Ge => b.uge(a, c),
                BinaryOp::Shl => b.shl(a, c),
                BinaryOp::Shr => b.shr(a, c),
                BinaryOp::LogicAnd | BinaryOp::LogicOr => {
                    let zero = b.const_int(width, 0);
                    let a_bool = b.neq(a, zero);
                    let zero2 = b.const_int(width, 0);
                    let c_bool = b.neq(c, zero2);
                    if *op == BinaryOp::LogicAnd {
                        b.and(a_bool, c_bool)
                    } else {
                        b.or(a_bool, c_bool)
                    }
                }
            }
        }
        Expr::Conditional(cond, then_value, else_value) => {
            let cond = gen_expr_bool(b, env, cond)?;
            let mut t = gen_expr_raw(b, env, then_value, hint_width)?;
            let mut e = gen_expr_raw(b, env, else_value, hint_width)?;
            let wt = b.unit().value_type(t).unwrap_int();
            let we = b.unit().value_type(e).unwrap_int();
            let width = wt.max(we);
            t = adapt_width(b, t, width);
            e = adapt_width(b, e, width);
            let choices = b.array(vec![e, t]);
            b.mux(choices, cond)
        }
        Expr::BitSelect(operand, index) => {
            let value = gen_expr_raw(b, env, operand, hint_width)?;
            b.ext_slice(value, *index, 1)
        }
    })
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use llhd::verifier::verify_module;
    use llhd_sim::{SimConfig, SimSession};

    /// Figure 3 of the paper: the accumulator plus its testbench, reduced to
    /// a handful of iterations.
    const ACC_SV: &str = r#"
        module acc (input clk, input [31:0] x, input en, output [31:0] q);
          logic [31:0] d;
          always_ff @(posedge clk) q <= d;
          always_comb begin
            d = q;
            if (en) d = q + x;
          end
        endmodule

        module acc_tb (output clk, output en, output [31:0] x, output [31:0] q);
          acc i_dut (.clk(clk), .x(x), .en(en), .q(q));
          initial begin
            en <= #2ns 1;
            x <= #2ns 1;
            repeat (8) begin
              clk <= #1ns 1;
              clk <= #2ns 0;
              #2ns;
            end
          end
        endmodule
    "#;

    #[test]
    fn compiles_and_verifies_the_accumulator() {
        let module = compile(ACC_SV).unwrap();
        assert!(verify_module(&module).is_ok(), "{:?}", verify_module(&module));
        assert!(module.unit_by_ident("acc").is_some());
        assert!(module.unit_by_ident("acc_tb").is_some());
        // One FF process, one comb process, one initial process.
        assert_eq!(
            module.units_of_kind(llhd::ir::UnitKind::Process).len(),
            3
        );
    }

    #[test]
    fn simulated_accumulator_accumulates() {
        let module = compile(ACC_SV).unwrap();
        let result = SimSession::builder(&module, "acc_tb")
            .config(SimConfig::until_nanos(100))
            .build()
            .unwrap()
            .run()
            .unwrap();
        let q_values: Vec<u64> = result
            .trace
            .changes_of("q")
            .filter_map(|e| e.value.to_u64())
            .collect();
        // With x = 1 and en = 1, q counts up by one per clock edge.
        assert!(q_values.len() >= 4, "q changes: {:?}", q_values);
        for window in q_values.windows(2) {
            assert_eq!(window[1], window[0] + 1, "q must accumulate: {:?}", q_values);
        }
    }

    #[test]
    fn continuous_assign_becomes_entity_dataflow() {
        let module = compile(
            r#"
            module xor_gate (input a, input b, output y);
              assign y = a ^ b;
            endmodule
            "#,
        )
        .unwrap();
        assert!(verify_module(&module).is_ok());
        let unit = module.unit(module.unit_by_ident("xor_gate").unwrap());
        assert_eq!(unit.kind(), llhd::ir::UnitKind::Entity);
        assert!(unit
            .all_insts()
            .iter()
            .any(|&i| unit.inst_data(i).opcode == llhd::ir::Opcode::Xor));
    }

    #[test]
    fn unknown_nets_are_reported() {
        let result = compile(
            r#"
            module bad (input a, output y);
              assign y = a & missing;
            endmodule
            "#,
        );
        assert!(result.is_err());
    }
}
