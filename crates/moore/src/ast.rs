//! The abstract syntax tree of the supported SystemVerilog subset.

/// A compiled source file: a list of modules.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SourceFile {
    /// The modules in declaration order.
    pub modules: Vec<ModuleDecl>,
}

/// A `module ... endmodule` declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct ModuleDecl {
    /// The module name.
    pub name: String,
    /// The ANSI port list.
    pub ports: Vec<Port>,
    /// The body items.
    pub items: Vec<Item>,
}

/// The direction of a port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// An input port.
    Input,
    /// An output port.
    Output,
}

/// One port declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct Port {
    /// Input or output.
    pub direction: Direction,
    /// The declared bit width.
    pub width: usize,
    /// The port name.
    pub name: String,
}

/// A module body item.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    /// An internal net or variable declaration.
    Declaration {
        /// The declared bit width.
        width: usize,
        /// The declared names.
        names: Vec<String>,
    },
    /// A continuous assignment `assign lhs = rhs;`.
    Assign {
        /// The assigned net.
        target: String,
        /// The driving expression.
        value: Expr,
    },
    /// An `always_ff @(posedge clk)` block.
    AlwaysFf {
        /// The clock net.
        clock: String,
        /// The body.
        body: Vec<Stmt>,
    },
    /// An `always_comb` (or `always @*`) block.
    AlwaysComb {
        /// The body.
        body: Vec<Stmt>,
    },
    /// An `initial` block.
    Initial {
        /// The body.
        body: Vec<Stmt>,
    },
    /// A module instantiation.
    Instance {
        /// The instantiated module.
        module: String,
        /// The instance name.
        name: String,
        /// Port connections: `(port name if named, expression)`.
        connections: Vec<(Option<String>, Expr)>,
    },
}

/// A procedural statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// A blocking (`=`) or non-blocking (`<=`) assignment, optionally with
    /// an intra-assignment delay in femtoseconds.
    Assign {
        /// The assigned variable.
        target: String,
        /// The driving expression.
        value: Expr,
        /// Whether this is a non-blocking assignment.
        nonblocking: bool,
        /// The `#delay` in femtoseconds, if any.
        delay_fs: Option<u128>,
    },
    /// An `if (cond) ... else ...` statement.
    If {
        /// The condition.
        condition: Expr,
        /// The then-branch.
        then_body: Vec<Stmt>,
        /// The else-branch.
        else_body: Vec<Stmt>,
    },
    /// A `#delay;` wait statement (initial blocks only).
    Delay {
        /// The delay in femtoseconds.
        delay_fs: u128,
    },
    /// A `repeat (n) begin ... end` loop with a constant count.
    Repeat {
        /// The iteration count.
        count: u64,
        /// The body.
        body: Vec<Stmt>,
    },
}

/// A binary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    Xor,
    LogicAnd,
    LogicOr,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Shl,
    Shr,
}

/// A unary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// Bitwise not `~`.
    Not,
    /// Logical not `!`.
    LogicNot,
    /// Arithmetic negation `-`.
    Neg,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A reference to a net, variable, or port.
    Ident(String),
    /// An integer literal with an optional explicit width.
    Literal {
        /// The value.
        value: u64,
        /// The width, if the literal was sized (`8'hff`).
        width: Option<usize>,
    },
    /// A unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// A binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// The conditional operator `cond ? a : b`.
    Conditional(Box<Expr>, Box<Expr>, Box<Expr>),
    /// A constant bit-select `expr[index]`.
    BitSelect(Box<Expr>, usize),
}

impl Expr {
    /// The identifiers read by this expression.
    pub fn reads(&self, out: &mut Vec<String>) {
        match self {
            Expr::Ident(name) => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            Expr::Literal { .. } => {}
            Expr::Unary(_, a) => a.reads(out),
            Expr::Binary(_, a, b) => {
                a.reads(out);
                b.reads(out);
            }
            Expr::Conditional(c, a, b) => {
                c.reads(out);
                a.reads(out);
                b.reads(out);
            }
            Expr::BitSelect(a, _) => a.reads(out),
        }
    }
}

/// The identifiers read by a list of statements.
pub fn stmts_read(stmts: &[Stmt], out: &mut Vec<String>) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { value, .. } => value.reads(out),
            Stmt::If {
                condition,
                then_body,
                else_body,
            } => {
                condition.reads(out);
                stmts_read(then_body, out);
                stmts_read(else_body, out);
            }
            Stmt::Delay { .. } => {}
            Stmt::Repeat { body, .. } => stmts_read(body, out),
        }
    }
}

/// The identifiers written by a list of statements.
pub fn stmts_written(stmts: &[Stmt], out: &mut Vec<String>) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { target, .. } => {
                if !out.contains(target) {
                    out.push(target.clone());
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                stmts_written(then_body, out);
                stmts_written(else_body, out);
            }
            Stmt::Delay { .. } => {}
            Stmt::Repeat { body, .. } => stmts_written(body, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_reads() {
        let expr = Expr::Binary(
            BinaryOp::Add,
            Box::new(Expr::Ident("a".into())),
            Box::new(Expr::Conditional(
                Box::new(Expr::Ident("sel".into())),
                Box::new(Expr::Ident("b".into())),
                Box::new(Expr::Literal {
                    value: 1,
                    width: None,
                }),
            )),
        );
        let mut reads = vec![];
        expr.reads(&mut reads);
        assert_eq!(reads, vec!["a", "sel", "b"]);
    }

    #[test]
    fn statement_reads_and_writes() {
        let stmts = vec![Stmt::If {
            condition: Expr::Ident("en".into()),
            then_body: vec![Stmt::Assign {
                target: "q".into(),
                value: Expr::Ident("d".into()),
                nonblocking: true,
                delay_fs: None,
            }],
            else_body: vec![],
        }];
        let mut reads = vec![];
        stmts_read(&stmts, &mut reads);
        assert_eq!(reads, vec!["en", "d"]);
        let mut writes = vec![];
        stmts_written(&stmts, &mut writes);
        assert_eq!(writes, vec!["q"]);
    }
}
