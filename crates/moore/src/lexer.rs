//! Tokenization of the SystemVerilog subset.

use crate::CompileError;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A system task name such as `$display`.
    System(String),
    /// An integer literal, optionally sized (`8'hff`).
    Literal { value: u64, width: Option<usize> },
    /// An operator or punctuation symbol.
    Symbol(&'static str),
}

/// A token plus its source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// The 1-based source line.
    pub line: usize,
}

const SYMBOLS: &[&str] = &[
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "(", ")", "[", "]", "{", "}", ";", ",", ".",
    ":", "?", "@", "#", "=", "<", ">", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "'",
];

/// Tokenize SystemVerilog source text.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                if bytes[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i += 2;
            continue;
        }
        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let ident: String = bytes[start..i].iter().collect();
            tokens.push(Token {
                tok: Tok::Ident(ident),
                line,
            });
            continue;
        }
        // System tasks.
        if c == '$' {
            let start = i;
            i += 1;
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            tokens.push(Token {
                tok: Tok::System(bytes[start..i].iter().collect()),
                line,
            });
            continue;
        }
        // Numbers, possibly sized literals such as 8'hff or 'b1010.
        if c.is_ascii_digit() || (c == '\'' && i + 1 < bytes.len() && bytes[i + 1].is_alphanumeric())
        {
            let mut width: Option<usize> = None;
            if c.is_ascii_digit() {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '_') {
                    i += 1;
                }
                let digits: String = bytes[start..i].iter().filter(|c| **c != '_').collect();
                let value: u64 = digits.parse().map_err(|_| CompileError {
                    line,
                    message: format!("invalid number '{}'", digits),
                })?;
                if i < bytes.len() && bytes[i] == '\'' {
                    width = Some(value as usize);
                } else {
                    tokens.push(Token {
                        tok: Tok::Literal { value, width: None },
                        line,
                    });
                    continue;
                }
            }
            // Based literal after the tick.
            i += 1; // consume '\''
            if i >= bytes.len() {
                return Err(CompileError {
                    line,
                    message: "unterminated based literal".to_string(),
                });
            }
            let base = bytes[i].to_ascii_lowercase();
            i += 1;
            let radix = match base {
                'b' => 2,
                'o' => 8,
                'd' => 10,
                'h' => 16,
                other => {
                    return Err(CompileError {
                        line,
                        message: format!("unknown literal base '{}'", other),
                    })
                }
            };
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let digits: String = bytes[start..i].iter().filter(|c| **c != '_').collect();
            let value = u64::from_str_radix(&digits, radix).map_err(|_| CompileError {
                line,
                message: format!("invalid literal digits '{}'", digits),
            })?;
            tokens.push(Token {
                tok: Tok::Literal { value, width },
                line,
            });
            continue;
        }
        // Operators and punctuation (longest match first).
        let mut matched = false;
        for symbol in SYMBOLS {
            let chars: Vec<char> = symbol.chars().collect();
            if bytes[i..].starts_with(&chars) {
                tokens.push(Token {
                    tok: Tok::Symbol(symbol),
                    line,
                });
                i += chars.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(CompileError {
                line,
                message: format!("unexpected character '{}'", c),
            });
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_module_header() {
        let tokens = lex("module acc (input clk, output [31:0] q);").unwrap();
        assert!(matches!(&tokens[0].tok, Tok::Ident(k) if k == "module"));
        assert!(tokens.iter().any(|t| t.tok == Tok::Symbol("[")));
        assert!(tokens
            .iter()
            .any(|t| matches!(t.tok, Tok::Literal { value: 31, .. })));
    }

    #[test]
    fn lexes_sized_literals() {
        let tokens = lex("8'hff 'b1010 42 4'd9").unwrap();
        assert_eq!(
            tokens[0].tok,
            Tok::Literal {
                value: 255,
                width: Some(8)
            }
        );
        assert_eq!(
            tokens[1].tok,
            Tok::Literal {
                value: 10,
                width: None
            }
        );
        assert_eq!(
            tokens[2].tok,
            Tok::Literal {
                value: 42,
                width: None
            }
        );
        assert_eq!(
            tokens[3].tok,
            Tok::Literal {
                value: 9,
                width: Some(4)
            }
        );
    }

    #[test]
    fn lexes_operators_and_comments() {
        let tokens = lex("a <= b + 1; // comment\n/* block */ c == d").unwrap();
        assert!(tokens.iter().any(|t| t.tok == Tok::Symbol("<=")));
        assert!(tokens.iter().any(|t| t.tok == Tok::Symbol("==")));
        assert!(!tokens.iter().any(|t| t.tok == Tok::Symbol("/")));
    }

    #[test]
    fn reports_bad_characters() {
        assert!(lex("module `bad").is_err());
    }
}
