//! Parsing of the SystemVerilog subset into the AST.

use crate::ast::*;
use crate::lexer::{lex, Tok, Token};
use crate::CompileError;

/// Parse SystemVerilog source text into a [`SourceFile`].
///
/// # Errors
///
/// Returns a [`CompileError`] for the first syntax error encountered.
pub fn parse(source: &str) -> Result<SourceFile, CompileError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut file = SourceFile::default();
    while !parser.at_end() {
        file.modules.push(parser.parse_module()?);
    }
    Ok(file)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn error(&self, message: impl Into<String>) -> CompileError {
        CompileError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let tok = self.tokens.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        tok
    }

    fn eat_symbol(&mut self, symbol: &str) -> bool {
        if let Some(Tok::Symbol(s)) = self.peek() {
            if *s == symbol {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_symbol(&mut self, symbol: &str) -> Result<(), CompileError> {
        if self.eat_symbol(symbol) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{}', found {:?}", symbol, self.peek())))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s == keyword {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), CompileError> {
        if self.eat_keyword(keyword) {
            Ok(())
        } else {
            Err(self.error(format!("expected '{}', found {:?}", keyword, self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {:?}", other))),
        }
    }

    fn expect_number(&mut self) -> Result<u64, CompileError> {
        match self.next() {
            Some(Tok::Literal { value, .. }) => Ok(value),
            other => Err(self.error(format!("expected number, found {:?}", other))),
        }
    }

    // ----- modules ----------------------------------------------------------

    fn parse_module(&mut self) -> Result<ModuleDecl, CompileError> {
        self.expect_keyword("module")?;
        let name = self.expect_ident()?;
        let mut ports = vec![];
        if self.eat_symbol("(")
            && !self.eat_symbol(")") {
                let mut direction = Direction::Input;
                loop {
                    if self.eat_keyword("input") {
                        direction = Direction::Input;
                    } else if self.eat_keyword("output") {
                        direction = Direction::Output;
                    }
                    // Optional net type keyword.
                    for ty in ["logic", "bit", "wire", "reg"] {
                        if self.eat_keyword(ty) {
                            break;
                        }
                    }
                    let width = self.parse_optional_range()?;
                    let port_name = self.expect_ident()?;
                    ports.push(Port {
                        direction,
                        width,
                        name: port_name,
                    });
                    if self.eat_symbol(")") {
                        break;
                    }
                    self.expect_symbol(",")?;
                }
            }
        self.expect_symbol(";")?;
        let mut items = vec![];
        while !self.eat_keyword("endmodule") {
            if self.at_end() {
                return Err(self.error("missing 'endmodule'"));
            }
            items.push(self.parse_item()?);
        }
        Ok(ModuleDecl { name, ports, items })
    }

    fn parse_optional_range(&mut self) -> Result<usize, CompileError> {
        if self.eat_symbol("[") {
            let msb = self.expect_number()? as usize;
            self.expect_symbol(":")?;
            let lsb = self.expect_number()? as usize;
            self.expect_symbol("]")?;
            Ok(msb - lsb + 1)
        } else {
            Ok(1)
        }
    }

    // ----- items ------------------------------------------------------------

    fn parse_item(&mut self) -> Result<Item, CompileError> {
        // Net and variable declarations.
        for ty in ["logic", "bit", "wire", "reg"] {
            if self.eat_keyword(ty) {
                let width = self.parse_optional_range()?;
                let mut names = vec![self.expect_ident()?];
                while self.eat_symbol(",") {
                    names.push(self.expect_ident()?);
                }
                self.expect_symbol(";")?;
                return Ok(Item::Declaration { width, names });
            }
        }
        if self.eat_keyword("assign") {
            let target = self.expect_ident()?;
            self.expect_symbol("=")?;
            let value = self.parse_expr()?;
            self.expect_symbol(";")?;
            return Ok(Item::Assign { target, value });
        }
        if self.eat_keyword("always_ff") || self.eat_keyword("always") {
            // `always_ff @(posedge clk)` or `always @(posedge clk)` or
            // `always @*` / `always @(*)`.
            self.expect_symbol("@")?;
            if self.eat_symbol("*") {
                let body = self.parse_stmt_block()?;
                return Ok(Item::AlwaysComb { body });
            }
            self.expect_symbol("(")?;
            if self.eat_symbol("*") {
                self.expect_symbol(")")?;
                let body = self.parse_stmt_block()?;
                return Ok(Item::AlwaysComb { body });
            }
            self.expect_keyword("posedge")?;
            let clock = self.expect_ident()?;
            self.expect_symbol(")")?;
            let body = self.parse_stmt_block()?;
            return Ok(Item::AlwaysFf { clock, body });
        }
        if self.eat_keyword("always_comb") || self.eat_keyword("always_latch") {
            let body = self.parse_stmt_block()?;
            return Ok(Item::AlwaysComb { body });
        }
        if self.eat_keyword("initial") {
            let body = self.parse_stmt_block()?;
            return Ok(Item::Initial { body });
        }
        // Module instantiation: `module_name instance_name ( ... );`
        let module = self.expect_ident()?;
        let name = self.expect_ident()?;
        self.expect_symbol("(")?;
        let mut connections = vec![];
        if !self.eat_symbol(")") {
            loop {
                if self.eat_symbol(".") {
                    let port = self.expect_ident()?;
                    self.expect_symbol("(")?;
                    let expr = self.parse_expr()?;
                    self.expect_symbol(")")?;
                    connections.push((Some(port), expr));
                } else {
                    connections.push((None, self.parse_expr()?));
                }
                if self.eat_symbol(")") {
                    break;
                }
                self.expect_symbol(",")?;
            }
        }
        self.expect_symbol(";")?;
        Ok(Item::Instance {
            module,
            name,
            connections,
        })
    }

    // ----- statements --------------------------------------------------------

    fn parse_stmt_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        if self.eat_keyword("begin") {
            let mut stmts = vec![];
            while !self.eat_keyword("end") {
                if self.at_end() {
                    return Err(self.error("missing 'end'"));
                }
                stmts.push(self.parse_stmt()?);
            }
            Ok(stmts)
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CompileError> {
        if self.eat_keyword("if") {
            self.expect_symbol("(")?;
            let condition = self.parse_expr()?;
            self.expect_symbol(")")?;
            let then_body = self.parse_stmt_block()?;
            let else_body = if self.eat_keyword("else") {
                self.parse_stmt_block()?
            } else {
                vec![]
            };
            return Ok(Stmt::If {
                condition,
                then_body,
                else_body,
            });
        }
        if self.eat_keyword("repeat") {
            self.expect_symbol("(")?;
            let count = self.expect_number()?;
            self.expect_symbol(")")?;
            let body = self.parse_stmt_block()?;
            return Ok(Stmt::Repeat { count, body });
        }
        if self.eat_symbol("#") {
            let delay_fs = self.parse_delay()?;
            self.expect_symbol(";")?;
            return Ok(Stmt::Delay { delay_fs });
        }
        if let Some(Tok::System(_)) = self.peek() {
            // System tasks such as $display or $finish are skipped.
            self.next();
            if self.eat_symbol("(") {
                let mut depth = 1;
                while depth > 0 {
                    match self.next() {
                        Some(Tok::Symbol("(")) => depth += 1,
                        Some(Tok::Symbol(")")) => depth -= 1,
                        None => return Err(self.error("unterminated system task call")),
                        _ => {}
                    }
                }
            }
            self.expect_symbol(";")?;
            return Ok(Stmt::Delay { delay_fs: 0 });
        }
        // Assignment.
        let target = self.expect_ident()?;
        let nonblocking = if self.eat_symbol("<=") {
            true
        } else {
            self.expect_symbol("=")?;
            false
        };
        let delay_fs = if self.eat_symbol("#") {
            Some(self.parse_delay()?)
        } else {
            None
        };
        let value = self.parse_expr()?;
        self.expect_symbol(";")?;
        Ok(Stmt::Assign {
            target,
            value,
            nonblocking,
            delay_fs,
        })
    }

    /// Parse a delay after `#`: a number with an optional time unit
    /// (default: nanoseconds), returned in femtoseconds.
    fn parse_delay(&mut self) -> Result<u128, CompileError> {
        let value = self.expect_number()? as u128;
        let multiplier = if let Some(Tok::Ident(unit)) = self.peek() {
            let m = match unit.as_str() {
                "fs" => Some(1),
                "ps" => Some(1_000),
                "ns" => Some(1_000_000),
                "us" => Some(1_000_000_000),
                "ms" => Some(1_000_000_000_000),
                "s" => Some(1_000_000_000_000_000),
                _ => None,
            };
            if let Some(m) = m {
                self.pos += 1;
                m
            } else {
                1_000_000
            }
        } else {
            1_000_000
        };
        Ok(value * multiplier)
    }

    // ----- expressions --------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, CompileError> {
        self.parse_conditional()
    }

    fn parse_conditional(&mut self) -> Result<Expr, CompileError> {
        let condition = self.parse_binary(0)?;
        if self.eat_symbol("?") {
            let then_value = self.parse_expr()?;
            self.expect_symbol(":")?;
            let else_value = self.parse_expr()?;
            Ok(Expr::Conditional(
                Box::new(condition),
                Box::new(then_value),
                Box::new(else_value),
            ))
        } else {
            Ok(condition)
        }
    }

    fn binary_op(&self, symbol: &str) -> Option<(BinaryOp, u8)> {
        Some(match symbol {
            "||" => (BinaryOp::LogicOr, 1),
            "&&" => (BinaryOp::LogicAnd, 2),
            "|" => (BinaryOp::Or, 3),
            "^" => (BinaryOp::Xor, 4),
            "&" => (BinaryOp::And, 5),
            "==" => (BinaryOp::Eq, 6),
            "!=" => (BinaryOp::Neq, 6),
            "<" => (BinaryOp::Lt, 7),
            "<=" => (BinaryOp::Le, 7),
            ">" => (BinaryOp::Gt, 7),
            ">=" => (BinaryOp::Ge, 7),
            "<<" => (BinaryOp::Shl, 8),
            ">>" => (BinaryOp::Shr, 8),
            "+" => (BinaryOp::Add, 9),
            "-" => (BinaryOp::Sub, 9),
            "*" => (BinaryOp::Mul, 10),
            "/" => (BinaryOp::Div, 10),
            "%" => (BinaryOp::Mod, 10),
            _ => return None,
        })
    }

    /// The pending binary operator at the cursor, if it binds at least as
    /// tightly as `min_precedence`.
    fn peek_binary_op(&self, min_precedence: u8) -> Option<(BinaryOp, u8)> {
        match self.peek() {
            Some(Tok::Symbol(s)) => match self.binary_op(s) {
                Some(pair) if pair.1 >= min_precedence => Some(pair),
                _ => None,
            },
            _ => None,
        }
    }

    fn parse_binary(&mut self, min_precedence: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, precedence)) = self.peek_binary_op(min_precedence) {
            self.pos += 1;
            let rhs = self.parse_binary(precedence + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, CompileError> {
        if self.eat_symbol("~") {
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(self.parse_unary()?)));
        }
        if self.eat_symbol("!") {
            return Ok(Expr::Unary(UnaryOp::LogicNot, Box::new(self.parse_unary()?)));
        }
        if self.eat_symbol("-") {
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, CompileError> {
        match self.next() {
            Some(Tok::Ident(name)) => {
                let mut expr = Expr::Ident(name);
                if self.eat_symbol("[") {
                    let index = self.expect_number()? as usize;
                    self.expect_symbol("]")?;
                    expr = Expr::BitSelect(Box::new(expr), index);
                }
                Ok(expr)
            }
            Some(Tok::Literal { value, width }) => Ok(Expr::Literal { value, width }),
            Some(Tok::Symbol("(")) => {
                let expr = self.parse_expr()?;
                self.expect_symbol(")")?;
                Ok(expr)
            }
            other => Err(self.error(format!("expected expression, found {:?}", other))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_accumulator_module() {
        let file = parse(
            r#"
            module acc (input clk, input [31:0] x, input en, output [31:0] q);
              logic [31:0] d;
              always_ff @(posedge clk) q <= d;
              always_comb begin
                d = q;
                if (en) d = q + x;
              end
            endmodule
            "#,
        )
        .unwrap();
        assert_eq!(file.modules.len(), 1);
        let module = &file.modules[0];
        assert_eq!(module.name, "acc");
        assert_eq!(module.ports.len(), 4);
        assert_eq!(module.ports[1].width, 32);
        assert_eq!(module.items.len(), 3);
        assert!(matches!(module.items[1], Item::AlwaysFf { .. }));
        assert!(matches!(module.items[2], Item::AlwaysComb { .. }));
    }

    #[test]
    fn parses_instances_and_initial_blocks() {
        let file = parse(
            r#"
            module tb;
              logic clk;
              logic [7:0] q;
              dut u_dut (.clk(clk), .q(q));
              initial begin
                clk = 0;
                #5ns;
                clk = 1;
                repeat (4) begin
                  #5;
                  clk = ~clk;
                end
                $finish;
              end
            endmodule
            "#,
        )
        .unwrap();
        let module = &file.modules[0];
        assert!(module.ports.is_empty());
        let instance = module
            .items
            .iter()
            .find(|i| matches!(i, Item::Instance { .. }))
            .unwrap();
        if let Item::Instance {
            module: m,
            name,
            connections,
        } = instance
        {
            assert_eq!(m, "dut");
            assert_eq!(name, "u_dut");
            assert_eq!(connections.len(), 2);
        }
        let initial = module
            .items
            .iter()
            .find(|i| matches!(i, Item::Initial { .. }))
            .unwrap();
        if let Item::Initial { body } = initial {
            assert!(matches!(body[1], Stmt::Delay { delay_fs: 5_000_000 }));
            assert!(body.iter().any(|s| matches!(s, Stmt::Repeat { count: 4, .. })));
        }
    }

    #[test]
    fn parses_expressions_with_precedence() {
        let file = parse(
            r#"
            module m (input [7:0] a, input [7:0] b, input sel, output [7:0] q);
              assign q = sel ? a + b * 2 : (a | b) & 8'h0f;
            endmodule
            "#,
        )
        .unwrap();
        let item = &file.modules[0].items[0];
        if let Item::Assign { value, .. } = item {
            if let Expr::Conditional(_, then_value, _) = value {
                // a + (b * 2)
                assert!(
                    matches!(**then_value, Expr::Binary(BinaryOp::Add, _, _)),
                    "{:?}",
                    then_value
                );
            } else {
                panic!("expected conditional");
            }
        } else {
            panic!("expected assign");
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("module m (input a);\n  assign q = ;\nendmodule").unwrap_err();
        assert!(err.line >= 2, "line should point at or after the bad assign");
    }
}
