//! # moore — a SystemVerilog-subset compiler frontend for LLHD
//!
//! The paper's Moore compiler maps SystemVerilog and VHDL to Behavioural
//! LLHD (§3). This crate implements the SystemVerilog subset needed for the
//! designs and testbenches of the evaluation:
//!
//! * modules with ANSI port lists (`input`/`output`, `logic`/`bit`/`wire`
//!   with packed ranges),
//! * internal net/variable declarations,
//! * continuous assignments (`assign`),
//! * `always_ff @(posedge clk)` blocks with non-blocking assignments and
//!   `if`/`else`,
//! * `always_comb` blocks with blocking assignments and `if`/`else`,
//! * `initial` blocks with delays (`#5ns`) and assignments (testbenches),
//! * module instantiation with named or positional connections,
//! * the usual expression operators, literals (`8'hff`, `'b1010`, decimal),
//!   and the conditional operator.
//!
//! Mapping follows §3 of the paper: modules become entities, `always` blocks
//! become processes, and the generated IR is deliberately unoptimized
//! (comparable to `-O0`), leaving cleanup to the `llhd-opt` passes.
//!
//! ```
//! let module = moore::compile(r#"
//! module inverter (input logic a, output logic q);
//!   assign q = ~a;
//! endmodule
//! "#).unwrap();
//! assert!(module.unit_by_ident("inverter").is_some());
//! ```

mod ast;
mod codegen;
mod lexer;
mod parser;

pub use ast::*;
pub use codegen::compile_ast;
pub use parser::parse;

use llhd::ir::Module;
use std::fmt;

/// An error produced by the frontend.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompileError {
    /// The 1-based source line.
    pub line: usize,
    /// A description of the problem.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Compile SystemVerilog source text into an LLHD module.
///
/// # Errors
///
/// Returns a [`CompileError`] describing the first syntax or semantic
/// problem.
pub fn compile(source: &str) -> Result<Module, CompileError> {
    let ast = parse(source)?;
    compile_ast(&ast)
}
