//! The routing tier itself: protocol-v1 front end, placement, retries,
//! admission control, sticky sessions, and the fleet stats rollup.
//!
//! # Architecture
//!
//! ```text
//!  clients ──► connection threads ──► RouterState::handle_line
//!                                         │ placement (ring + memo)
//!                                         ▼
//!                       Worker pool (pipelined TCP) ──► llhd-server fleet
//!                                         ▲
//!                         health pings ───┘ (mark-down / mark-up)
//! ```
//!
//! The router is stateless with respect to designs: placement hashes the
//! request's design key (or its inline source), so any router instance
//! with the same worker list routes identically, and losing the router
//! loses nothing but connections. The only soft state is the *placement
//! memo* — design fingerprints learned from responses — which exists
//! because an inline-source submission is placed by source hash, while
//! follow-up requests name the design by its content fingerprint; the
//! memo keeps both spellings of the same design on the same warm cache.

use crate::pool::{Health, Worker};
use crate::ring::{source_key, Ring};
use llhd_server::json::Json;
use llhd_server::protocol::{
    error_response, ok_response, request_id, ErrorKind, ProtoError, Request, SimJobSpec,
};
use llhd_server::wire::LineReader;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a connection thread blocks in `read` before re-checking the
/// shutdown flag.
const READ_TICK: Duration = Duration::from_millis(100);

/// The ceiling on how long the router honors a worker's `retry_after_ms`
/// hint before retrying on the next candidate: the point of the fleet is
/// that *another* worker is free now, so long waits stay with the client.
const RETRY_WAIT_CAP: Duration = Duration::from_millis(250);

/// Timeout on the `stats` fan-out to each worker: one slow worker must
/// not stall the whole rollup.
const STATS_TIMEOUT: Duration = Duration::from_secs(5);

/// Timeout on health-check pings.
const PING_TIMEOUT: Duration = Duration::from_secs(2);

/// Bound on the placement memo; past it the memo is dropped wholesale
/// (placement falls back to the ring — correctness is unaffected, a few
/// keyed requests may re-warm a second cache).
const MEMO_CAP: usize = 65_536;

fn plock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One worker in the router's configuration.
#[derive(Clone, Debug)]
pub struct WorkerSpec {
    /// The router-side worker id (hashed for ring placement; must not
    /// contain `:`, which delimits sticky session ids on the wire).
    pub id: String,
    /// The worker's TCP address.
    pub addr: SocketAddr,
}

/// Router construction options.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// The worker fleet.
    pub workers: Vec<WorkerSpec>,
    /// Admission control: shed requests once this many routed jobs are
    /// in flight through the router. `None`: unbounded.
    pub queue_cap: Option<usize>,
    /// Persistent pipelined connections kept per worker. A worker
    /// serializes each connection's requests, so this bounds per-worker
    /// concurrency from this router.
    pub pool_size: usize,
    /// How often the health thread pings every worker.
    pub ping_interval: Duration,
    /// How long one forwarded request may take end to end.
    pub call_timeout: Duration,
    /// Identity reported in the router's own `ping`/`stats` responses.
    /// `None`: a pid+start-time derived default.
    pub server_id: Option<String>,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            workers: Vec::new(),
            queue_cap: None,
            pool_size: 4,
            ping_interval: Duration::from_secs(1),
            call_timeout: Duration::from_secs(120),
            server_id: None,
        }
    }
}

/// The design-fingerprint → worker memo (see the module docs).
#[derive(Default)]
struct Memo {
    map: HashMap<u128, usize>,
}

impl Memo {
    fn learn(&mut self, key: u128, worker: usize) {
        if self.map.len() >= MEMO_CAP && !self.map.contains_key(&key) {
            self.map.clear();
        }
        self.map.insert(key, worker);
    }
}

/// Shared state of one running router.
pub struct RouterState {
    workers: Vec<Arc<Worker>>,
    ring: Ring,
    memo: Mutex<Memo>,
    started: Instant,
    server_id: String,
    queue_cap: Option<usize>,
    call_timeout: Duration,
    shutdown_flag: AtomicBool,
    /// Where a shutdown must connect to unblock the TCP accept loop.
    wake_addr: Mutex<Option<SocketAddr>>,
    /// Jobs currently being routed (admission control).
    inflight: AtomicUsize,
    /// Jobs forwarded to a worker (batch jobs count individually).
    routed: AtomicUsize,
    /// Requests re-sent to a second candidate after a retryable failure.
    retried: AtomicUsize,
    /// Requests shed by router-level admission control.
    shed: AtomicUsize,
}

/// Decrements the in-flight counter when the routed work completes.
struct InflightGuard<'a> {
    state: &'a RouterState,
    jobs: usize,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.state.inflight.fetch_sub(self.jobs, Ordering::Relaxed);
    }
}

/// Replace (or append) a field of a JSON object in place.
fn set_field(value: &mut Json, key: &str, new: Json) {
    if let Json::Obj(fields) = value {
        for (name, slot) in fields.iter_mut() {
            if name == key {
                *slot = new;
                return;
            }
        }
        fields.push((key.to_string(), new));
    }
}

/// The default router identity: pid plus start time, same convention as
/// the workers' default `server_id`.
fn default_router_id() -> String {
    let epoch_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    format!("router-{:x}-{:x}", std::process::id(), epoch_ms)
}

/// The error a client sees when the whole fleet is unavailable for new
/// placements. Retryable: workers mark back up as pings succeed.
fn no_workers_error() -> ProtoError {
    ProtoError::new(
        ErrorKind::Overloaded,
        "no healthy workers are available for placement; retry later",
    )
    .with_data("retry_after_ms", Json::uint(500))
}

/// The error a client sees when the worker holding its request (or
/// session) became unreachable. Retryable — for placements another
/// worker can take the retry; for sessions the client can
/// `session.restore` a checkpoint, which lands on a healthy worker.
fn worker_unreachable_error(worker: &Worker, detail: &io::Error) -> ProtoError {
    ProtoError::new(
        ErrorKind::Shutdown,
        format!(
            "worker {:?} ({}) is unreachable: {}",
            worker.id, worker.addr, detail
        ),
    )
    .with_data("retry_after_ms", Json::uint(100))
}

impl RouterState {
    fn new(config: &RouterConfig) -> RouterState {
        let workers: Vec<Arc<Worker>> = config
            .workers
            .iter()
            .map(|spec| Arc::new(Worker::new(spec.id.clone(), spec.addr, config.pool_size)))
            .collect();
        let ids: Vec<String> = workers.iter().map(|w| w.id.clone()).collect();
        RouterState {
            ring: Ring::new(&ids),
            workers,
            memo: Mutex::default(),
            started: Instant::now(),
            server_id: config
                .server_id
                .clone()
                .filter(|id| !id.is_empty())
                .unwrap_or_else(default_router_id),
            queue_cap: config.queue_cap.filter(|&cap| cap > 0),
            call_timeout: config.call_timeout,
            shutdown_flag: AtomicBool::new(false),
            wake_addr: Mutex::new(None),
            inflight: AtomicUsize::new(0),
            routed: AtomicUsize::new(0),
            retried: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
        }
    }

    /// The router's identity (`server_id` in its `ping`/`stats`).
    pub fn server_id(&self) -> &str {
        &self.server_id
    }

    /// The worker fleet (exposed for tests).
    pub fn workers(&self) -> &[Arc<Worker>] {
        &self.workers
    }

    /// Whether shutdown has begun.
    pub fn shutting_down(&self) -> bool {
        self.shutdown_flag.load(Ordering::Relaxed)
    }

    /// Begin shutdown: stop the serve and health loops and drop worker
    /// connections. Workers themselves keep running — the router is a
    /// tier in front of them, not their supervisor.
    pub fn begin_shutdown(&self) {
        self.shutdown_flag.store(true, Ordering::Relaxed);
        let addr = *plock(&self.wake_addr);
        if let Some(addr) = addr {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
        }
    }

    /// Admission control over routed jobs, mirroring the worker-side
    /// queue-cap semantics (retryable `overloaded`, hint scaled to the
    /// overshoot).
    fn admit(&self, jobs: usize) -> Result<InflightGuard<'_>, ProtoError> {
        if let Some(cap) = self.queue_cap {
            let depth = self.inflight.load(Ordering::Relaxed);
            if depth + jobs > cap {
                self.shed.fetch_add(1, Ordering::Relaxed);
                let overshoot = (depth + jobs - cap) as u128;
                return Err(ProtoError::new(
                    ErrorKind::Overloaded,
                    format!(
                        "router queue is full ({} in flight, cap {}); retry later",
                        depth, cap
                    ),
                )
                .with_data(
                    "retry_after_ms",
                    Json::uint((10 * overshoot).clamp(10, 1000)),
                ));
            }
        }
        self.inflight.fetch_add(jobs, Ordering::Relaxed);
        Ok(InflightGuard { state: self, jobs })
    }

    /// The placement key of one job: the design's content fingerprint
    /// when the request names one, else the hash of its inline source.
    fn placement_key(spec: &SimJobSpec) -> Result<u128, ProtoError> {
        match &spec.design {
            Some(text) => u128::from_str_radix(text, 16).map_err(|_| {
                ProtoError::new(
                    ErrorKind::Protocol,
                    format!("\"design\" must be a hex key, got {:?}", text),
                )
            }),
            None => Ok(source_key(
                spec.source.as_deref().unwrap_or(""),
                &spec.top,
            )),
        }
    }

    /// Worker indexes to try for `key`, best first: the memoized owner
    /// (when a response taught us one), then ring order — only workers
    /// currently `Up` (down workers are skipped, which *is* the ring
    /// re-placement; draining workers take no new work).
    fn candidates(&self, key: u128) -> Vec<usize> {
        let memo = plock(&self.memo).map.get(&key).copied();
        let mut order = Vec::with_capacity(self.workers.len());
        if let Some(first) = memo {
            if self.workers[first].health() == Health::Up {
                order.push(first);
            }
        }
        for index in self.ring.candidates(key) {
            if !order.contains(&index) && self.workers[index].health() == Health::Up {
                order.push(index);
            }
        }
        order
    }

    /// Learn the design fingerprint a successful response reports, so
    /// later requests keyed by it land on the same warm cache.
    fn learn_design(&self, response: &Json, worker: usize) {
        let Some(text) = response
            .get("result")
            .and_then(|r| r.get("design"))
            .and_then(Json::as_str)
        else {
            return;
        };
        if let Ok(key) = u128::from_str_radix(text, 16) {
            plock(&self.memo).learn(key, worker);
        }
    }

    /// Forward one already-serialized request to the candidate list:
    /// first candidate, then — on a *retryable* failure (worker-reported
    /// `overloaded`/`shutdown`, or a broken transport) — exactly one
    /// retry on the next candidate, honoring `retry_after_ms` up to
    /// [`RETRY_WAIT_CAP`]. Non-retryable errors return immediately.
    fn forward_with_retry(
        &self,
        line: &str,
        id: Option<Json>,
        candidates: &[usize],
    ) -> (Json, usize) {
        debug_assert!(!candidates.is_empty());
        let mut attempt = 0;
        loop {
            let index = candidates[attempt];
            let worker = &self.workers[index];
            self.routed.fetch_add(1, Ordering::Relaxed);
            let may_retry = attempt == 0 && candidates.len() > 1;
            match worker.call(line, self.call_timeout) {
                Ok(response) => {
                    let retryable = llhd_server::retry::is_retryable(&response);
                    if !retryable || !may_retry {
                        return (response, index);
                    }
                    self.retried.fetch_add(1, Ordering::Relaxed);
                    let wait = llhd_server::retry::retry_after(&response)
                        .unwrap_or(Duration::from_millis(10))
                        .min(RETRY_WAIT_CAP);
                    std::thread::sleep(wait);
                }
                Err(e) => {
                    // `Worker::call` has already marked the worker down.
                    if !may_retry {
                        return (
                            error_response(id, &worker_unreachable_error(worker, &e)),
                            index,
                        );
                    }
                    self.retried.fetch_add(1, Ordering::Relaxed);
                }
            }
            attempt += 1;
        }
    }

    /// Route a `sim` (or `session.create`/`session.restore`) line.
    fn route_one(&self, line: &str, id: Option<Json>, spec: &SimJobSpec) -> Json {
        let key = match Self::placement_key(spec) {
            Ok(key) => key,
            Err(e) => return error_response(id, &e),
        };
        let _guard = match self.admit(1) {
            Ok(guard) => guard,
            Err(e) => return error_response(id, &e),
        };
        let candidates = self.candidates(key);
        if candidates.is_empty() {
            return error_response(id, &no_workers_error());
        }
        let (response, index) = self.forward_with_retry(line, id, &candidates);
        self.learn_design(&response, index);
        response
    }

    /// Route a `batch`: split the jobs by placement, forward one
    /// sub-batch per worker concurrently, and merge the per-job results
    /// back in request order. A sub-batch that fails with a retryable
    /// envelope error (or a broken transport) is retried once on the
    /// next candidate of its first job; a final failure becomes per-job
    /// error entries, so one bad worker never fails the whole batch.
    fn route_batch(&self, value: &Json, id: Option<Json>, specs: &[SimJobSpec]) -> Json {
        let jobs = value
            .get("jobs")
            .and_then(Json::as_arr)
            .expect("parser validated the batch shape");
        let _guard = match self.admit(specs.len()) {
            Ok(guard) => guard,
            Err(e) => return error_response(id, &e),
        };
        // Placement per job, grouped by first candidate.
        let mut entries: Vec<Option<Json>> = vec![None; specs.len()];
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut orders: Vec<Vec<usize>> = Vec::with_capacity(specs.len());
        for (position, spec) in specs.iter().enumerate() {
            let order = match Self::placement_key(spec) {
                Ok(key) => self.candidates(key),
                Err(e) => {
                    entries[position] = Some(job_error_entry(&e));
                    orders.push(Vec::new());
                    continue;
                }
            };
            match order.first() {
                Some(&first) => groups.entry(first).or_default().push(position),
                None => entries[position] = Some(job_error_entry(&no_workers_error())),
            }
            orders.push(order);
        }
        let results: Vec<(Vec<usize>, Vec<Json>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .into_iter()
                .map(|(first, positions)| {
                    let orders = &orders[..];
                    scope.spawn(move || {
                        let sub: Vec<Json> =
                            positions.iter().map(|&p| jobs[p].clone()).collect();
                        let entries =
                            self.route_sub_batch(first, &positions, orders, sub);
                        (positions, entries)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("sub-batch thread")).collect()
        });
        for (positions, sub_entries) in results {
            for (position, entry) in positions.into_iter().zip(sub_entries) {
                entries[position] = Some(entry);
            }
        }
        let merged: Vec<Json> = entries
            .into_iter()
            .map(|entry| entry.expect("every job answered"))
            .collect();
        ok_response(id, Json::obj([("results", Json::Arr(merged))]))
    }

    /// One sub-batch against `first`, with one retry on the next
    /// candidate of the sub-batch's first job. Returns one entry per job
    /// in `positions` order.
    fn route_sub_batch(
        &self,
        first: usize,
        positions: &[usize],
        orders: &[Vec<usize>],
        sub_jobs: Vec<Json>,
    ) -> Vec<Json> {
        let line = Json::obj([
            ("type", Json::str("batch")),
            ("jobs", Json::Arr(sub_jobs)),
        ])
        .to_string();
        let retry_to = orders[positions[0]]
            .iter()
            .copied()
            .find(|&w| w != first && self.workers[w].health() == Health::Up);
        let mut candidates = vec![first];
        candidates.extend(retry_to);
        self.routed
            .fetch_add(positions.len().saturating_sub(1), Ordering::Relaxed);
        let (response, index) = self.forward_with_retry(&line, None, &candidates);
        if response.get("ok") == Some(&Json::Bool(true)) {
            if let Some(results) = response
                .get("result")
                .and_then(|r| r.get("results"))
                .and_then(Json::as_arr)
            {
                if results.len() == positions.len() {
                    for entry in results {
                        self.learn_design(entry, index);
                    }
                    return results.to_vec();
                }
            }
            // A malformed worker response: answer every job honestly.
            let error = ProtoError::new(
                ErrorKind::Internal,
                format!(
                    "worker {:?} returned a malformed batch response",
                    self.workers[index].id
                ),
            );
            return positions.iter().map(|_| job_error_entry(&error)).collect();
        }
        // Envelope failure after the retry: spread it over the jobs.
        let error = envelope_error(&response);
        positions.iter().map(|_| job_error_entry(&error)).collect()
    }

    /// Route a sticky `session.*` command to the worker encoded in its
    /// session id (`<worker>:<id>`). The inner id is restored before
    /// forwarding; never re-routed — session state lives on that worker.
    fn route_session_cmd(&self, mut value: Json, id: Option<Json>, session: &str) -> Json {
        let Some((worker_id, inner)) = session.split_once(':') else {
            return error_response(
                id,
                &ProtoError::new(
                    ErrorKind::UnknownSession,
                    format!(
                        "session {:?} does not name a worker (router session ids look like \"w0:s1\")",
                        session
                    ),
                ),
            );
        };
        let Some(worker) = self.workers.iter().find(|w| w.id == worker_id) else {
            return error_response(
                id,
                &ProtoError::new(
                    ErrorKind::UnknownSession,
                    format!("session {:?} names unknown worker {:?}", session, worker_id),
                ),
            );
        };
        set_field(&mut value, "session", Json::str(inner));
        self.routed.fetch_add(1, Ordering::Relaxed);
        match worker.call(&value.to_string(), self.call_timeout) {
            Ok(response) => response,
            Err(e) => error_response(id, &worker_unreachable_error(worker, &e)),
        }
    }

    /// Route `session.create`/`session.restore`: place like a sim (the
    /// session pins wherever it lands), then prefix the returned session
    /// id with the worker id so every later command finds its way back.
    /// `session.restore` placed on a *different* worker than the
    /// checkpoint's origin is exactly how sessions migrate across the
    /// fleet.
    fn route_session_open(&self, line: &str, id: Option<Json>, spec: &SimJobSpec) -> Json {
        let key = match Self::placement_key(spec) {
            Ok(key) => key,
            Err(e) => return error_response(id, &e),
        };
        let _guard = match self.admit(1) {
            Ok(guard) => guard,
            Err(e) => return error_response(id, &e),
        };
        let candidates = self.candidates(key);
        if candidates.is_empty() {
            return error_response(id, &no_workers_error());
        }
        let (mut response, index) = self.forward_with_retry(line, id, &candidates);
        self.learn_design(&response, index);
        let prefixed = response
            .get("result")
            .and_then(|r| r.get("session"))
            .and_then(Json::as_str)
            .map(|sid| format!("{}:{}", self.workers[index].id, sid));
        if let Some(full) = prefixed {
            if let Json::Obj(fields) = &mut response {
                for (name, slot) in fields.iter_mut() {
                    if name == "result" {
                        set_field(slot, "session", Json::str(full));
                        break;
                    }
                }
            }
        }
        response
    }

    /// The router's own `ping` payload.
    fn ping_payload(&self) -> Json {
        let up = self
            .workers
            .iter()
            .filter(|w| w.health() == Health::Up)
            .count();
        Json::obj([
            ("pong", Json::Bool(true)),
            ("server_id", Json::str(self.server_id.clone())),
            ("uptime_ms", Json::uint(self.started.elapsed().as_millis())),
            ("role", Json::str("router")),
            ("workers", Json::uint(self.workers.len() as u128)),
            ("workers_up", Json::uint(up as u128)),
        ])
    }

    /// The fleet rollup: the router's own counters plus, for each
    /// worker, its health and (when reachable) its verbatim `stats`
    /// payload, attributed by the worker's self-reported `server_id`.
    fn stats_payload(&self) -> Json {
        let per_worker: Vec<Json> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter()
                .map(|worker| {
                    scope.spawn(move || {
                        let mut fields = vec![
                            ("id".to_string(), Json::str(worker.id.clone())),
                            ("addr".to_string(), Json::str(worker.addr.to_string())),
                        ];
                        let mut payload = None;
                        if worker.health() != Health::Down {
                            match worker.call("{\"type\":\"stats\"}", STATS_TIMEOUT) {
                                Ok(response)
                                    if response.get("ok") == Some(&Json::Bool(true)) =>
                                {
                                    let result = response.get("result").cloned();
                                    if let Some(sid) = result
                                        .as_ref()
                                        .and_then(|r| r.get("server_id"))
                                        .and_then(Json::as_str)
                                    {
                                        worker.note_server_id(sid);
                                    }
                                    payload = result;
                                }
                                Ok(_) => {}
                                Err(_) => {
                                    // `Worker::call` marked it down already.
                                }
                            }
                        }
                        fields.push((
                            "state".to_string(),
                            Json::str(worker.health().wire_name()),
                        ));
                        if let Some(sid) = worker.server_id() {
                            fields.push(("server_id".to_string(), Json::str(sid)));
                        }
                        fields.push((
                            "markdowns".to_string(),
                            Json::uint(worker.markdowns.load(Ordering::Relaxed) as u128),
                        ));
                        if let Some(stats) = payload {
                            fields.push(("stats".to_string(), stats));
                        }
                        Json::Obj(fields)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stats thread"))
                .collect()
        });
        let up = per_worker
            .iter()
            .filter(|w| w.get("state").and_then(Json::as_str) == Some("up"))
            .count();
        let markdowns: usize = self
            .workers
            .iter()
            .map(|w| w.markdowns.load(Ordering::Relaxed))
            .sum();
        Json::obj([
            (
                "router",
                Json::obj([
                    ("server_id", Json::str(self.server_id.clone())),
                    ("uptime_ms", Json::uint(self.started.elapsed().as_millis())),
                    ("workers", Json::uint(self.workers.len() as u128)),
                    ("workers_up", Json::uint(up as u128)),
                    ("routed", Json::uint(self.routed.load(Ordering::Relaxed) as u128)),
                    ("retried", Json::uint(self.retried.load(Ordering::Relaxed) as u128)),
                    ("shed", Json::uint(self.shed.load(Ordering::Relaxed) as u128)),
                    ("markdowns", Json::uint(markdowns as u128)),
                    ("inflight", Json::uint(self.inflight.load(Ordering::Relaxed) as u128)),
                    (
                        "queue_cap",
                        self.queue_cap.map(|c| Json::uint(c as u128)).unwrap_or(Json::Null),
                    ),
                ]),
            ),
            ("workers", Json::Arr(per_worker)),
        ])
    }

    /// `router.drain` / `router.undrain`: administratively stop (or
    /// resume) new placements on one worker while sticky sessions and
    /// in-flight work proceed.
    fn handle_drain(&self, value: &Json, id: Option<Json>, drain: bool) -> Json {
        let Some(worker_id) = value.get("worker").and_then(Json::as_str) else {
            return error_response(
                id,
                &ProtoError::new(
                    ErrorKind::Protocol,
                    "router.drain/router.undrain require a \"worker\" id",
                ),
            );
        };
        let Some(worker) = self.workers.iter().find(|w| w.id == worker_id) else {
            return error_response(
                id,
                &ProtoError::new(
                    ErrorKind::Protocol,
                    format!("unknown worker {:?}", worker_id),
                ),
            );
        };
        if drain {
            worker.set_health(Health::Draining);
        } else {
            // Undrain optimistically marks Up; the next failed call or
            // ping corrects it.
            worker.set_health(Health::Up);
        }
        let payload = Json::obj([
            ("worker", Json::str(worker_id)),
            ("state", Json::str(worker.health().wire_name())),
        ]);
        ok_response(id, payload)
    }

    /// Handle one request line, returning the response and whether the
    /// connection should close afterwards.
    pub fn handle_line(&self, line: &str) -> (Json, bool) {
        let value = match Json::parse(line) {
            Ok(value) => value,
            Err(message) => {
                return (
                    error_response(None, &ProtoError::new(ErrorKind::Parse, message)),
                    false,
                )
            }
        };
        let id = request_id(&value);
        // Router-only admin requests are not in the worker protocol.
        match value.get("type").and_then(Json::as_str) {
            Some("router.drain") => return (self.handle_drain(&value, id, true), false),
            Some("router.undrain") => return (self.handle_drain(&value, id, false), false),
            _ => {}
        }
        let request = match Request::parse(&value) {
            Ok(request) => request,
            Err(e) => return (error_response(id, &e), false),
        };
        match request {
            Request::Ping => (ok_response(id, self.ping_payload()), false),
            Request::Stats => (ok_response(id, self.stats_payload()), false),
            Request::Shutdown => {
                self.begin_shutdown();
                (
                    ok_response(id, Json::obj([("shutting_down", Json::Bool(true))])),
                    true,
                )
            }
            Request::Sim(spec) => (self.route_one(line, id, &spec), false),
            Request::Batch(specs) => (self.route_batch(&value, id, &specs), false),
            Request::SessionCreate(spec) => (self.route_session_open(line, id, &spec), false),
            Request::SessionRestore { spec, .. } => {
                (self.route_session_open(line, id, &spec), false)
            }
            Request::SessionStep { session, .. }
            | Request::SessionPeek { session, .. }
            | Request::SessionPoke { session, .. }
            | Request::SessionQuery { session, .. }
            | Request::SessionCheckpoint { session }
            | Request::SessionDestroy { session } => {
                (self.route_session_cmd(value, id, &session), false)
            }
        }
    }
}

/// One per-job error entry in a batch response, mirroring the worker's
/// own entry shape.
fn job_error_entry(error: &ProtoError) -> Json {
    let mut fields = vec![
        ("kind".to_string(), Json::str(error.kind.wire_name())),
        ("message".to_string(), Json::str(error.message.clone())),
        ("retryable".to_string(), Json::Bool(error.kind.retryable())),
    ];
    fields.extend(error.data.iter().cloned());
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Obj(fields))])
}

/// Reconstruct a [`ProtoError`] from a worker's error response, so an
/// envelope failure can be spread over a batch's job entries verbatim.
fn envelope_error(response: &Json) -> ProtoError {
    let error = response.get("error");
    let kind_name = error
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or("internal_error");
    let kind = match kind_name {
        "overloaded" => ErrorKind::Overloaded,
        "shutdown" => ErrorKind::Shutdown,
        "unknown_design" => ErrorKind::UnknownDesign,
        "protocol" => ErrorKind::Protocol,
        _ => ErrorKind::Internal,
    };
    let message = error
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap_or("worker request failed")
        .to_string();
    let mut rebuilt = ProtoError::new(kind, message);
    if let Some(Json::Obj(fields)) = error {
        for (name, value) in fields {
            if name != "kind" && name != "message" && name != "retryable" {
                rebuilt = rebuilt.with_data(name.clone(), value.clone());
            }
        }
    }
    rebuilt
}

/// Serve one connection: read request lines, route, write response lines.
fn handle_connection(
    state: &Arc<RouterState>,
    reader: impl Read,
    mut writer: impl Write,
) -> io::Result<()> {
    let mut lines = LineReader::new(reader);
    loop {
        let line = match lines.next_line() {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if state.shutting_down() {
                    return Ok(());
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let error = ProtoError::new(ErrorKind::Protocol, e.to_string());
                writeln!(writer, "{}", error_response(None, &error))?;
                writer.flush()?;
                continue;
            }
            Err(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, close) = state.handle_line(&line);
        writeln!(writer, "{}", response)?;
        writer.flush()?;
        if close {
            return Ok(());
        }
    }
}

/// The health loop: ping every worker each interval until shutdown.
fn health_loop(state: &Arc<RouterState>, interval: Duration) {
    let mut since = interval; // first round fires immediately
    while !state.shutting_down() {
        if since >= interval {
            since = Duration::ZERO;
            for worker in &state.workers {
                if state.shutting_down() {
                    return;
                }
                worker.check(PING_TIMEOUT);
            }
        }
        std::thread::sleep(READ_TICK.min(interval));
        since += READ_TICK.min(interval);
    }
}

/// A fleet router. Construct with [`Router::new`], then run it over
/// [stdio](Router::serve_stdio) or [TCP](Router::serve_tcp) (or in the
/// background with [`Router::spawn_tcp`]).
pub struct Router {
    state: Arc<RouterState>,
    ping_interval: Duration,
}

impl Router {
    /// Create a router over the configured fleet. No connections are
    /// opened until traffic (or the first health ping) needs them.
    pub fn new(config: RouterConfig) -> Router {
        Router {
            state: Arc::new(RouterState::new(&config)),
            ping_interval: config.ping_interval,
        }
    }

    /// The shared state, usable while the router runs on another thread.
    pub fn state(&self) -> Arc<RouterState> {
        Arc::clone(&self.state)
    }

    fn spawn_health(&self) -> JoinHandle<()> {
        let state = self.state();
        let interval = self.ping_interval;
        std::thread::spawn(move || health_loop(&state, interval))
    }

    /// Serve a single session over stdin/stdout. Returns after EOF or a
    /// `shutdown` request.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures on the stdio streams.
    pub fn serve_stdio(self) -> io::Result<()> {
        let health = self.spawn_health();
        let result = handle_connection(&self.state, io::stdin().lock(), io::stdout().lock());
        self.state.begin_shutdown();
        let _ = health.join();
        for worker in &*self.state.workers {
            worker.disconnect();
        }
        result
    }

    /// Serve TCP connections on `listener`, one thread per connection,
    /// until a `shutdown` request arrives.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures.
    pub fn serve_tcp(self, listener: TcpListener) -> io::Result<()> {
        *plock(&self.state.wake_addr) = Some(listener.local_addr()?);
        let health = self.spawn_health();
        let mut connections = Vec::new();
        for stream in listener.incoming() {
            if self.state.shutting_down() {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.state.begin_shutdown();
                    let _ = health.join();
                    return Err(e);
                }
            };
            stream.set_read_timeout(Some(READ_TICK))?;
            let _ = stream.set_nodelay(true);
            let state = self.state();
            connections.push(std::thread::spawn(move || {
                let _ = handle_connection(&state, &stream, &stream);
            }));
        }
        for connection in connections {
            let _ = connection.join();
        }
        let _ = health.join();
        for worker in &*self.state.workers {
            worker.disconnect();
        }
        Ok(())
    }

    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve on a background
    /// thread.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_tcp(config: RouterConfig, addr: &str) -> io::Result<RunningRouter> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let router = Router::new(config);
        let state = router.state();
        let thread = std::thread::spawn(move || router.serve_tcp(listener));
        Ok(RunningRouter {
            addr: local,
            state,
            thread,
        })
    }
}

/// A router running on a background thread (see [`Router::spawn_tcp`]).
pub struct RunningRouter {
    addr: SocketAddr,
    state: Arc<RouterState>,
    thread: JoinHandle<io::Result<()>>,
}

impl RunningRouter {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared router state.
    pub fn state(&self) -> &Arc<RouterState> {
        &self.state
    }

    /// Wait for the serving thread to finish (after a `shutdown`
    /// request).
    ///
    /// # Errors
    ///
    /// Propagates the serving thread's I/O error, if any.
    pub fn join(self) -> io::Result<()> {
        self.thread
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("router thread panicked")))
    }
}
