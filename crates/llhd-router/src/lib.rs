//! # llhd-router: a fleet tier over `llhd-server` workers
//!
//! A standalone routing tier that speaks the same line-delimited JSON
//! protocol v1 as [`llhd-server`](llhd_server) and fans requests out
//! across a fleet of workers:
//!
//! - **Placement** is a consistent-hash ring over worker *ids* keyed by
//!   the request's design key (inline-source requests hash the source
//!   text); batches are split per worker and the per-job results merged
//!   back in request order ([`ring`]).
//! - **Connections** are pooled, persistent, and pipelined; a health
//!   thread pings every worker and marks it down/up, re-placing its keys
//!   on the next ring candidate while it is out ([`pool`]).
//! - **Retries**: a worker-reported retryable error (`overloaded`,
//!   `shutdown`) or a broken transport is retried exactly once on the
//!   next ring candidate; non-retryable errors pass through untouched.
//!   The router adds its own `--queue-cap` admission control with the
//!   same `retry_after_ms` hint contract as the workers ([`router`]).
//! - **Sticky sessions**: `session.create`/`session.restore` place like
//!   sims, and the returned session id is prefixed with the worker id
//!   (`w0:s1`) so every later `session.*` command routes back to the
//!   owning worker. Migration is `session.checkpoint` on one worker +
//!   `session.restore` through the router, which is free to place the
//!   restored session on any healthy worker.
//! - **Stats rollup**: `stats` returns the router's own counters
//!   (routed/retried/shed/markdowns) plus each worker's `stats` payload
//!   keyed by its self-reported `server_id`.
//!
//! Clients need no changes: anything that speaks protocol v1 to a
//! worker can point at the router instead. The router is also itself a
//! protocol-v1 server, so routers could in principle stack (though one
//! tier is the intended shape).

pub mod pool;
pub mod ring;
pub mod router;

pub use pool::{Health, Worker};
pub use ring::{source_key, Ring};
pub use router::{Router, RouterConfig, RouterState, RunningRouter, WorkerSpec};
