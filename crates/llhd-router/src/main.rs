//! The `llhd-router` binary: a fleet routing tier speaking the same
//! line-delimited JSON protocol as `llhd-server` over stdio (the
//! default) or TCP, consistent-hashing design keys across workers.
//!
//! ```text
//! llhd-router --worker [ID=]ADDR [--worker ...] [--stdio | --tcp ADDR]
//!             [--queue-cap N] [--pool-size N] [--ping-interval SECS]
//!             [--call-timeout SECS] [--server-id ID]
//!
//!   --worker [ID=]ADDR     a worker to route to (repeatable, at least one;
//!                          e.g. w0=127.0.0.1:7171). Without ID= the address
//!                          doubles as the id. Ids must not contain ':'
//!                          (it delimits routed session ids).
//!   --stdio                requests on stdin, responses on stdout (default)
//!   --tcp ADDR             listen on ADDR (e.g. 127.0.0.1:7070; port 0 = ephemeral)
//!   --queue-cap N          shed requests past N routed jobs in flight with a
//!                          retryable `overloaded` error (default: unbounded)
//!   --pool-size N          persistent pipelined connections per worker (default 4)
//!   --ping-interval SECS   health-ping cadence (default 1)
//!   --call-timeout SECS    per-request budget against a worker (default 120)
//!   --server-id ID         identity reported in the router's own ping/stats
//!                          (default: derived from pid + start time)
//! ```

use llhd_router::{Router, RouterConfig, WorkerSpec};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: llhd-router --worker [ID=]ADDR [--worker ...] [--stdio | --tcp ADDR] [--queue-cap N] [--pool-size N] [--ping-interval SECS] [--call-timeout SECS] [--server-id ID]"
    );
    std::process::exit(2);
}

/// Parse one `--worker` operand: `[ID=]HOST:PORT`. The split is on the
/// *first* `=`, so addresses stay free to contain anything after it.
fn parse_worker(operand: &str) -> Result<WorkerSpec, String> {
    let (id, addr_text) = match operand.split_once('=') {
        Some((id, addr)) => (id.to_string(), addr),
        None => (operand.to_string(), operand),
    };
    if id.is_empty() {
        return Err(format!("worker {:?} has an empty id", operand));
    }
    if id.contains(':') && operand.contains('=') {
        return Err(format!(
            "worker id {:?} must not contain ':' (it delimits session ids)",
            id
        ));
    }
    let addr: SocketAddr = addr_text
        .to_socket_addrs()
        .map_err(|e| format!("worker address {:?}: {}", addr_text, e))?
        .next()
        .ok_or_else(|| format!("worker address {:?} resolves to nothing", addr_text))?;
    // An address used as the id contains ':'; replace it so session
    // prefixes stay parseable.
    let id = if operand.contains('=') {
        id
    } else {
        id.replace(':', "_")
    };
    Ok(WorkerSpec { id, addr })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tcp: Option<String> = None;
    let mut config = RouterConfig::default();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--stdio" => {}
            "--tcp" => match argv.get(i + 1) {
                Some(addr) => {
                    tcp = Some(addr.clone());
                    i += 1;
                }
                None => usage(),
            },
            "--worker" => match argv.get(i + 1) {
                Some(operand) => {
                    match parse_worker(operand) {
                        Ok(spec) => config.workers.push(spec),
                        Err(message) => {
                            eprintln!("llhd-router: {}", message);
                            std::process::exit(2);
                        }
                    }
                    i += 1;
                }
                None => usage(),
            },
            "--queue-cap" => match argv.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(n) => {
                    config.queue_cap = Some(n);
                    i += 1;
                }
                None => usage(),
            },
            "--pool-size" => match argv.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => {
                    config.pool_size = n;
                    i += 1;
                }
                _ => usage(),
            },
            "--ping-interval" => match argv.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(secs) => {
                    config.ping_interval = Duration::from_secs(secs);
                    i += 1;
                }
                None => usage(),
            },
            "--call-timeout" => match argv.get(i + 1).and_then(|s| s.parse().ok()) {
                Some(secs) => {
                    config.call_timeout = Duration::from_secs(secs);
                    i += 1;
                }
                None => usage(),
            },
            "--server-id" => match argv.get(i + 1) {
                Some(id) => {
                    config.server_id = Some(id.clone());
                    i += 1;
                }
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("llhd-router: unknown argument {:?}", other);
                usage();
            }
        }
        i += 1;
    }
    if config.workers.is_empty() {
        eprintln!("llhd-router: at least one --worker is required");
        usage();
    }
    {
        let mut ids: Vec<&str> = config.workers.iter().map(|w| w.id.as_str()).collect();
        ids.sort_unstable();
        if ids.windows(2).any(|pair| pair[0] == pair[1]) {
            eprintln!("llhd-router: worker ids must be unique");
            std::process::exit(2);
        }
    }
    let router = Router::new(config);
    let result = match tcp {
        Some(addr) => match TcpListener::bind(&addr) {
            Ok(listener) => {
                // The ephemeral-port form (`:0`) is only useful if the
                // chosen port is announced.
                match listener.local_addr() {
                    Ok(local) => eprintln!("llhd-router: listening on {}", local),
                    Err(_) => eprintln!("llhd-router: listening on {}", addr),
                }
                router.serve_tcp(listener)
            }
            Err(e) => {
                eprintln!("llhd-router: cannot bind {}: {}", addr, e);
                std::process::exit(1);
            }
        },
        None => router.serve_stdio(),
    };
    if let Err(e) = result {
        eprintln!("llhd-router: {}", e);
        std::process::exit(1);
    }
}
