//! Worker connection management: pooled persistent connections with
//! per-connection request pipelining, plus the health state machine the
//! router's placement consults.
//!
//! A worker processes each connection's requests strictly in order (one
//! line in, one line out), so a single connection serializes; the pool
//! holds several pipelines per worker and round-robins across them for
//! parallelism. Within one pipeline, requests are *pipelined*: the
//! writer does not wait for the previous reply, and a reader thread
//! pairs response lines to waiters in FIFO order — the protocol has no
//! other correlation for a multiplexed connection (ids are client-owned
//! and forwarded verbatim).

use llhd_server::json::Json;
use llhd_server::wire::LineReader;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// How long a reader thread blocks in `read` before re-checking whether
/// its pipeline was closed.
const READ_TICK: Duration = Duration::from_millis(100);

/// How long a fresh connection attempt may take before the worker is
/// treated as unreachable for this call.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(1000);

fn plock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The reply channel of one in-flight pipelined request.
type Waiter = mpsc::Sender<io::Result<Json>>;

/// State shared between a pipeline's callers and its reader thread. One
/// lock covers the write side *and* the waiter FIFO, so the order lines
/// hit the wire is exactly the order waiters queue in — the invariant
/// FIFO reply pairing rests on.
struct PipeShared {
    stream: TcpStream,
    waiters: VecDeque<Waiter>,
    dead: bool,
}

impl PipeShared {
    /// Mark the pipeline dead and fail everything still waiting on it.
    fn fail_all(&mut self, why: &str) {
        self.dead = true;
        let _ = self.stream.shutdown(Shutdown::Both);
        for waiter in self.waiters.drain(..) {
            let _ = waiter.send(Err(io::Error::new(io::ErrorKind::BrokenPipe, why)));
        }
    }
}

/// One persistent, pipelined connection to a worker.
pub struct Pipeline {
    shared: Arc<Mutex<PipeShared>>,
}

impl Pipeline {
    /// Connect and start the reader thread.
    ///
    /// # Errors
    ///
    /// Connection failures (refused, timed out after one second).
    pub fn connect(addr: SocketAddr) -> io::Result<Pipeline> {
        let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
        let _ = stream.set_nodelay(true);
        let reader = stream.try_clone()?;
        reader.set_read_timeout(Some(READ_TICK))?;
        let shared = Arc::new(Mutex::new(PipeShared {
            stream,
            waiters: VecDeque::new(),
            dead: false,
        }));
        let thread_shared = Arc::clone(&shared);
        std::thread::spawn(move || reader_loop(reader, &thread_shared));
        Ok(Pipeline { shared })
    }

    /// Whether the connection has failed (callers should reconnect).
    pub fn is_dead(&self) -> bool {
        plock(&self.shared).dead
    }

    /// Send one request line and wait up to `timeout` for its (FIFO)
    /// response. A timeout abandons only this caller; the reply slot
    /// stays queued, so later responses still pair correctly.
    ///
    /// # Errors
    ///
    /// `BrokenPipe` when the connection is (or goes) down, `TimedOut`
    /// when no response arrives in time, `InvalidData` on a non-JSON
    /// response line.
    pub fn call(&self, line: &str, timeout: Duration) -> io::Result<Json> {
        let rx = {
            let mut shared = plock(&self.shared);
            if shared.dead {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "worker connection is down",
                ));
            }
            let (tx, rx) = mpsc::channel();
            shared.waiters.push_back(tx);
            // A failed or partial write desynchronizes the line framing:
            // nothing sent after it can be trusted, so the whole pipeline
            // dies (callers reconnect).
            if let Err(e) = writeln!(shared.stream, "{}", line).and_then(|_| shared.stream.flush())
            {
                shared.fail_all("worker connection failed while writing a request");
                return Err(e);
            }
            rx
        };
        match rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(_) => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "worker did not answer within the call timeout",
            )),
        }
    }
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        plock(&self.shared).fail_all("pipeline closed");
    }
}

/// Pair response lines to waiters until the connection dies or closes.
fn reader_loop(reader: TcpStream, shared: &Arc<Mutex<PipeShared>>) {
    let mut lines = LineReader::new(reader);
    loop {
        match lines.next_line() {
            Ok(Some(line)) => {
                let waiter = plock(shared).waiters.pop_front();
                if let Some(waiter) = waiter {
                    let parsed = Json::parse(&line)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
                    // The caller may have timed out and gone; that's fine.
                    let _ = waiter.send(parsed);
                }
                // An unsolicited line (no waiter) is dropped: the server
                // never pushes, so this is a desync artifact at worst.
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if plock(shared).dead {
                    return;
                }
            }
            Ok(None) | Err(_) => {
                plock(shared).fail_all("worker closed the connection");
                return;
            }
        }
    }
}

/// A worker's health as the router sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Health {
    /// Answering pings; receives new placements.
    Up,
    /// Unreachable; skipped for placement until a ping succeeds.
    Down,
    /// Administratively draining: no *new* placements, but sticky
    /// session traffic and in-flight work proceed.
    Draining,
}

impl Health {
    /// The wire name used in the stats rollup.
    pub fn wire_name(self) -> &'static str {
        match self {
            Health::Up => "up",
            Health::Down => "down",
            Health::Draining => "draining",
        }
    }
}

/// One worker: its identity, address, health, and connection pool.
pub struct Worker {
    /// The router-side id (ring placement hashes this).
    pub id: String,
    /// The worker's TCP address.
    pub addr: SocketAddr,
    /// Fixed-size pool of pipelines, lazily (re)connected.
    pipes: Mutex<Vec<Option<Arc<Pipeline>>>>,
    /// Round-robin cursor over the pool.
    next: AtomicUsize,
    health: Mutex<Health>,
    /// The `server_id` the worker reported on its last successful ping.
    server_id: Mutex<Option<String>>,
    /// Up → Down transitions observed (failed calls or pings).
    pub markdowns: AtomicUsize,
}

impl Worker {
    /// A worker handle with `pool_size` pipeline slots; nothing connects
    /// until the first call.
    pub fn new(id: String, addr: SocketAddr, pool_size: usize) -> Worker {
        Worker {
            id,
            addr,
            pipes: Mutex::new(vec![None; pool_size.max(1)]),
            next: AtomicUsize::new(0),
            health: Mutex::new(Health::Up),
            server_id: Mutex::new(None),
            markdowns: AtomicUsize::new(0),
        }
    }

    /// Current health.
    pub fn health(&self) -> Health {
        *plock(&self.health)
    }

    /// Set health, counting Up/Draining → Down transitions.
    pub fn set_health(&self, health: Health) {
        let mut current = plock(&self.health);
        if *current != Health::Down && health == Health::Down {
            self.markdowns.fetch_add(1, Ordering::Relaxed);
        }
        *current = health;
    }

    /// Mark down after a transport failure (a failed ping will keep it
    /// down; a successful one brings it back). Draining is sticky: an
    /// operator's drain outlives a blip.
    pub fn mark_down(&self) {
        let mut current = plock(&self.health);
        if *current == Health::Up {
            self.markdowns.fetch_add(1, Ordering::Relaxed);
            *current = Health::Down;
        }
    }

    /// Mark up after a successful ping — unless draining (operator wins).
    pub fn mark_up(&self) {
        let mut current = plock(&self.health);
        if *current == Health::Down {
            *current = Health::Up;
        }
    }

    /// The worker's self-reported `server_id`, if a ping has seen one.
    pub fn server_id(&self) -> Option<String> {
        plock(&self.server_id).clone()
    }

    /// Record the `server_id` from a ping/stats response.
    pub fn note_server_id(&self, id: &str) {
        let mut slot = plock(&self.server_id);
        if slot.as_deref() != Some(id) {
            *slot = Some(id.to_string());
        }
    }

    /// A live pipeline from the pool (round-robin), reconnecting a dead
    /// or never-opened slot.
    ///
    /// # Errors
    ///
    /// Connection failures when the slot needs a fresh connection.
    fn pipeline(&self) -> io::Result<Arc<Pipeline>> {
        let mut pipes = plock(&self.pipes);
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % pipes.len();
        if let Some(pipe) = &pipes[slot] {
            if !pipe.is_dead() {
                return Ok(Arc::clone(pipe));
            }
        }
        let pipe = Arc::new(Pipeline::connect(self.addr)?);
        pipes[slot] = Some(Arc::clone(&pipe));
        Ok(pipe)
    }

    /// Send one request line to this worker and wait for the response.
    /// Transport failures mark the worker down (the health ping marks it
    /// back up when it recovers).
    ///
    /// # Errors
    ///
    /// Connection, write, timeout, or response-parse failures.
    pub fn call(&self, line: &str, timeout: Duration) -> io::Result<Json> {
        let outcome = self.pipeline().and_then(|pipe| pipe.call(line, timeout));
        if let Err(e) = &outcome {
            // A timeout is load, not death: the pipeline stays intact and
            // the reply will be discarded when it lands. Everything else
            // is a broken transport.
            if e.kind() != io::ErrorKind::TimedOut {
                self.mark_down();
            }
        }
        outcome
    }

    /// Health-check: send a `ping`, record the reported `server_id`, and
    /// flip Down → Up on success / Up → Down on failure.
    pub fn check(&self, timeout: Duration) -> bool {
        match self.call("{\"type\":\"ping\"}", timeout) {
            Ok(response) if response.get("ok") == Some(&Json::Bool(true)) => {
                if let Some(id) = response
                    .get("result")
                    .and_then(|r| r.get("server_id"))
                    .and_then(Json::as_str)
                {
                    self.note_server_id(id);
                }
                self.mark_up();
                true
            }
            // A well-formed error response still proves the transport and
            // the process are alive.
            Ok(_) => {
                self.mark_up();
                true
            }
            Err(_) => {
                self.mark_down();
                false
            }
        }
    }

    /// Drop every pooled connection (used at router shutdown so worker
    /// processes see EOF promptly).
    pub fn disconnect(&self) {
        plock(&self.pipes).iter_mut().for_each(|slot| *slot = None);
    }
}
