//! Consistent-hash placement: a virtual-node ring over worker ids.
//!
//! Design keys are already 128-bit content hashes (the `DesignCache`
//! fingerprint), so placement needs no coordination: every router
//! instance with the same worker list computes the same owner for a key.
//! Virtual nodes (64 per worker) smooth the load split, and the ring
//! order doubles as the retry order — when a worker is down or sheds
//! load, the next distinct worker clockwise is the natural second home
//! for the key, and it is the *same* second home every time, so retried
//! work still concentrates its cache footprint.

/// Virtual nodes per worker. 64 keeps the per-worker share within a few
/// percent of fair for fleets up to dozens of workers while the ring
/// stays small enough to binary-search in nanoseconds.
const VNODES: usize = 64;

/// FNV-1a, 64-bit: the ring's point hash. Matches the spirit of the
/// cache fingerprint (also FNV-family) without depending on its exact
/// constants — ring placement is router-internal, not a wire contract.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Hash an inline-source submission to a stable 128-bit placement key,
/// so repeat submissions of the same text land on the same warm cache.
/// This is *not* the design's content fingerprint (that would require
/// parsing the module, which the router never does); the router learns
/// the real fingerprint from the worker's response and memoizes it.
pub fn source_key(source: &str, top: &str) -> u128 {
    let mut seed = Vec::with_capacity(top.len() + 1 + source.len());
    seed.extend_from_slice(top.as_bytes());
    seed.push(0);
    seed.extend_from_slice(source.as_bytes());
    let lo = fnv64(&seed);
    seed.push(1);
    let hi = fnv64(&seed);
    ((hi as u128) << 64) | lo as u128
}

/// The ring: sorted virtual-node points, each owned by a worker index.
pub struct Ring {
    /// `(point, worker)` sorted by point; ties broken by worker index at
    /// build time so iteration order is deterministic.
    points: Vec<(u64, usize)>,
    workers: usize,
}

impl Ring {
    /// Build the ring over `worker_ids.len()` workers. The points hash
    /// the worker *ids*, not their addresses, so a worker restarted on a
    /// new port keeps its ring share.
    pub fn new(worker_ids: &[String]) -> Ring {
        let mut points = Vec::with_capacity(worker_ids.len() * VNODES);
        for (index, id) in worker_ids.iter().enumerate() {
            for vnode in 0..VNODES {
                let point = fnv64(format!("{}#{}", id, vnode).as_bytes());
                points.push((point, index));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            workers: worker_ids.len(),
        }
    }

    /// The number of workers on the ring.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Worker indexes in placement order for `key`: the owner first, then
    /// each next *distinct* worker clockwise. Every worker appears exactly
    /// once, so the caller can skip unhealthy candidates and keep going.
    pub fn candidates(&self, key: u128) -> Vec<usize> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let point = fnv64(&key.to_be_bytes());
        let start = self
            .points
            .partition_point(|&(p, _)| p < point)
            % self.points.len();
        let mut seen = vec![false; self.workers];
        let mut order = Vec::with_capacity(self.workers);
        for offset in 0..self.points.len() {
            let (_, worker) = self.points[(start + offset) % self.points.len()];
            if !seen[worker] {
                seen[worker] = true;
                order.push(worker);
                if order.len() == self.workers {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("w{}", i)).collect()
    }

    #[test]
    fn placement_is_deterministic_and_covers_every_worker() {
        let ring = Ring::new(&ids(5));
        for key in [0u128, 1, u128::MAX, 0xdead_beef] {
            let order = ring.candidates(key);
            assert_eq!(order.len(), 5);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
            assert_eq!(order, ring.candidates(key), "same key, same order");
        }
    }

    #[test]
    fn load_splits_roughly_evenly() {
        let ring = Ring::new(&ids(4));
        let mut counts = [0usize; 4];
        for i in 0..10_000u128 {
            counts[ring.candidates(i * 0x9e37_79b9_7f4a_7c15)[0]] += 1;
        }
        for &count in &counts {
            // Fair share is 2500; virtual nodes keep every worker within
            // a factor-of-two band (the property that matters — no worker
            // starves, none takes the bulk).
            assert!((1_000..=5_000).contains(&count), "skewed split: {:?}", counts);
        }
    }

    #[test]
    fn removing_a_worker_only_moves_its_own_keys() {
        let five = Ring::new(&ids(5));
        // Simulate worker 4 going down: the caller skips it and takes the
        // next candidate. Keys owned by 0..=3 must not move.
        for i in 0..1_000u128 {
            let key = i * 0x1234_5678_9abc_def1;
            let order = five.candidates(key);
            if order[0] != 4 {
                let fallback: Vec<usize> =
                    order.iter().copied().filter(|&w| w != 4).collect();
                assert_eq!(order[0], fallback[0], "stable keys moved");
            }
        }
    }

    #[test]
    fn source_keys_are_stable_and_distinct() {
        let a = source_key("proc @p ...", "p");
        assert_eq!(a, source_key("proc @p ...", "p"));
        assert_ne!(a, source_key("proc @p ...", "q"));
        assert_ne!(a, source_key("proc @q ...", "p"));
    }
}
