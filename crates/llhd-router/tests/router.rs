//! In-process integration tests of the routing tier: placement and the
//! design memo, batch split/merge ordering, sticky sessions and
//! checkpoint migration, retry-on-overload, drain, and router-level
//! admission control — against real `llhd-server` instances on real TCP
//! sockets.

use llhd_router::{Ring, Router, RouterConfig, RunningRouter, WorkerSpec};
use llhd_server::json::Json;
use llhd_server::protocol::{error_response, ok_response, ErrorKind, ProtoError};
use llhd_server::{Client, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

const BLINK: &str = r#"
proc @blink () -> (i1$ %led) {
entry:
    %on = const i1 1
    %off = const i1 0
    %delay = const time 5ns
    drv i1$ %led, %on after %delay
    wait %next for %delay
next:
    drv i1$ %led, %off after %delay
    wait %entry for %delay
}
"#;

/// Spawn a worker with a fixed identity on an ephemeral port.
fn spawn_worker(server_id: &str) -> llhd_server::RunningServer {
    let config = ServerConfig {
        server_id: Some(server_id.to_string()),
        ..ServerConfig::default()
    };
    Server::spawn_tcp(config, "127.0.0.1:0").expect("bind a worker")
}

/// Spawn a router over `workers` with a fast health-ping cadence.
fn spawn_router(workers: Vec<WorkerSpec>, tweak: impl FnOnce(&mut RouterConfig)) -> RunningRouter {
    let mut config = RouterConfig {
        workers,
        ping_interval: Duration::from_millis(100),
        ..RouterConfig::default()
    };
    tweak(&mut config);
    Router::spawn_tcp(config, "127.0.0.1:0").expect("bind the router")
}

fn spec(id: &str, addr: SocketAddr) -> WorkerSpec {
    WorkerSpec {
        id: id.to_string(),
        addr,
    }
}

fn sim_request(fields: Vec<(&'static str, Json)>) -> Json {
    let mut all = vec![("type", Json::str("sim"))];
    all.extend(fields);
    Json::obj(all)
}

fn source_sim(source: &str) -> Json {
    sim_request(vec![
        ("source", Json::str(source)),
        ("top", Json::str("blink")),
        ("engine", Json::str("interpret")),
        ("until_ns", Json::Int(50)),
    ])
}

fn shutdown(client: &mut Client) {
    let ack = client
        .request(&Json::obj([("type", Json::str("shutdown"))]))
        .unwrap();
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)), "{}", ack);
}

fn error_kind(response: &Json) -> &str {
    response
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("response has no error.kind: {}", response))
}

fn router_counter(stats: &Json, name: &str) -> i128 {
    stats
        .get("result")
        .and_then(|r| r.get("router"))
        .and_then(|r| r.get(name))
        .and_then(Json::as_int)
        .unwrap_or_else(|| panic!("stats response lacks router.{}: {}", name, stats))
}

#[test]
fn ping_reports_the_fleet_shape() {
    let a = spawn_worker("ping-a");
    let b = spawn_worker("ping-b");
    let router = spawn_router(
        vec![spec("wa", a.addr()), spec("wb", b.addr())],
        |_| {},
    );
    let mut client = Client::connect(router.addr()).unwrap();
    let pong = client
        .request(&Json::obj([("type", Json::str("ping")), ("id", Json::Int(7))]))
        .unwrap();
    assert_eq!(pong.get("ok"), Some(&Json::Bool(true)), "{}", pong);
    assert_eq!(pong.get("id"), Some(&Json::Int(7)));
    let result = pong.get("result").unwrap();
    assert_eq!(result.get("pong"), Some(&Json::Bool(true)));
    assert_eq!(result.get("role").and_then(Json::as_str), Some("router"));
    assert_eq!(result.get("workers").and_then(Json::as_int), Some(2));
    assert!(result.get("server_id").and_then(Json::as_str).is_some());
    assert!(result.get("uptime_ms").and_then(Json::as_int).is_some());
    shutdown(&mut client);
    router.join().unwrap();
    let mut wa = Client::connect(a.addr()).unwrap();
    shutdown(&mut wa);
    let mut wb = Client::connect(b.addr()).unwrap();
    shutdown(&mut wb);
    a.join().unwrap();
    b.join().unwrap();
}

#[test]
fn the_memo_keeps_keyed_requests_on_the_warm_worker() {
    let workers = [spawn_worker("memo-a"), spawn_worker("memo-b"), spawn_worker("memo-c")];
    let router = spawn_router(
        vec![
            spec("w0", workers[0].addr()),
            spec("w1", workers[1].addr()),
            spec("w2", workers[2].addr()),
        ],
        |_| {},
    );
    let mut client = Client::connect(router.addr()).unwrap();

    // Submit by source: placed by source hash, response names the real
    // design fingerprint.
    let first = client.request(&source_sim(BLINK)).unwrap();
    assert_eq!(first.get("ok"), Some(&Json::Bool(true)), "{}", first);
    let key = first
        .get("result")
        .and_then(|r| r.get("design"))
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    // Re-request by fingerprint: only the worker that elaborated it has
    // the design resident, so success proves the memo bridged the two
    // placements.
    let second = client
        .request(&sim_request(vec![
            ("design", Json::str(key.clone())),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(50)),
        ]))
        .unwrap();
    assert_eq!(second.get("ok"), Some(&Json::Bool(true)), "{}", second);

    // A fingerprint nobody has resident is a clean *non-retryable*
    // unknown_design pass-through — the router must not burn a retry on
    // a deterministic failure.
    let missing = client
        .request(&sim_request(vec![
            ("design", Json::str("00000000000000000000000000000001")),
            ("top", Json::str("blink")),
            ("until_ns", Json::Int(50)),
        ]))
        .unwrap();
    assert_eq!(missing.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(error_kind(&missing), "unknown_design");
    assert_eq!(
        missing.get("error").and_then(|e| e.get("retryable")),
        Some(&Json::Bool(false))
    );

    // The rollup attributes per-worker stats by server_id and counts the
    // routed traffic; nothing above was retried or shed.
    let stats = client.request(&Json::obj([("type", Json::str("stats"))])).unwrap();
    assert_eq!(stats.get("ok"), Some(&Json::Bool(true)), "{}", stats);
    assert!(router_counter(&stats, "routed") >= 3);
    assert_eq!(router_counter(&stats, "retried"), 0);
    assert_eq!(router_counter(&stats, "shed"), 0);
    assert_eq!(router_counter(&stats, "workers_up"), 3);
    let rollup = stats
        .get("result")
        .and_then(|r| r.get("workers"))
        .and_then(Json::as_arr)
        .unwrap();
    assert_eq!(rollup.len(), 3);
    let mut ids: Vec<&str> = rollup
        .iter()
        .map(|w| w.get("server_id").and_then(Json::as_str).expect("server_id"))
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, vec!["memo-a", "memo-b", "memo-c"]);
    for worker in rollup {
        assert_eq!(worker.get("state").and_then(Json::as_str), Some("up"));
        assert!(
            worker.get("stats").and_then(|s| s.get("cache")).is_some(),
            "per-worker stats payload missing: {}",
            worker
        );
    }

    shutdown(&mut client);
    router.join().unwrap();
    for worker in workers {
        let mut direct = Client::connect(worker.addr()).unwrap();
        shutdown(&mut direct);
        worker.join().unwrap();
    }
}

#[test]
fn batches_split_across_workers_and_merge_in_request_order() {
    let a = spawn_worker("batch-a");
    let b = spawn_worker("batch-b");
    let router = spawn_router(
        vec![spec("w0", a.addr()), spec("w1", b.addr())],
        |_| {},
    );
    let mut client = Client::connect(router.addr()).unwrap();

    // Salt the source so the jobs hash to different placements (the ring
    // is public, so pick salts that land on *both* workers).
    let ring = Ring::new(&["w0".to_string(), "w1".to_string()]);
    let placed_on = |worker: usize| {
        (0..64)
            .map(|n| format!("{}{}", BLINK, "\n".repeat(n)))
            .find(|text| ring.candidates(llhd_router::source_key(text, "blink"))[0] == worker)
            .expect("some salt lands on the worker")
    };
    let on_first = placed_on(0);
    let on_second = placed_on(1);

    let job = |source: &str| {
        Json::obj([
            ("source", Json::str(source)),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(50)),
        ])
    };
    let bad = Json::obj([
        ("design", Json::str("not-hex")),
        ("top", Json::str("blink")),
        ("until_ns", Json::Int(50)),
    ]);
    let response = client
        .request(&Json::obj([
            ("type", Json::str("batch")),
            (
                "jobs",
                Json::Arr(vec![job(&on_first), bad, job(&on_second), job(&on_first)]),
            ),
            ("id", Json::Int(9)),
        ]))
        .unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{}", response);
    assert_eq!(response.get("id"), Some(&Json::Int(9)));
    let results = response
        .get("result")
        .and_then(|r| r.get("results"))
        .and_then(Json::as_arr)
        .unwrap();
    assert_eq!(results.len(), 4, "{}", response);
    for (index, entry) in results.iter().enumerate() {
        if index == 1 {
            assert_eq!(entry.get("ok"), Some(&Json::Bool(false)), "{}", entry);
            assert_eq!(error_kind(entry), "protocol");
        } else {
            assert_eq!(entry.get("ok"), Some(&Json::Bool(true)), "{}", entry);
            assert!(entry.get("end_time_fs").is_some() || entry
                .get("result")
                .map(|r| r.get("end_time_fs").is_some())
                .unwrap_or(false),
                "sim entry carries no end time: {}", entry);
        }
    }

    // Both workers really served a share (their caches saw an elaborate).
    let stats = client.request(&Json::obj([("type", Json::str("stats"))])).unwrap();
    let rollup = stats
        .get("result")
        .and_then(|r| r.get("workers"))
        .and_then(Json::as_arr)
        .unwrap();
    for worker in rollup {
        let misses = worker
            .get("stats")
            .and_then(|s| s.get("cache"))
            .and_then(|c| c.get("elaborate_misses"))
            .and_then(Json::as_int)
            .unwrap_or(0);
        assert!(misses >= 1, "a worker served no batch share: {}", worker);
    }

    shutdown(&mut client);
    router.join().unwrap();
    for worker in [a, b] {
        let mut direct = Client::connect(worker.addr()).unwrap();
        shutdown(&mut direct);
        worker.join().unwrap();
    }
}

#[test]
fn sessions_stick_to_their_worker_and_checkpoints_migrate() {
    let a = spawn_worker("sess-a");
    let b = spawn_worker("sess-b");
    let router = spawn_router(
        vec![spec("wa", a.addr()), spec("wb", b.addr())],
        |_| {},
    );
    let mut client = Client::connect(router.addr()).unwrap();

    // Create a session through the router: the returned id is prefixed
    // with the owning worker's router-side id.
    let created = client
        .request(&Json::obj([
            ("type", Json::str("session.create")),
            ("source", Json::str(BLINK)),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
        ]))
        .unwrap();
    assert_eq!(created.get("ok"), Some(&Json::Bool(true)), "{}", created);
    let session = created
        .get("result")
        .and_then(|r| r.get("session"))
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let (owner, _) = session.split_once(':').expect("a worker-prefixed id");
    assert!(owner == "wa" || owner == "wb", "odd owner in {:?}", session);

    // Commands with the prefixed id route back to the owner.
    let stepped = client
        .request(&Json::obj([
            ("type", Json::str("session.step")),
            ("session", Json::str(session.clone())),
            ("steps", Json::Int(5)),
        ]))
        .unwrap();
    assert_eq!(stepped.get("ok"), Some(&Json::Bool(true)), "{}", stepped);

    // Checkpoint, then drain the owner: sticky traffic still flows, but
    // new placements go elsewhere.
    let checkpoint = client
        .request(&Json::obj([
            ("type", Json::str("session.checkpoint")),
            ("session", Json::str(session.clone())),
        ]))
        .unwrap();
    assert_eq!(checkpoint.get("ok"), Some(&Json::Bool(true)), "{}", checkpoint);
    let state = checkpoint
        .get("result")
        .and_then(|r| r.get("state"))
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    let drained = client
        .request(&Json::obj([
            ("type", Json::str("router.drain")),
            ("worker", Json::str(owner)),
        ]))
        .unwrap();
    assert_eq!(drained.get("ok"), Some(&Json::Bool(true)), "{}", drained);
    assert_eq!(
        drained.get("result").and_then(|r| r.get("state")).and_then(Json::as_str),
        Some("draining")
    );

    let still_stepping = client
        .request(&Json::obj([
            ("type", Json::str("session.step")),
            ("session", Json::str(session.clone())),
            ("steps", Json::Int(1)),
        ]))
        .unwrap();
    assert_eq!(
        still_stepping.get("ok"),
        Some(&Json::Bool(true)),
        "sticky traffic must survive a drain: {}",
        still_stepping
    );

    // Restore the checkpoint through the router: with the owner
    // draining, placement picks the *other* worker — a worker-to-worker
    // migration of the session. The restore ships the source so the
    // target can elaborate the design itself.
    let restored = client
        .request(&Json::obj([
            ("type", Json::str("session.restore")),
            ("source", Json::str(BLINK)),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("state", Json::str(state)),
        ]))
        .unwrap();
    assert_eq!(restored.get("ok"), Some(&Json::Bool(true)), "{}", restored);
    let migrated = restored
        .get("result")
        .and_then(|r| r.get("session"))
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let (new_owner, _) = migrated.split_once(':').expect("a worker-prefixed id");
    assert_ne!(new_owner, owner, "the session did not migrate: {}", migrated);

    let resumed = client
        .request(&Json::obj([
            ("type", Json::str("session.step")),
            ("session", Json::str(migrated.clone())),
            ("steps", Json::Int(5)),
        ]))
        .unwrap();
    assert_eq!(resumed.get("ok"), Some(&Json::Bool(true)), "{}", resumed);

    // Undrain restores the original worker for new work.
    let undrained = client
        .request(&Json::obj([
            ("type", Json::str("router.undrain")),
            ("worker", Json::str(owner)),
        ]))
        .unwrap();
    assert_eq!(
        undrained.get("result").and_then(|r| r.get("state")).and_then(Json::as_str),
        Some("up")
    );

    // Malformed or unknown session ids fail cleanly without touching a
    // worker.
    for bogus in ["s1", "nope:s1"] {
        let response = client
            .request(&Json::obj([
                ("type", Json::str("session.step")),
                ("session", Json::str(bogus)),
                ("steps", Json::Int(1)),
            ]))
            .unwrap();
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(error_kind(&response), "unknown_session", "{}", response);
    }

    for session in [session, migrated] {
        let destroyed = client
            .request(&Json::obj([
                ("type", Json::str("session.destroy")),
                ("session", Json::str(session)),
            ]))
            .unwrap();
        assert_eq!(destroyed.get("ok"), Some(&Json::Bool(true)), "{}", destroyed);
    }

    shutdown(&mut client);
    router.join().unwrap();
    for worker in [a, b] {
        let mut direct = Client::connect(worker.addr()).unwrap();
        shutdown(&mut direct);
        worker.join().unwrap();
    }
}

/// A stub worker that answers pings normally but sheds every other
/// request with a retryable `overloaded` error — the deterministic way
/// to exercise the router's retry path.
fn spawn_overloaded_stub() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind the stub");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { return };
            std::thread::spawn(move || {
                let mut writer = stream.try_clone().expect("clone");
                let reader = BufReader::new(stream);
                for line in reader.lines() {
                    let Ok(line) = line else { return };
                    let value = Json::parse(&line).unwrap_or(Json::Null);
                    let id = value.get("id").cloned();
                    let response = if value.get("type").and_then(Json::as_str) == Some("ping") {
                        ok_response(
                            id,
                            Json::obj([
                                ("pong", Json::Bool(true)),
                                ("server_id", Json::str("stub")),
                            ]),
                        )
                    } else {
                        error_response(
                            id,
                            &ProtoError::new(ErrorKind::Overloaded, "stub is always full")
                                .with_data("retry_after_ms", Json::uint(5)),
                        )
                    };
                    if writeln!(writer, "{}", response).is_err() {
                        return;
                    }
                }
            });
        }
    });
    addr
}

#[test]
fn overloaded_workers_are_retried_once_on_the_next_candidate() {
    let real = spawn_worker("retry-real");
    let stub = spawn_overloaded_stub();
    let router = spawn_router(
        vec![spec("real", real.addr()), spec("stub", stub)],
        |_| {},
    );
    let mut client = Client::connect(router.addr()).unwrap();

    // Salt the source until the *stub* is the ring's first candidate, so
    // the request must survive an overload to succeed.
    let ring = Ring::new(&["real".to_string(), "stub".to_string()]);
    let source = (0..64)
        .map(|n| format!("{}{}", BLINK, "\n".repeat(n)))
        .find(|text| ring.candidates(llhd_router::source_key(text, "blink"))[0] == 1)
        .expect("some salt lands on the stub");

    let response = client.request(&source_sim(&source)).unwrap();
    assert_eq!(
        response.get("ok"),
        Some(&Json::Bool(true)),
        "the retry on the next candidate must succeed: {}",
        response
    );

    let stats = client.request(&Json::obj([("type", Json::str("stats"))])).unwrap();
    assert!(router_counter(&stats, "retried") >= 1, "{}", stats);

    shutdown(&mut client);
    router.join().unwrap();
    let mut direct = Client::connect(real.addr()).unwrap();
    shutdown(&mut direct);
    real.join().unwrap();
}

#[test]
fn the_router_sheds_past_its_queue_cap() {
    let a = spawn_worker("shed-a");
    let router = spawn_router(vec![spec("w0", a.addr())], |config| {
        config.queue_cap = Some(1);
    });
    let mut client = Client::connect(router.addr()).unwrap();

    // A 3-job batch against a cap of 1 overshoots by 2: shed before any
    // worker sees it, with the hint scaled to the overshoot (10ms each).
    let job = Json::obj([
        ("source", Json::str(BLINK)),
        ("top", Json::str("blink")),
        ("until_ns", Json::Int(50)),
    ]);
    let response = client
        .request(&Json::obj([
            ("type", Json::str("batch")),
            ("jobs", Json::Arr(vec![job.clone(), job.clone(), job])),
        ]))
        .unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)), "{}", response);
    assert_eq!(error_kind(&response), "overloaded");
    let error = response.get("error").unwrap();
    assert_eq!(error.get("retryable"), Some(&Json::Bool(true)));
    assert_eq!(error.get("retry_after_ms").and_then(Json::as_int), Some(20));

    // A single job fits under the cap and goes through.
    let single = client.request(&source_sim(BLINK)).unwrap();
    assert_eq!(single.get("ok"), Some(&Json::Bool(true)), "{}", single);

    let stats = client.request(&Json::obj([("type", Json::str("stats"))])).unwrap();
    assert_eq!(router_counter(&stats, "shed"), 1);
    assert_eq!(
        stats
            .get("result")
            .and_then(|r| r.get("router"))
            .and_then(|r| r.get("queue_cap"))
            .and_then(Json::as_int),
        Some(1)
    );

    shutdown(&mut client);
    router.join().unwrap();
    let mut direct = Client::connect(a.addr()).unwrap();
    shutdown(&mut direct);
    a.join().unwrap();
}

#[test]
fn draining_every_worker_sheds_placements_until_undrain() {
    let a = spawn_worker("drain-a");
    let router = spawn_router(vec![spec("w0", a.addr())], |_| {});
    let mut client = Client::connect(router.addr()).unwrap();

    let ack = client
        .request(&Json::obj([
            ("type", Json::str("router.drain")),
            ("worker", Json::str("w0")),
        ]))
        .unwrap();
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)), "{}", ack);

    let response = client.request(&source_sim(BLINK)).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(error_kind(&response), "overloaded");
    assert_eq!(
        response.get("error").and_then(|e| e.get("retryable")),
        Some(&Json::Bool(true)),
        "{}",
        response
    );

    // Draining an unknown worker is a protocol error, not a crash.
    let unknown = client
        .request(&Json::obj([
            ("type", Json::str("router.drain")),
            ("worker", Json::str("nope")),
        ]))
        .unwrap();
    assert_eq!(unknown.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(error_kind(&unknown), "protocol");

    let undrain = client
        .request(&Json::obj([
            ("type", Json::str("router.undrain")),
            ("worker", Json::str("w0")),
        ]))
        .unwrap();
    assert_eq!(undrain.get("ok"), Some(&Json::Bool(true)), "{}", undrain);
    let after = client.request(&source_sim(BLINK)).unwrap();
    assert_eq!(after.get("ok"), Some(&Json::Bool(true)), "{}", after);

    shutdown(&mut client);
    router.join().unwrap();
    let mut direct = Client::connect(a.addr()).unwrap();
    shutdown(&mut direct);
    a.join().unwrap();
}
