//! The multi-process fleet test: a router in front of three *real*
//! `llhd-server` worker processes, one of which is killed in the middle
//! of a request storm. Every storm response must be a well-formed
//! success or a retryable error — never a hang, a malformed line, or a
//! non-retryable failure — and the fleet must recover: the survivors
//! keep serving, the rollup reports the death, and a replacement worker
//! on the same address is marked back up by the health loop.

use llhd_router::{Router, RouterConfig, WorkerSpec};
use llhd_server::json::Json;
use llhd_server::Client;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BLINK: &str = "proc @blink () -> (i1$ %led) { entry: %on = const i1 1 %off = const i1 0 %t = const time 5ns drv i1$ %led, %on after %t wait %next for %t next: drv i1$ %led, %off after %t wait %entry for %t }";

/// The `llhd-server` binary next to this test's own artifacts, built on
/// demand when the test runs before the workspace's binaries exist.
fn server_binary() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // the test binary's hash-named file
    if path.ends_with("deps") {
        path.pop();
    }
    let binary = path.join(format!("llhd-server{}", std::env::consts::EXE_SUFFIX));
    if binary.exists() {
        return binary;
    }
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut build = Command::new(cargo);
    build.args(["build", "-p", "llhd-server", "--bin", "llhd-server"]);
    if path.file_name().and_then(|n| n.to_str()) == Some("release") {
        build.arg("--release");
    }
    let status = build.status().expect("spawn cargo build");
    assert!(status.success(), "building llhd-server failed");
    assert!(binary.exists(), "no llhd-server binary at {:?}", binary);
    binary
}

/// A worker process plus the address it announced on stderr.
struct WorkerProcess {
    child: Child,
    addr: SocketAddr,
}

/// Spawn one worker on `addr` (use `127.0.0.1:0` for an ephemeral port)
/// and wait for its "listening on" announcement.
fn spawn_worker(binary: &PathBuf, server_id: &str, addr: &str) -> WorkerProcess {
    let mut child = Command::new(binary)
        .args(["--tcp", addr, "--stats-interval", "0", "--server-id", server_id])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn llhd-server");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let announcement = lines
        .next()
        .expect("the worker announces its address")
        .expect("read the announcement");
    let addr: SocketAddr = announcement
        .rsplit(' ')
        .next()
        .and_then(|text| text.parse().ok())
        .unwrap_or_else(|| panic!("odd announcement: {:?}", announcement));
    // Keep draining stderr so the worker never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    WorkerProcess { child, addr }
}

/// Whether a response is acceptable during the storm: a success, or an
/// error explicitly marked retryable (the kill manifests as `shutdown`
/// or `overloaded` pass-throughs and router-synthesized retryables).
fn acceptable(response: &Json) -> bool {
    match response.get("ok") {
        Some(Json::Bool(true)) => true,
        Some(Json::Bool(false)) => {
            response
                .get("error")
                .and_then(|e| e.get("retryable"))
                == Some(&Json::Bool(true))
        }
        _ => false,
    }
}

fn ping_workers_up(client: &mut Client) -> i128 {
    let pong = client
        .request(&Json::obj([("type", Json::str("ping"))]))
        .expect("router ping");
    pong.get("result")
        .and_then(|r| r.get("workers_up"))
        .and_then(Json::as_int)
        .expect("workers_up in the router pong")
}

/// Poll the router until `workers_up` reaches `want` (the health loop
/// needs a ping round to notice a change).
fn await_workers_up(client: &mut Client, want: i128, budget: Duration) {
    let start = Instant::now();
    loop {
        if ping_workers_up(client) == want {
            return;
        }
        assert!(
            start.elapsed() < budget,
            "fleet never reached {} workers up",
            want
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn killing_a_worker_mid_storm_yields_only_retryable_errors_and_recovers() {
    let binary = server_binary();
    let mut workers: Vec<WorkerProcess> = (0..3)
        .map(|i| spawn_worker(&binary, &format!("fleet-w{}", i), "127.0.0.1:0"))
        .collect();
    let specs: Vec<WorkerSpec> = workers
        .iter()
        .enumerate()
        .map(|(i, worker)| WorkerSpec {
            id: format!("w{}", i),
            addr: worker.addr,
        })
        .collect();
    let router = Router::spawn_tcp(
        RouterConfig {
            workers: specs,
            ping_interval: Duration::from_millis(100),
            call_timeout: Duration::from_secs(30),
            ..RouterConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind the router");

    // The storm: 6 clients, each submitting salted variants of the same
    // design so placement spreads over the whole fleet. Worker 2 dies
    // once a third of the traffic is through.
    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 25;
    let done = Arc::new(AtomicUsize::new(0));
    let bad: Vec<Json> = std::thread::scope(|scope| {
        let kill_done = Arc::clone(&done);
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client_index| {
                let done = Arc::clone(&done);
                let addr = router.addr();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect to the router");
                    let mut bad = Vec::new();
                    for i in 0..PER_CLIENT {
                        let salt = "\n".repeat((client_index * PER_CLIENT + i) % 17);
                        let request = Json::obj([
                            ("type", Json::str("sim")),
                            ("source", Json::str(format!("{}{}", BLINK, salt))),
                            ("top", Json::str("blink")),
                            ("engine", Json::str("interpret")),
                            ("until_ns", Json::Int(50)),
                        ]);
                        match client.request(&request) {
                            Ok(response) => {
                                if !acceptable(&response) {
                                    bad.push(response);
                                }
                            }
                            Err(e) => panic!("the router connection itself died: {}", e),
                        }
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                    bad
                })
            })
            .collect();

        // The killer: wait for a third of the storm, then kill worker 2.
        let victim = &mut workers[2];
        while kill_done.load(Ordering::Relaxed) < CLIENTS * PER_CLIENT / 3 {
            std::thread::sleep(Duration::from_millis(5));
        }
        victim.child.kill().expect("kill the victim");
        let _ = victim.child.wait();

        handles
            .into_iter()
            .flat_map(|h| h.join().expect("storm client"))
            .collect()
    });
    assert!(
        bad.is_empty(),
        "storm saw {} non-retryable failures; first: {}",
        bad.len(),
        bad[0]
    );

    // Recovery, phase 1: the survivors carry the fleet. The health loop
    // notices the death, the rollup reports it, and fresh requests --
    // including ones whose keys used to live on the victim -- succeed.
    let mut client = Client::connect(router.addr()).expect("connect post-storm");
    await_workers_up(&mut client, 2, Duration::from_secs(10));
    let stats = client
        .request(&Json::obj([("type", Json::str("stats"))]))
        .unwrap();
    let rollup = stats
        .get("result")
        .and_then(|r| r.get("workers"))
        .and_then(Json::as_arr)
        .unwrap();
    let down: Vec<&str> = rollup
        .iter()
        .filter(|w| w.get("state").and_then(Json::as_str) == Some("down"))
        .map(|w| w.get("id").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(down, vec!["w2"], "{}", stats);
    let markdowns = stats
        .get("result")
        .and_then(|r| r.get("router"))
        .and_then(|r| r.get("markdowns"))
        .and_then(Json::as_int)
        .unwrap();
    assert!(markdowns >= 1, "{}", stats);
    let after = client
        .request(&Json::obj([
            ("type", Json::str("sim")),
            ("source", Json::str(BLINK)),
            ("top", Json::str("blink")),
            ("until_ns", Json::Int(50)),
        ]))
        .unwrap();
    assert_eq!(after.get("ok"), Some(&Json::Bool(true)), "{}", after);

    // Recovery, phase 2: a replacement on the victim's address is
    // marked back up by the health loop — no router restart, no
    // reconfiguration.
    let victim_addr = workers[2].addr.to_string();
    workers[2] = spawn_worker(&binary, "fleet-w2-reborn", &victim_addr);
    await_workers_up(&mut client, 3, Duration::from_secs(10));

    // Shut the router down; the workers outlive it (the router is a
    // tier, not a supervisor) and are killed explicitly.
    let ack = client
        .request(&Json::obj([("type", Json::str("shutdown"))]))
        .unwrap();
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)), "{}", ack);
    router.join().expect("clean router exit");
    for mut worker in workers {
        assert!(
            worker.child.try_wait().expect("probe the worker").is_none(),
            "a worker died with the router"
        );
        worker.child.kill().expect("kill the worker");
        let _ = worker.child.wait();
    }
}
