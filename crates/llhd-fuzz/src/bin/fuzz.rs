//! The differential fuzzing driver.
//!
//! Modes:
//!
//! * default — generate and run cases: `fuzz --seed 1 --cases 200
//!   [--budget-secs 60] [--artifact-dir DIR] [--matrix spec,spec,...]`.
//!   On divergence the case is shrunk, a replay artifact is written, a
//!   ready-to-run replay command is printed, and the exit code is 1.
//! * `--replay FILE...` — replay artifacts; exit 1 if any still
//!   diverges (this is what the committed regression corpus runs).
//! * `--pin SEED --out FILE` — find a case at or after SEED whose design
//!   and schedule cover the interesting machinery (a drive race, a
//!   checkpoint cut, a poke), shrink it under that coverage predicate,
//!   and write it as an artifact. This exercises the exact
//!   shrink-and-emit path a real divergence takes, and seeds the
//!   regression corpus while the engines agree.
//! * `--promote FILE [--corpus-dir DIR]` — copy an artifact into the
//!   committed regression corpus under its canonical name.
//!
//! Exit codes: 0 clean, 1 divergence, 2 usage error, 3 internal error
//! (generator bug, I/O).

use llhd_fuzz::{
    case_seed, default_matrix, promote, run_case, shrink_case, Artifact, CaseFailure, DesignPlan,
    EngineSpec, Schedule,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    seed: u64,
    cases: u64,
    budget_secs: u64,
    artifact_dir: PathBuf,
    matrix: Vec<EngineSpec>,
    replay: Vec<PathBuf>,
    promote: Option<PathBuf>,
    corpus_dir: PathBuf,
    pin: Option<u64>,
    out: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: fuzz [--seed N] [--cases N] [--budget-secs N] [--artifact-dir DIR] [--matrix s1,s2,..]\n\
    \x20      fuzz --replay FILE...\n\
    \x20      fuzz --pin SEED --out FILE\n\
    \x20      fuzz --promote FILE [--corpus-dir DIR]\n\
    specs: interp:tN | blaze:KKK:tN with KKK over f/s/i knobs, e.g. blaze:fsi:t4, blaze:f--:t1"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        seed: 1,
        cases: 100,
        budget_secs: 0,
        artifact_dir: PathBuf::from("target/fuzz-artifacts"),
        matrix: default_matrix(),
        replay: Vec::new(),
        promote: None,
        corpus_dir: PathBuf::from("crates/llhd-designs/tests/corpus"),
        pin: None,
        out: None,
    };
    let mut it = args.iter();
    let value = |it: &mut std::slice::Iter<String>, flag: &str| {
        it.next().cloned().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => opts.seed = parse_u64(&value(&mut it, "--seed")?)?,
            "--cases" => opts.cases = parse_u64(&value(&mut it, "--cases")?)?,
            "--budget-secs" => opts.budget_secs = parse_u64(&value(&mut it, "--budget-secs")?)?,
            "--artifact-dir" => opts.artifact_dir = value(&mut it, "--artifact-dir")?.into(),
            "--matrix" => {
                opts.matrix = value(&mut it, "--matrix")?
                    .split(',')
                    .map(|s| {
                        EngineSpec::parse(s.trim()).ok_or(format!("bad engine spec: {s}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--replay" => {
                opts.replay.extend(it.clone().map(PathBuf::from));
                if opts.replay.is_empty() {
                    return Err("--replay needs at least one file".into());
                }
                break;
            }
            "--promote" => opts.promote = Some(value(&mut it, "--promote")?.into()),
            "--corpus-dir" => opts.corpus_dir = value(&mut it, "--corpus-dir")?.into(),
            "--pin" => opts.pin = Some(parse_u64(&value(&mut it, "--pin")?)?),
            "--out" => opts.out = Some(value(&mut it, "--out")?.into()),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(opts)
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    };
    parsed.ok_or(format!("bad number: {s}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    if !opts.replay.is_empty() {
        return replay_files(&opts);
    }
    if let Some(path) = &opts.promote {
        return promote_file(path, &opts.corpus_dir);
    }
    if let Some(pin_seed) = opts.pin {
        let Some(out) = &opts.out else {
            eprintln!("error: --pin needs --out FILE");
            return ExitCode::from(2);
        };
        return pin_case(pin_seed, out, &opts.matrix);
    }
    fuzz_loop(&opts)
}

fn fuzz_loop(opts: &Options) -> ExitCode {
    let start = Instant::now();
    let mut ran = 0u64;
    for case in 0..opts.cases {
        if opts.budget_secs > 0 && start.elapsed().as_secs() >= opts.budget_secs {
            println!(
                "budget of {}s exhausted after {ran} cases (all clean so far)",
                opts.budget_secs
            );
            break;
        }
        let cs = case_seed(opts.seed, case);
        let plan = DesignPlan::generate(cs);
        let (design, module) = match plan.build() {
            Ok(built) => built,
            Err(e) => {
                eprintln!("internal: case {case} (seed {cs:#018x}) failed to build: {e}");
                return ExitCode::from(3);
            }
        };
        let schedule = Schedule::generate(cs ^ 0x5711_u64, &design);
        match run_case(&module, &design, &schedule, &opts.matrix) {
            Ok(_) => ran += 1,
            Err(CaseFailure::Generator(msg)) => {
                eprintln!("internal: case {case} (seed {cs:#018x}): generator bug: {msg}");
                return ExitCode::from(3);
            }
            Err(CaseFailure::Divergence(divergence)) => {
                return report_divergence(opts, case, cs, &plan, &schedule, &divergence);
            }
        }
    }
    println!(
        "clean: {ran} cases x {} engine variants (base seed {:#018x}, {:.1}s)",
        opts.matrix.len() + 1,
        opts.seed,
        start.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}

fn report_divergence(
    opts: &Options,
    case: u64,
    cs: u64,
    plan: &DesignPlan,
    schedule: &Schedule,
    divergence: &llhd_fuzz::Divergence,
) -> ExitCode {
    eprintln!(
        "DIVERGENCE at case {case} (seed {cs:#018x}) on {}: {} mismatch: {}",
        divergence.spec.label(),
        divergence.channel,
        divergence.detail
    );
    eprintln!("shrinking...");
    let matrix = opts.matrix.clone();
    let (small_plan, small_schedule, stats) = shrink_case(
        plan,
        schedule,
        |p, s| {
            let Ok((design, module)) = p.build() else {
                return false;
            };
            matches!(
                run_case(&module, &design, s, &matrix),
                Err(CaseFailure::Divergence(_))
            )
        },
        400,
    );
    eprintln!(
        "shrunk: {} accepted / {} attempts",
        stats.accepted, stats.attempts
    );
    let (small_design, _) = match small_plan.build() {
        Ok(built) => built,
        Err(_) => plan.build().expect("original plan built before"),
    };
    let artifact = Artifact::new(
        opts.seed,
        case,
        Some(divergence.spec),
        &format!("{} mismatch: {}", divergence.channel, divergence.detail),
        &small_design,
        &small_schedule,
    );
    if let Err(e) = std::fs::create_dir_all(&opts.artifact_dir) {
        eprintln!("internal: cannot create {}: {e}", opts.artifact_dir.display());
        return ExitCode::from(3);
    }
    let path = opts.artifact_dir.join(artifact.suggested_file_name());
    if let Err(e) = std::fs::write(&path, artifact.to_string()) {
        eprintln!("internal: cannot write {}: {e}", path.display());
        return ExitCode::from(3);
    }
    eprintln!("artifact: {}", path.display());
    eprintln!("replay:   cargo run --release -p llhd-fuzz --bin fuzz -- --replay {}", path.display());
    eprintln!(
        "          (or re-run the un-shrunk case: fuzz --seed {:#018x} --cases {})",
        opts.seed,
        case + 1
    );
    eprintln!(
        "promote:  cargo run --release -p llhd-fuzz --bin fuzz -- --promote {} # after the engine bug is fixed",
        path.display()
    );
    ExitCode::from(1)
}

fn replay_files(opts: &Options) -> ExitCode {
    let mut diverged = false;
    for path in &opts.replay {
        let artifact = match std::fs::read_to_string(path).map_err(|e| e.to_string()).and_then(|t| Artifact::parse(&t)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("internal: {}: {e}", path.display());
                return ExitCode::from(3);
            }
        };
        match artifact.replay(&opts.matrix) {
            Ok(_) => println!("{}: clean", path.display()),
            Err(CaseFailure::Generator(msg)) => {
                eprintln!("internal: {}: {msg}", path.display());
                return ExitCode::from(3);
            }
            Err(CaseFailure::Divergence(d)) => {
                eprintln!(
                    "{}: still diverges on {}: {} mismatch: {}",
                    path.display(),
                    d.spec.label(),
                    d.channel,
                    d.detail
                );
                diverged = true;
            }
        }
    }
    if diverged {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn promote_file(path: &Path, corpus_dir: &Path) -> ExitCode {
    let artifact = match std::fs::read_to_string(path).map_err(|e| e.to_string()).and_then(|t| Artifact::parse(&t)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("internal: {}: {e}", path.display());
            return ExitCode::from(3);
        }
    };
    match promote(&artifact, corpus_dir) {
        Ok(dest) => {
            println!("promoted {} -> {}", path.display(), dest.display());
            println!("commit it: the corpus test replays every .replay file there on each run");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("internal: promote failed: {e}");
            ExitCode::from(3)
        }
    }
}

/// Coverage predicate for `--pin`: the case touches a drive race, a
/// checkpoint cut, and a poke, and the whole matrix agrees on it.
fn covers(plan: &DesignPlan, schedule: &Schedule, matrix: &[EngineSpec]) -> bool {
    if !plan.clusters.iter().any(|c| !c.racers.is_empty()) {
        return false;
    }
    if schedule.checkpoints() == 0 || schedule.pokes() == 0 {
        return false;
    }
    let Ok((design, module)) = plan.build() else {
        return false;
    };
    run_case(&module, &design, schedule, matrix).is_ok()
}

fn pin_case(pin_seed: u64, out: &Path, matrix: &[EngineSpec]) -> ExitCode {
    // Scan forward from the requested seed for a covering case.
    let found = (0..4096u64).map(|i| case_seed(pin_seed, i)).find_map(|cs| {
        let plan = DesignPlan::generate(cs);
        let design = plan.emit();
        let schedule = Schedule::generate(cs ^ 0x5711_u64, &design);
        covers(&plan, &schedule, matrix).then_some((cs, plan, schedule))
    });
    let Some((cs, plan, schedule)) = found else {
        eprintln!("internal: no covering case within 4096 tries of seed {pin_seed:#018x}");
        return ExitCode::from(3);
    };
    println!("pinning case seed {cs:#018x} (from base {pin_seed:#018x})");
    let (small_plan, small_schedule, stats) = shrink_case(
        &plan,
        &schedule,
        |p, s| covers(p, s, matrix),
        400,
    );
    println!(
        "shrunk: {} accepted / {} attempts",
        stats.accepted, stats.attempts
    );
    let (design, _) = match small_plan.build() {
        Ok(built) => built,
        Err(e) => {
            eprintln!("internal: shrunk plan no longer builds: {e}");
            return ExitCode::from(3);
        }
    };
    let artifact = Artifact::new(
        pin_seed,
        0,
        None,
        "pinned coverage case: drive race + checkpoint cut + poke, all engines agree",
        &design,
        &small_schedule,
    );
    if let Some(parent) = out.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("internal: cannot create {}: {e}", parent.display());
                return ExitCode::from(3);
            }
        }
    }
    if let Err(e) = std::fs::write(out, artifact.to_string()) {
        eprintln!("internal: cannot write {}: {e}", out.display());
        return ExitCode::from(3);
    }
    println!("pinned artifact: {}", out.display());
    ExitCode::SUCCESS
}
