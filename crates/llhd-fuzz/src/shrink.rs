//! Divergence minimization.
//!
//! Shrinking operates on the *plan*, not on the emitted text: every
//! mutation (drop a cluster, clear the racers, un-nest, trim a unit,
//! shorten the schedule) re-emits through the generator, so each
//! candidate is a valid design by the same construction argument as the
//! original. The caller supplies the reproduction predicate — usually
//! "the differential matrix still diverges", but the pin workflow uses a
//! coverage predicate instead — and the shrinker greedily applies the
//! first accepted mutation until a whole pass over all mutations yields
//! nothing, or the attempt budget runs out.

use crate::gen::{DesignPlan, UnitPlan};
use crate::stim::{Schedule, StimOp};

/// Bookkeeping from one shrink run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShrinkStats {
    /// Predicate evaluations spent.
    pub attempts: usize,
    /// Mutations that kept the reproduction and were applied.
    pub accepted: usize,
}

/// Drop schedule ops that name signals the (mutated) design no longer
/// has, so plan-level shrinks don't leave dangling poke/peek targets.
fn sanitize(schedule: &Schedule, plan: &DesignPlan) -> Schedule {
    let design = plan.emit();
    let ops = schedule
        .ops
        .iter()
        .filter(|op| match op {
            StimOp::Poke { signal, .. } | StimOp::Peek { signal } => {
                design.signals.iter().any(|(name, _)| name == signal)
            }
            _ => true,
        })
        .cloned()
        .collect();
    Schedule { ops }
}

/// All single-step plan mutations, smallest-result-first per category.
fn plan_candidates(plan: &DesignPlan) -> Vec<DesignPlan> {
    let mut out = Vec::new();
    if plan.clusters.len() > 1 {
        for i in 0..plan.clusters.len() {
            let mut p = plan.clone();
            p.clusters.remove(i);
            out.push(p);
        }
    }
    for (i, c) in plan.clusters.iter().enumerate() {
        if !c.racers.is_empty() {
            let mut p = plan.clone();
            p.clusters[i].racers.clear();
            out.push(p);
        }
        if c.nested {
            let mut p = plan.clone();
            p.clusters[i].nested = false;
            out.push(p);
        }
        if c.units.len() > 1 {
            for j in 0..c.units.len() {
                let mut p = plan.clone();
                p.clusters[i].units.remove(j);
                out.push(p);
            }
        }
        for (j, unit) in c.units.iter().enumerate() {
            match unit {
                UnitPlan::Comb {
                    ops,
                    mix_race,
                    mux_tail,
                } => {
                    if ops.len() > 1 {
                        let mut p = plan.clone();
                        if let UnitPlan::Comb { ops, .. } = &mut p.clusters[i].units[j] {
                            ops.truncate(ops.len() / 2);
                        }
                        out.push(p);
                    }
                    if *mux_tail {
                        let mut p = plan.clone();
                        if let UnitPlan::Comb { mux_tail, .. } = &mut p.clusters[i].units[j] {
                            *mux_tail = false;
                        }
                        out.push(p);
                    }
                    if *mix_race {
                        let mut p = plan.clone();
                        if let UnitPlan::Comb { mix_race, .. } = &mut p.clusters[i].units[j] {
                            *mix_race = false;
                        }
                        out.push(p);
                    }
                }
                UnitPlan::Pipe { taps, .. } => {
                    if *taps > 1 {
                        let mut p = plan.clone();
                        if let UnitPlan::Pipe { taps, weights } = &mut p.clusters[i].units[j] {
                            *taps /= 2;
                            weights.truncate(*taps);
                        }
                        out.push(p);
                    }
                }
                UnitPlan::Reg => {}
            }
        }
    }
    out
}

/// All single-step schedule mutations: chunk removals from coarse to
/// fine, then step-count halving.
fn schedule_candidates(schedule: &Schedule) -> Vec<Schedule> {
    let mut out = Vec::new();
    let n = schedule.ops.len();
    if n == 0 {
        return out;
    }
    let mut chunk = (n / 2).max(1);
    while chunk >= 1 {
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let mut s = schedule.clone();
            s.ops.drain(start..end);
            out.push(s);
            start += chunk;
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    for (i, op) in schedule.ops.iter().enumerate() {
        if let StimOp::Step { cycles } = op {
            if *cycles > 1 {
                let mut s = schedule.clone();
                s.ops[i] = StimOp::Step { cycles: cycles / 2 };
                out.push(s);
            }
        }
    }
    out
}

/// Greedily minimize `(plan, schedule)` while `repro` keeps returning
/// `true`. Runs mutation passes to fixpoint or until `max_attempts`
/// predicate evaluations are spent (each evaluation typically replays
/// the full engine matrix, so the budget bounds wall-clock).
pub fn shrink_case(
    plan: &DesignPlan,
    schedule: &Schedule,
    mut repro: impl FnMut(&DesignPlan, &Schedule) -> bool,
    max_attempts: usize,
) -> (DesignPlan, Schedule, ShrinkStats) {
    let mut best_plan = plan.clone();
    let mut best_schedule = schedule.clone();
    let mut stats = ShrinkStats::default();
    loop {
        let mut improved = false;
        let candidates: Vec<(DesignPlan, Schedule)> = plan_candidates(&best_plan)
            .into_iter()
            .map(|p| {
                let s = sanitize(&best_schedule, &p);
                (p, s)
            })
            .chain(
                schedule_candidates(&best_schedule)
                    .into_iter()
                    .map(|s| (best_plan.clone(), s)),
            )
            .collect();
        for (p, s) in candidates {
            if stats.attempts >= max_attempts {
                return (best_plan, best_schedule, stats);
            }
            stats.attempts += 1;
            if repro(&p, &s) {
                stats.accepted += 1;
                best_plan = p;
                best_schedule = s;
                improved = true;
                break;
            }
        }
        if !improved {
            return (best_plan, best_schedule, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stim::Schedule;

    /// Shrinking against an always-true predicate must reach the global
    /// minimum: one cluster, one unit, no racers, no nesting, an empty
    /// schedule.
    #[test]
    fn shrinks_to_minimum_under_always_true() {
        // A seed with at least two clusters makes the pass non-trivial.
        let plan = (0..64)
            .map(DesignPlan::generate)
            .find(|p| p.clusters.len() >= 2)
            .expect("some seed has >=2 clusters");
        let design = plan.emit();
        let schedule = Schedule::generate(5, &design);
        let (small_plan, small_schedule, stats) =
            shrink_case(&plan, &schedule, |_, _| true, 10_000);
        assert_eq!(small_plan.clusters.len(), 1);
        let c = &small_plan.clusters[0];
        assert_eq!(c.units.len(), 1);
        assert!(c.racers.is_empty());
        assert!(!c.nested);
        assert!(small_schedule.ops.is_empty());
        assert!(stats.accepted > 0);
        // The shrunk plan must still emit a buildable design.
        small_plan.build().expect("shrunk plan still builds");
    }

    /// A predicate that pins a property (cluster 1 must survive) is
    /// respected, and the surviving cluster keeps its stable id so
    /// schedule targets keep resolving.
    #[test]
    fn respects_predicate_and_stable_ids() {
        let plan = (0..64)
            .map(DesignPlan::generate)
            .find(|p| p.clusters.len() >= 2)
            .unwrap();
        let (small, _, _) = shrink_case(
            &plan,
            &Schedule::default(),
            |p, _| p.clusters.iter().any(|c| c.id == 1),
            10_000,
        );
        assert!(small.clusters.iter().any(|c| c.id == 1));
        // Emission uses the preserved id, not the vector position.
        let design = small.emit();
        assert!(design.signals.iter().any(|(n, _)| n.starts_with("c1_")));
    }
}
