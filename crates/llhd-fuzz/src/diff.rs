//! The differential driver: run one case on every engine variant in
//! lockstep and demand byte-identical observations.
//!
//! The reference is the interpreter at one thread. Every other variant —
//! interpreter at higher thread counts, blaze under each
//! [`BlazeOptions`] knob combination and thread count — must match it on
//! four channels at once:
//!
//! * the interned trace event stream
//!   ([`Trace::events`](llhd_sim::Trace::events)),
//! * the rendered VCD (catches serialization-order drift the event
//!   comparison can't),
//! * the result statistics (signal changes, end time, halted processes,
//!   assertion counts — activations are excluded: the two execution
//!   strategies legitimately count entity evaluations differently),
//! * the mid-run peek log produced by the stimulus schedule.
//!
//! Checkpoint cuts are executed *per variant*: the engine serializes,
//! a fresh engine of the same kind is built, restored into, and the run
//! continues there — so restore correctness is fuzzed on every variant
//! that draws a `Checkpoint` op.

use crate::gen::FuzzDesign;
use crate::stim::{mask, Schedule, StimOp};
use llhd::ir::Module;
use llhd::value::ConstValue;
use llhd_blaze::{compile_design_with, BlazeOptions, BlazeSimulator, CompiledDesign};
use llhd_sim::api::Engine;
use llhd_sim::{elaborate, ElaboratedDesign, SimConfig, Simulator};
use std::collections::HashMap;
use std::sync::Arc;

/// One engine variant in the comparison matrix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineSpec {
    /// The reference interpreter.
    Interp { threads: usize },
    /// The blaze compiled engine under explicit lowering knobs.
    Blaze {
        fuse: bool,
        specialize: bool,
        islands: bool,
        threads: usize,
    },
}

impl EngineSpec {
    /// A stable, parseable label: `interp:t1`, `blaze:fsi:t4`,
    /// `blaze:f--:t1` (one letter per enabled knob, `-` when off).
    pub fn label(&self) -> String {
        match self {
            EngineSpec::Interp { threads } => format!("interp:t{threads}"),
            EngineSpec::Blaze {
                fuse,
                specialize,
                islands,
                threads,
            } => format!(
                "blaze:{}{}{}:t{}",
                if *fuse { 'f' } else { '-' },
                if *specialize { 's' } else { '-' },
                if *islands { 'i' } else { '-' },
                threads
            ),
        }
    }

    /// Parse a [`label`](EngineSpec::label) back into a spec.
    pub fn parse(label: &str) -> Option<EngineSpec> {
        let mut parts = label.split(':');
        match (parts.next()?, parts.next()?, parts.next()) {
            ("interp", t, None) => Some(EngineSpec::Interp {
                threads: t.strip_prefix('t')?.parse().ok()?,
            }),
            ("blaze", knobs, Some(t)) => {
                let bytes = knobs.as_bytes();
                if bytes.len() != 3 {
                    return None;
                }
                Some(EngineSpec::Blaze {
                    fuse: bytes[0] == b'f',
                    specialize: bytes[1] == b's',
                    islands: bytes[2] == b'i',
                    threads: t.strip_prefix('t')?.parse().ok()?,
                })
            }
            _ => None,
        }
    }

    fn blaze_options(&self) -> Option<BlazeOptions> {
        match self {
            EngineSpec::Interp { .. } => None,
            EngineSpec::Blaze {
                fuse,
                specialize,
                islands,
                ..
            } => Some(BlazeOptions {
                fuse: *fuse,
                specialize: *specialize,
                islands: *islands,
            }),
        }
    }

    fn threads(&self) -> usize {
        match self {
            EngineSpec::Interp { threads } | EngineSpec::Blaze { threads, .. } => *threads,
        }
    }
}

/// The reference variant every other spec is compared against.
pub const REFERENCE: EngineSpec = EngineSpec::Interp { threads: 1 };

/// The default comparison matrix (beyond [`REFERENCE`]): interpreter
/// parallelism, the full blaze pipeline at three thread counts, and each
/// lowering knob ablated on one thread — ten runs per case in total.
pub fn default_matrix() -> Vec<EngineSpec> {
    let blaze = |fuse, specialize, islands, threads| EngineSpec::Blaze {
        fuse,
        specialize,
        islands,
        threads,
    };
    vec![
        EngineSpec::Interp { threads: 2 },
        EngineSpec::Interp { threads: 4 },
        blaze(true, true, true, 1),
        blaze(true, true, true, 2),
        blaze(true, true, true, 4),
        blaze(false, true, true, 1),
        blaze(true, false, true, 1),
        blaze(false, false, false, 1),
        blaze(true, true, false, 2),
    ]
}

/// Everything observed while running one variant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunRecord {
    pub events: Vec<llhd_sim::TraceEvent>,
    pub vcd: String,
    pub signal_changes: usize,
    pub end_time_fs: u128,
    pub halted_processes: usize,
    pub assertions_checked: usize,
    pub assertion_failures: usize,
    /// Values observed by the schedule's `Peek` ops, in order.
    pub peeks: Vec<ConstValue>,
}

/// A confirmed mismatch between the reference and one variant.
#[derive(Clone, Debug)]
pub struct Divergence {
    pub spec: EngineSpec,
    /// Which observation channel disagreed first.
    pub channel: String,
    /// A short human-readable summary of the first difference.
    pub detail: String,
}

/// Why a case did not come back clean.
#[derive(Clone, Debug)]
pub enum CaseFailure {
    /// The generated design itself is broken (parse/verify/elaborate/
    /// compile/run error) — a bug in the *fuzzer*, reported distinctly
    /// from engine divergence.
    Generator(String),
    /// Two engines disagreed: the actual fuzz finding.
    Divergence(Divergence),
}

impl std::fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaseFailure::Generator(msg) => write!(f, "generator bug: {msg}"),
            CaseFailure::Divergence(d) => write!(
                f,
                "divergence on {}: {} mismatch: {}",
                d.spec.label(),
                d.channel,
                d.detail
            ),
        }
    }
}

/// Run `schedule` against one engine variant of `(module, design)`.
///
/// # Errors
///
/// Returns a message when compilation, stepping, or checkpoint/restore
/// fails — a generator or engine bug, not a divergence.
pub fn run_spec(
    spec: EngineSpec,
    module: &Module,
    design: &FuzzDesign,
    elaborated: &Arc<ElaboratedDesign>,
    compiled_cache: &mut HashMap<(bool, bool, bool), Arc<CompiledDesign>>,
    schedule: &Schedule,
) -> Result<RunRecord, String> {
    let config = || {
        SimConfig::until_nanos(design.until_ns)
            .with_threads(spec.threads())
    };
    // The factory is how checkpoint cuts rebuild a fresh engine of the
    // same kind mid-run.
    let compiled = match spec.blaze_options() {
        Some(options) => {
            let key = (options.fuse, options.specialize, options.islands);
            Some(match compiled_cache.get(&key) {
                Some(c) => c.clone(),
                None => {
                    let c = Arc::new(
                        compile_design_with(module, elaborated.clone(), options)
                            .map_err(|e| format!("compile ({}): {e:?}", spec.label()))?,
                    );
                    compiled_cache.insert(key, c.clone());
                    c
                }
            })
        }
        None => None,
    };
    let make_engine = || -> Box<dyn Engine + '_> {
        match &compiled {
            Some(c) => Box::new(BlazeSimulator::new(c.clone(), config())),
            None => Box::new(Simulator::new(module, elaborated.clone(), config())),
        }
    };
    let mut engine = make_engine();
    engine
        .initialize()
        .map_err(|e| format!("initialize ({}): {e}", spec.label()))?;
    let mut peeks = Vec::new();
    let mut exhausted = false;
    for op in &schedule.ops {
        match op {
            StimOp::Step { cycles } => {
                for _ in 0..*cycles {
                    if exhausted {
                        break;
                    }
                    exhausted = !engine
                        .step()
                        .map_err(|e| format!("step ({}): {e}", spec.label()))?;
                }
            }
            StimOp::Poke {
                signal,
                width,
                value,
            } => {
                let id = elaborated
                    .signal_by_name(signal)
                    .ok_or_else(|| format!("poke target {signal} does not resolve"))?;
                engine.poke(id, ConstValue::int(*width, mask(*value, *width)));
            }
            StimOp::Peek { signal } => {
                let id = elaborated
                    .signal_by_name(signal)
                    .ok_or_else(|| format!("peek target {signal} does not resolve"))?;
                peeks.push(engine.peek(id));
            }
            StimOp::Checkpoint => {
                if exhausted {
                    continue;
                }
                let state = engine
                    .checkpoint()
                    .map_err(|e| format!("checkpoint ({}): {e}", spec.label()))?;
                // The checkpoint carries the undrained trace and all
                // counters, so the restored engine's `finish` reports
                // the whole run as if never cut.
                let mut fresh = make_engine();
                fresh
                    .restore(&state)
                    .map_err(|e| format!("restore ({}): {e}", spec.label()))?;
                engine = fresh;
            }
        }
    }
    while !exhausted {
        exhausted = !engine
            .step()
            .map_err(|e| format!("tail step ({}): {e}", spec.label()))?;
    }
    let result = engine.finish();
    Ok(RunRecord {
        vcd: result.trace.to_vcd("1fs"),
        events: result.trace.events().to_vec(),
        signal_changes: result.signal_changes,
        end_time_fs: result.end_time.as_femtos(),
        halted_processes: result.halted_processes,
        assertions_checked: result.assertions_checked,
        assertion_failures: result.assertion_failures,
        peeks,
    })
}

/// Compare a variant's record against the reference; `None` means they
/// agree on every channel.
pub fn compare(spec: EngineSpec, reference: &RunRecord, candidate: &RunRecord) -> Option<Divergence> {
    let diverge = |channel: &str, detail: String| {
        Some(Divergence {
            spec,
            channel: channel.to_string(),
            detail,
        })
    };
    if candidate.events != reference.events {
        let at = reference
            .events
            .iter()
            .zip(&candidate.events)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| reference.events.len().min(candidate.events.len()));
        return diverge(
            "trace",
            format!(
                "first mismatch at event {at} (ref {} events, got {}): ref {:?} vs {:?}",
                reference.events.len(),
                candidate.events.len(),
                reference.events.get(at),
                candidate.events.get(at)
            ),
        );
    }
    if candidate.vcd != reference.vcd {
        return diverge("vcd", "VCD serialization differs".to_string());
    }
    if candidate.peeks != reference.peeks {
        let at = reference
            .peeks
            .iter()
            .zip(&candidate.peeks)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| reference.peeks.len().min(candidate.peeks.len()));
        return diverge(
            "peeks",
            format!(
                "peek {at}: ref {:?} vs {:?}",
                reference.peeks.get(at),
                candidate.peeks.get(at)
            ),
        );
    }
    let stats = |r: &RunRecord| {
        (
            r.signal_changes,
            r.end_time_fs,
            r.halted_processes,
            r.assertions_checked,
            r.assertion_failures,
        )
    };
    if stats(candidate) != stats(reference) {
        return diverge(
            "stats",
            format!("ref {:?} vs {:?}", stats(reference), stats(candidate)),
        );
    }
    None
}

/// Run one full case: the reference plus every variant in `matrix`,
/// comparing each against the reference.
///
/// # Errors
///
/// [`CaseFailure::Generator`] when the design itself fails to build or
/// run; [`CaseFailure::Divergence`] on the first variant that disagrees.
pub fn run_case(
    module: &Module,
    design: &FuzzDesign,
    schedule: &Schedule,
    matrix: &[EngineSpec],
) -> Result<RunRecord, CaseFailure> {
    let elaborated = Arc::new(
        elaborate(module, &design.top)
            .map_err(|e| CaseFailure::Generator(format!("elaborate: {e:?}")))?,
    );
    let mut cache = HashMap::new();
    let reference = run_spec(REFERENCE, module, design, &elaborated, &mut cache, schedule)
        .map_err(CaseFailure::Generator)?;
    for &spec in matrix {
        let record = run_spec(spec, module, design, &elaborated, &mut cache, schedule)
            .map_err(CaseFailure::Generator)?;
        if let Some(divergence) = compare(spec, &reference, &record) {
            return Err(CaseFailure::Divergence(divergence));
        }
    }
    Ok(reference)
}

/// [`run_case`] from source text (the replay-artifact entry point).
///
/// # Errors
///
/// Parse failures are reported as [`CaseFailure::Generator`].
pub fn run_matrix(
    source: &str,
    design: &FuzzDesign,
    schedule: &Schedule,
    matrix: &[EngineSpec],
) -> Result<RunRecord, CaseFailure> {
    let module = llhd::assembly::parse_module(source)
        .map_err(|e| CaseFailure::Generator(format!("parse: {e}")))?;
    run_case(&module, design, schedule, matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::DesignPlan;
    use crate::Schedule;

    #[test]
    fn labels_round_trip() {
        for spec in default_matrix().into_iter().chain([REFERENCE]) {
            assert_eq!(EngineSpec::parse(&spec.label()), Some(spec));
        }
        assert_eq!(EngineSpec::parse("nonsense"), None);
        assert_eq!(EngineSpec::parse("blaze:xx:t1"), None);
    }

    /// A handful of full cases through the complete default matrix: the
    /// crate's own end-to-end smoke test.
    #[test]
    fn small_seed_sweep_is_clean() {
        let matrix = default_matrix();
        for seed in 0..6u64 {
            let plan = DesignPlan::generate(seed);
            let (design, module) = plan.build().unwrap();
            let schedule = Schedule::generate(seed ^ 0xdead_beef, &design);
            run_case(&module, &design, &schedule, &matrix)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
