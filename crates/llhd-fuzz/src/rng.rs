//! The fuzzer's deterministic random source.
//!
//! Same xorshift64* family as `llhd_workspace::propcheck::Rng` and the
//! generator in `llhd-designs`, re-implemented here so the fuzz crate
//! depends only on the engines it tests (the umbrella crate depends on
//! everything, which would make `llhd-designs`' dev-dependency on this
//! crate a heavyweight cycle). Determinism and platform stability are
//! the only quality bars that matter: every draw must be identical for
//! a given seed on every machine, or replay-from-seed is a lie.

/// Deterministic xorshift64* generator.
#[derive(Clone, Debug)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Create a generator from a seed (zero is remapped — a zero state
    /// is the xorshift fixed point).
    pub fn new(seed: u64) -> Self {
        FuzzRng {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.u64();
        }
        // Modulo bias is negligible at fuzz-input spans.
        lo + self.u64() % (span + 1)
    }

    /// Uniform `usize` in the inclusive range `lo..=hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    /// `true` with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.range(0, 99) < percent
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = FuzzRng::new(42);
        let mut b = FuzzRng::new(42);
        for _ in 0..256 {
            assert_eq!(a.u64(), b.u64());
        }
        let mut c = FuzzRng::new(43);
        assert_ne!(FuzzRng::new(42).u64(), c.u64());
    }

    #[test]
    fn ranges_hold() {
        let mut rng = FuzzRng::new(1);
        for _ in 0..1000 {
            let v = rng.range(3, 9);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(rng.range(5, 5), 5);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = FuzzRng::new(0);
        let first = rng.u64();
        let second = rng.u64();
        assert_ne!(first, second);
    }
}
