//! # llhd-fuzz — differential fuzzing of the LLHD simulation engines
//!
//! The repository's core correctness claim is that every execution
//! strategy over the same design — the reference interpreter, the blaze
//! compiled engine under any [`BlazeOptions`](llhd_blaze::BlazeOptions)
//! knob combination, at any thread count, across any checkpoint/restore
//! cut — produces the **byte-identical** trace. The curated benchmark
//! corpus pins that claim on ten designs; this crate pins it on an
//! unbounded stream of generated ones.
//!
//! Four pieces, each replayable from a single `u64` seed:
//!
//! * [`gen`] — a seeded random-design generator that emits valid,
//!   elaboratable LLHD modules *by construction*: random mixes of
//!   processes, combinational and register entities, nested
//!   instantiation, wait sensitivities, multi-driver same-timestamp
//!   drive races, and the exact op shapes the blaze superinstruction
//!   fuser targets (compare+branch, array+mux, compute+drive).
//! * [`stim`] — a constrained-random stimulus schedule over the
//!   engines' step/peek/poke surface, including checkpoint/restore at
//!   random cut points.
//! * [`diff`] — the differential driver: one case runs the reference
//!   interpreter and a configurable matrix of engine variants in
//!   lockstep and compares traces, VCD serializations, statistics, and
//!   peek logs byte for byte.
//! * [`shrink`] + [`artifact`] — on divergence, minimize the design and
//!   the schedule while the mismatch reproduces, then emit a
//!   self-contained replay artifact that can be promoted into the
//!   committed regression corpus (`crates/llhd-designs/tests/corpus/`).
//!
//! The `fuzz` binary wires it all together; `ci.sh` runs it with a
//! fixed seed as a smoke gate. See ARCHITECTURE.md, "Differential
//! fuzzing".

pub mod artifact;
pub mod diff;
pub mod gen;
pub mod rng;
pub mod shrink;
pub mod stim;

pub use artifact::{promote, Artifact};
pub use diff::{default_matrix, run_case, run_matrix, CaseFailure, Divergence, EngineSpec};
pub use gen::{DesignPlan, FuzzDesign};
pub use rng::FuzzRng;
pub use shrink::{shrink_case, ShrinkStats};
pub use stim::{Schedule, StimOp};

/// Derive the per-case seed from a base seed and a case index
/// (splitmix64 over the pair, so neighbouring cases are decorrelated
/// but every case is reachable from the one `--seed` a user passes).
pub fn case_seed(base: u64, case: u64) -> u64 {
    let mut z = base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_distinct_and_deterministic() {
        let a = case_seed(7, 0);
        let b = case_seed(7, 1);
        assert_ne!(a, b);
        assert_eq!(case_seed(7, 1), b);
        assert_ne!(case_seed(8, 0), a);
    }
}
