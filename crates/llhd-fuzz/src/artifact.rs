//! Self-contained replay artifacts and the promotion path.
//!
//! An artifact is one file that reproduces one fuzz case with *nothing*
//! else: the (usually shrunk) design source, the stimulus schedule, the
//! run horizon, and the provenance (seed, case index, the variant that
//! diverged, why). The format is line-oriented plain text so artifacts
//! diff cleanly in review and can be written by hand:
//!
//! ```text
//! # llhd-fuzz replay artifact
//! format 1
//! seed 0x000000000000002a
//! case 17
//! spec blaze:fsi:t4
//! reason trace mismatch at event 5
//! until_ns 154
//! top fuzz_top
//! schedule step 12
//! schedule poke c0_race 16 4660
//! schedule peek c0_l1
//! schedule checkpoint
//! design:
//! <raw LLHD assembly to end of file>
//! ```
//!
//! Promotion copies an artifact into the committed regression corpus
//! (`crates/llhd-designs/tests/corpus/`), where the corpus test replays
//! every `.replay` file across the full engine matrix on every CI run —
//! the loop that turns a fuzz finding into a permanent regression test.

use crate::diff::{run_matrix, CaseFailure, EngineSpec, RunRecord};
use crate::gen::FuzzDesign;
use crate::stim::{mask, Schedule, StimOp};
use std::fmt;
use std::path::{Path, PathBuf};

/// The artifact format version this build reads and writes.
pub const FORMAT: u32 = 1;

/// One self-contained, replayable fuzz case.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Artifact {
    /// The base seed of the fuzz run that found the case.
    pub seed: u64,
    /// The case index within that run.
    pub case: u64,
    /// The engine variant that diverged (label), if any.
    pub spec: Option<String>,
    /// Why the artifact exists (divergence summary, or the pin reason).
    pub reason: String,
    /// The simulation horizon in nanoseconds.
    pub until_ns: u128,
    /// The top entity name.
    pub top: String,
    /// The stimulus schedule.
    pub schedule: Schedule,
    /// The LLHD assembly of the (shrunk) design.
    pub source: String,
}

impl Artifact {
    /// Assemble an artifact from a case's pieces. `reason` is flattened
    /// to one line (the format is line-oriented).
    pub fn new(
        seed: u64,
        case: u64,
        spec: Option<EngineSpec>,
        reason: &str,
        design: &FuzzDesign,
        schedule: &Schedule,
    ) -> Artifact {
        Artifact {
            seed,
            case,
            spec: spec.map(|s| s.label()),
            reason: reason.replace('\n', "; "),
            until_ns: design.until_ns,
            top: design.top.clone(),
            schedule: schedule.clone(),
            source: design.source.clone(),
        }
    }

    /// Parse the text form produced by [`Display`](fmt::Display).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Artifact, String> {
        let mut seed = None;
        let mut case = 0u64;
        let mut spec = None;
        let mut reason = String::new();
        let mut until_ns = None;
        let mut top = None;
        let mut ops = Vec::new();
        let mut lines = text.lines();
        let mut consumed = 0usize;
        for line in lines.by_ref() {
            consumed += line.len() + 1;
            let line = line.trim_end();
            if line == "design:" {
                let seed = seed.ok_or("missing 'seed' line")?;
                let until_ns = until_ns.ok_or("missing 'until_ns' line")?;
                let top = top.ok_or("missing 'top' line")?;
                return Ok(Artifact {
                    seed,
                    case,
                    spec,
                    reason,
                    until_ns,
                    top,
                    schedule: Schedule { ops },
                    source: text[consumed.min(text.len())..].to_string(),
                });
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "format" => {
                    let v: u32 = rest.parse().map_err(|_| format!("bad format: {rest}"))?;
                    if v != FORMAT {
                        return Err(format!("unsupported artifact format {v}"));
                    }
                }
                "seed" => {
                    seed = Some(parse_u64(rest).ok_or_else(|| format!("bad seed: {rest}"))?);
                }
                "case" => {
                    case = rest.parse().map_err(|_| format!("bad case: {rest}"))?;
                }
                "spec" => spec = Some(rest.to_string()),
                "reason" => reason = rest.to_string(),
                "until_ns" => {
                    until_ns = Some(rest.parse().map_err(|_| format!("bad until_ns: {rest}"))?);
                }
                "top" => top = Some(rest.to_string()),
                "schedule" => ops.push(parse_op(rest)?),
                other => return Err(format!("unknown key: {other}")),
            }
        }
        Err("missing 'design:' section".to_string())
    }

    /// The [`FuzzDesign`] view of the artifact, for the differential
    /// driver. The signal list is empty — replay resolves poke/peek
    /// targets from the schedule by name, and no new stimulus is drawn.
    pub fn design(&self) -> FuzzDesign {
        FuzzDesign {
            name: format!("replay-s{:#018x}", self.seed),
            source: self.source.clone(),
            top: self.top.clone(),
            signals: Vec::new(),
            until_ns: self.until_ns,
            min_islands: 1,
        }
    }

    /// Replay the artifact across `matrix` (reference plus variants).
    ///
    /// # Errors
    ///
    /// Exactly [`run_matrix`]'s failures: a [`CaseFailure::Divergence`]
    /// means the artifact still reproduces its finding.
    pub fn replay(&self, matrix: &[EngineSpec]) -> Result<RunRecord, CaseFailure> {
        run_matrix(&self.source, &self.design(), &self.schedule, matrix)
    }

    /// The canonical file name: `s<seed hex>-c<case>.replay`.
    pub fn suggested_file_name(&self) -> String {
        format!("s{:016x}-c{}.replay", self.seed, self.case)
    }
}

impl fmt::Display for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# llhd-fuzz replay artifact")?;
        writeln!(f, "format {FORMAT}")?;
        writeln!(f, "seed {:#018x}", self.seed)?;
        writeln!(f, "case {}", self.case)?;
        if let Some(spec) = &self.spec {
            writeln!(f, "spec {spec}")?;
        }
        if !self.reason.is_empty() {
            writeln!(f, "reason {}", self.reason)?;
        }
        writeln!(f, "until_ns {}", self.until_ns)?;
        writeln!(f, "top {}", self.top)?;
        for op in &self.schedule.ops {
            match op {
                StimOp::Step { cycles } => writeln!(f, "schedule step {cycles}")?,
                StimOp::Poke {
                    signal,
                    width,
                    value,
                } => writeln!(f, "schedule poke {signal} {width} {value}")?,
                StimOp::Peek { signal } => writeln!(f, "schedule peek {signal}")?,
                StimOp::Checkpoint => writeln!(f, "schedule checkpoint")?,
            }
        }
        writeln!(f, "design:")?;
        f.write_str(&self.source)
    }
}

/// Parse `0x…` hex or decimal.
fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_op(rest: &str) -> Result<StimOp, String> {
    let mut parts = rest.split_whitespace();
    let bad = || format!("bad schedule op: {rest}");
    match parts.next() {
        Some("step") => Ok(StimOp::Step {
            cycles: parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?,
        }),
        Some("poke") => {
            let signal = parts.next().ok_or_else(bad)?.to_string();
            let width: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
            let value = parts.next().and_then(parse_u64).ok_or_else(bad)?;
            Ok(StimOp::Poke {
                signal,
                width,
                value: mask(value, width),
            })
        }
        Some("peek") => Ok(StimOp::Peek {
            signal: parts.next().ok_or_else(bad)?.to_string(),
        }),
        Some("checkpoint") => Ok(StimOp::Checkpoint),
        _ => Err(bad()),
    }
}

/// Copy an artifact into a regression corpus directory, creating it if
/// needed. Returns the path written. This is the promotion step: the
/// corpus test (`crates/llhd-designs/tests/corpus.rs`) replays every
/// `.replay` file there on every run.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn promote(artifact: &Artifact, corpus_dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(corpus_dir)?;
    let path = corpus_dir.join(artifact.suggested_file_name());
    std::fs::write(&path, artifact.to_string())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::DesignPlan;

    fn sample() -> Artifact {
        let (design, _) = DesignPlan::generate(7).build().unwrap();
        let schedule = Schedule::generate(8, &design);
        Artifact::new(
            7,
            3,
            Some(EngineSpec::Blaze {
                fuse: true,
                specialize: true,
                islands: true,
                threads: 4,
            }),
            "trace mismatch\nat event 5",
            &design,
            &schedule,
        )
    }

    #[test]
    fn text_round_trips() {
        let artifact = sample();
        let text = artifact.to_string();
        let parsed = Artifact::parse(&text).unwrap();
        assert_eq!(parsed, artifact);
        // Multiline reasons were flattened at construction.
        assert_eq!(artifact.reason, "trace mismatch; at event 5");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Artifact::parse("").is_err());
        assert!(Artifact::parse("format 99\ndesign:\n").is_err());
        assert!(Artifact::parse("seed zzz\ndesign:\n").is_err());
        let no_design = "format 1\nseed 0x1\nuntil_ns 10\ntop t\n";
        assert!(Artifact::parse(no_design).unwrap_err().contains("design:"));
    }

    #[test]
    fn replay_runs_the_matrix() {
        let artifact = sample();
        let record = artifact
            .replay(&crate::diff::default_matrix())
            .expect("seed 7 replays clean");
        assert!(!record.events.is_empty());
    }

    #[test]
    fn promote_writes_the_canonical_file() {
        let artifact = sample();
        let dir = std::env::temp_dir().join(format!("llhd-fuzz-promote-{}", std::process::id()));
        let path = promote(&artifact, &dir).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "s0000000000000007-c3.replay"
        );
        let back = Artifact::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, artifact);
        std::fs::remove_dir_all(&dir).ok();
    }
}
