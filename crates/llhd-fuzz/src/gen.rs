//! Seeded random-design generation.
//!
//! A design is generated in two stages: seed → [`DesignPlan`] (a small
//! structured description) → LLHD assembly. The plan is the unit of
//! shrinking — dropping a cluster or a unit from the plan and re-emitting
//! always yields a *valid* module, which text-level mutation cannot
//! guarantee.
//!
//! Every plan emits a design that is valid and elaboratable **by
//! construction**:
//!
//! * signals are declared before use and every name is globally unique,
//! * process CFGs are well-formed (every block terminated, entry first),
//! * combinational chains are acyclic (unit *j* reads link *j*, drives
//!   link *j+1*), so zero-delay re-evaluation always settles,
//! * port and value types line up everywhere.
//!
//! The randomness is spent where the engines differ most, deliberately
//! biased toward the machinery recent PRs added:
//!
//! * **fusable op pairs** for the superinstruction lowering — posedge
//!   detection compiles to the compare+branch shape, combinational tails
//!   to array+mux, and every unit output to compute+drive;
//! * **multi-island topologies** — clusters share nothing, so a plan with
//!   *k* clusters partitions into *k* islands (plus the top shell), the
//!   shape the island-parallel instant loop keys on;
//! * **same-timestamp drive races** — each cluster's `race` signal is
//!   driven by the stimulus process *and* 0–2 racer processes in the same
//!   physical instant, exercising the scheduler's documented
//!   last-writer-wins resolution;
//! * **nested instantiation** — a cluster's datapath is optionally wrapped
//!   in an inner entity, so hierarchy flattening gets fuzzed too.

use crate::rng::FuzzRng;
use llhd::ir::Module;
use std::fmt::Write as _;

/// The binary operators the generator composes chains from. All of them
/// are supported by both engines and proven in the curated corpus.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
}

impl BinOp {
    fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
        }
    }

    const ALL: [BinOp; 5] = [BinOp::Add, BinOp::Sub, BinOp::And, BinOp::Or, BinOp::Xor];
}

/// One datapath unit inside a cluster. Unit *j* reads link *j* and drives
/// link *j+1*.
#[derive(Clone, Debug)]
pub enum UnitPlan {
    /// A combinational entity: probe the input link, fold a chain of
    /// binary ops over seeded constants (optionally mixing in the race
    /// signal), optionally select the result through an array+mux tail
    /// (the blaze `Sel` fusion shape), and drive the output with zero
    /// delay (the compute+drive fusion shape).
    Comb {
        ops: Vec<(BinOp, u64)>,
        mix_race: bool,
        mux_tail: bool,
    },
    /// A register entity: `reg ... rise clk` — the storage primitive.
    Reg,
    /// A behavioural pipeline process: wait on the clock, detect the
    /// rising edge (the compare+branch fusion shape), shift a `taps`-deep
    /// variable delay line, and drive a weighted sum.
    Pipe { taps: usize, weights: Vec<u64> },
}

/// One independent cluster: a stimulus process, optional racer processes
/// on the shared `race` signal, and a chain of datapath units. Clusters
/// share nothing, so each is one sensitivity island.
#[derive(Clone, Debug)]
pub struct ClusterPlan {
    /// Stable identity used in names; survives shrinking (removing
    /// cluster 1 must not rename cluster 2's signals, or a shrunk
    /// schedule would stop resolving).
    pub id: usize,
    /// Data width of the cluster's links and race signal (8/16/32).
    pub width: usize,
    /// Half-period of the cluster's clock in nanoseconds (1..=3).
    pub clock_half_ns: u64,
    /// The stimulus counter increment.
    pub stim_inc: u64,
    /// Counter decrements of the extra same-timestamp racers (0..=2).
    pub racers: Vec<u64>,
    /// Wrap the datapath units in an inner entity (nested instantiation).
    pub nested: bool,
    /// The datapath chain, in link order.
    pub units: Vec<UnitPlan>,
}

/// A structured, shrinkable description of one generated design.
#[derive(Clone, Debug)]
pub struct DesignPlan {
    /// The seed the plan was generated from (provenance only; emission
    /// depends solely on the plan's contents).
    pub seed: u64,
    pub clusters: Vec<ClusterPlan>,
}

/// An emitted design: source plus the metadata the stimulus driver and
/// the differential runner need.
#[derive(Clone, Debug)]
pub struct FuzzDesign {
    /// `fuzz-s<seed in hex>` (provenance; shrunk designs keep the name).
    pub name: String,
    /// The LLHD assembly.
    pub source: String,
    /// The top-level entity: always `fuzz_top`.
    pub top: String,
    /// Every generated signal as `(unique name, bit width)` — the poke
    /// and peek targets. Names are unique by construction, so suffix
    /// lookup through `ElaboratedDesign::signal_by_name` is unambiguous.
    pub signals: Vec<(String, usize)>,
    /// The simulation end time in nanoseconds, sized so every cluster
    /// sees a few dozen clock edges.
    pub until_ns: u128,
    /// Lower bound on the island count (clusters + top shell) for
    /// structural sanity checks.
    pub min_islands: usize,
}

impl DesignPlan {
    /// Generate a plan from a seed: 1–4 clusters of 1–3 units each, with
    /// seeded widths, clocks, racers, nesting, and unit internals.
    pub fn generate(seed: u64) -> DesignPlan {
        let mut rng = FuzzRng::new(seed);
        let clusters = (0..rng.range_usize(1, 4))
            .map(|id| ClusterPlan::generate(id, &mut rng))
            .collect();
        DesignPlan { seed, clusters }
    }

    /// Emit the plan as LLHD assembly plus driver metadata.
    pub fn emit(&self) -> FuzzDesign {
        emit_design(self)
    }

    /// Build the emitted module (a failure is a generator bug, not a
    /// fuzz finding).
    ///
    /// # Errors
    ///
    /// Returns the assembler's message when the emitted source is
    /// rejected.
    pub fn build(&self) -> Result<(FuzzDesign, Module), String> {
        let design = self.emit();
        let module = llhd::assembly::parse_module(&design.source).map_err(|e| e.to_string())?;
        Ok((design, module))
    }
}

impl ClusterPlan {
    fn generate(id: usize, rng: &mut FuzzRng) -> ClusterPlan {
        let width = *rng.pick(&[8usize, 16, 32]);
        let units = (0..rng.range_usize(1, 3))
            .map(|_| UnitPlan::generate(rng))
            .collect();
        ClusterPlan {
            id,
            width,
            clock_half_ns: rng.range(1, 3),
            stim_inc: rng.range(1, 250),
            racers: (0..rng.range_usize(0, 2)).map(|_| rng.range(1, 250)).collect(),
            nested: rng.chance(40),
            units,
        }
    }
}

impl UnitPlan {
    fn generate(rng: &mut FuzzRng) -> UnitPlan {
        match rng.range(0, 9) {
            // Comb is the most common unit: it is where op-chain shapes
            // (and therefore superop fusion candidates) vary the most.
            0..=4 => UnitPlan::Comb {
                ops: (0..rng.range_usize(1, 5))
                    .map(|_| (*rng.pick(&BinOp::ALL), rng.range(1, 250)))
                    .collect(),
                mix_race: rng.chance(50),
                mux_tail: rng.chance(50),
            },
            5..=6 => UnitPlan::Reg,
            _ => {
                let taps = rng.range_usize(1, 4);
                UnitPlan::Pipe {
                    taps,
                    weights: (0..taps).map(|_| rng.range(1, 2)).collect(),
                }
            }
        }
    }
}

/// The fixed top-entity name of every generated design.
pub const TOP: &str = "fuzz_top";

fn emit_design(plan: &DesignPlan) -> FuzzDesign {
    let mut src = String::new();
    let mut signals = Vec::new();
    for cluster in &plan.clusters {
        emit_cluster_units(&mut src, cluster);
    }
    emit_top(&mut src, plan, &mut signals);
    let max_half = plan
        .clusters
        .iter()
        .map(|c| c.clock_half_ns)
        .max()
        .unwrap_or(1);
    FuzzDesign {
        name: format!("fuzz-s{:#018x}", plan.seed),
        source: src,
        top: TOP.to_string(),
        signals,
        // ~24 clock cycles of the slowest cluster, plus settle margin.
        until_ns: (max_half as u128) * 2 * 24 + 10,
        min_islands: plan.clusters.len() + 1,
    }
}

/// Emit the per-cluster units: stimulus, racers, datapath units, and the
/// optional wrapper entity.
fn emit_cluster_units(src: &mut String, c: &ClusterPlan) {
    let (id, w) = (c.id, c.width);
    // Stimulus: a free-running clock, a counter on link 0, and the first
    // drive of the race signal — all landing in the same instants the
    // racers target.
    writeln!(src, "proc @c{id}_stim () -> (i1$ %clk, i{w}$ %l0, i{w}$ %race) {{").unwrap();
    writeln!(src, "entry:").unwrap();
    writeln!(src, "    %one = const i1 1").unwrap();
    writeln!(src, "    %zero = const i1 0").unwrap();
    writeln!(src, "    %d1 = const time {}ns", c.clock_half_ns).unwrap();
    writeln!(src, "    %d2 = const time {}ns", 2 * c.clock_half_ns).unwrap();
    writeln!(src, "    %zw = const i{w} 0").unwrap();
    writeln!(src, "    %inc = const i{w} {}", c.stim_inc).unwrap();
    writeln!(src, "    %i = var i{w} %zw").unwrap();
    writeln!(src, "    br %loop").unwrap();
    writeln!(src, "loop:").unwrap();
    writeln!(src, "    %ip = ld i{w}* %i").unwrap();
    writeln!(src, "    %next = add i{w} %ip, %inc").unwrap();
    writeln!(src, "    st i{w}* %i, %next").unwrap();
    writeln!(src, "    drv i{w}$ %l0, %next after %d1").unwrap();
    writeln!(src, "    drv i{w}$ %race, %next after %d1").unwrap();
    writeln!(src, "    drv i1$ %clk, %one after %d1").unwrap();
    writeln!(src, "    drv i1$ %clk, %zero after %d2").unwrap();
    writeln!(src, "    wait %loop for %d2").unwrap();
    writeln!(src, "}}").unwrap();
    writeln!(src).unwrap();
    // Racers: same cadence, same delay — their drives land in the same
    // physical instant as the stimulus' race drive, so resolution is
    // pure scheduler last-writer-wins.
    for (r, dec) in c.racers.iter().enumerate() {
        writeln!(src, "proc @c{id}_racer{r} () -> (i{w}$ %race) {{").unwrap();
        writeln!(src, "entry:").unwrap();
        writeln!(src, "    %d1 = const time {}ns", c.clock_half_ns).unwrap();
        writeln!(src, "    %d2 = const time {}ns", 2 * c.clock_half_ns).unwrap();
        writeln!(src, "    %zw = const i{w} 0").unwrap();
        writeln!(src, "    %dec = const i{w} {dec}").unwrap();
        writeln!(src, "    %i = var i{w} %zw").unwrap();
        writeln!(src, "    br %loop").unwrap();
        writeln!(src, "loop:").unwrap();
        writeln!(src, "    %ip = ld i{w}* %i").unwrap();
        writeln!(src, "    %next = sub i{w} %ip, %dec").unwrap();
        writeln!(src, "    st i{w}* %i, %next").unwrap();
        writeln!(src, "    drv i{w}$ %race, %next after %d1").unwrap();
        writeln!(src, "    wait %loop for %d2").unwrap();
        writeln!(src, "}}").unwrap();
        writeln!(src).unwrap();
    }
    for (j, unit) in c.units.iter().enumerate() {
        emit_unit(src, c, j, unit);
    }
    if c.nested {
        // The wrapper entity owns the intermediate link signals and
        // instantiates the datapath chain; the top entity only sees the
        // cluster's boundary signals.
        let last = c.units.len();
        writeln!(
            src,
            "entity @c{id}_wrap (i1$ %clk, i{w}$ %c{id}_l0, i{w}$ %race) -> (i{w}$ %c{id}_l{last}) {{"
        )
        .unwrap();
        if c.units.len() > 1 {
            writeln!(src, "    %zw = const i{w} 0").unwrap();
            for j in 1..c.units.len() {
                writeln!(src, "    %c{id}_l{j} = sig i{w} %zw").unwrap();
            }
        }
        for (j, unit) in c.units.iter().enumerate() {
            emit_unit_inst(src, c, j, unit, "%clk", "%race", &format!("c{id}_"));
        }
        writeln!(src, "}}").unwrap();
        writeln!(src).unwrap();
    }
}

/// Emit one datapath unit definition.
fn emit_unit(src: &mut String, c: &ClusterPlan, j: usize, unit: &UnitPlan) {
    let (id, w) = (c.id, c.width);
    match unit {
        UnitPlan::Comb {
            ops,
            mix_race,
            mux_tail,
        } => {
            if *mix_race {
                writeln!(src, "entity @c{id}_u{j} (i{w}$ %a, i{w}$ %race) -> (i{w}$ %q) {{")
                    .unwrap();
            } else {
                writeln!(src, "entity @c{id}_u{j} (i{w}$ %a) -> (i{w}$ %q) {{").unwrap();
            }
            writeln!(src, "    %ap = prb i{w}$ %a").unwrap();
            if *mix_race {
                writeln!(src, "    %rp = prb i{w}$ %race").unwrap();
            }
            writeln!(src, "    %delay = const time 0s").unwrap();
            let mut cur = "%ap".to_string();
            for (n, (op, konst)) in ops.iter().enumerate() {
                writeln!(src, "    %k{n} = const i{w} {konst}").unwrap();
                writeln!(src, "    %v{n} = {} i{w} {cur}, %k{n}", op.mnemonic()).unwrap();
                cur = format!("%v{n}");
            }
            if *mix_race {
                writeln!(src, "    %vr = xor i{w} {cur}, %rp").unwrap();
                cur = "%vr".to_string();
            }
            if *mux_tail {
                // The array+mux pair the blaze `Sel` fusion targets,
                // selected by a comparison (an i1 the mux indexes with).
                writeln!(src, "    %cmp = ult i{w} {cur}, %ap").unwrap();
                writeln!(src, "    %pair = array [{cur}, %ap]").unwrap();
                writeln!(src, "    %sel = mux [2 x i{w}] %pair, %cmp").unwrap();
                cur = "%sel".to_string();
            }
            writeln!(src, "    drv i{w}$ %q, {cur} after %delay").unwrap();
            writeln!(src, "}}").unwrap();
        }
        UnitPlan::Reg => {
            writeln!(src, "entity @c{id}_u{j} (i1$ %clk, i{w}$ %a) -> (i{w}$ %q) {{").unwrap();
            writeln!(src, "    %clkp = prb i1$ %clk").unwrap();
            writeln!(src, "    %ap = prb i{w}$ %a").unwrap();
            writeln!(src, "    reg i{w}$ %q, %ap rise %clkp").unwrap();
            writeln!(src, "}}").unwrap();
        }
        UnitPlan::Pipe { taps, weights } => {
            writeln!(src, "proc @c{id}_u{j} (i1$ %clk, i{w}$ %a) -> (i{w}$ %q) {{").unwrap();
            writeln!(src, "setup:").unwrap();
            writeln!(src, "    %zw = const i{w} 0").unwrap();
            for t in 0..*taps {
                writeln!(src, "    %t{t}p = var i{w} %zw").unwrap();
            }
            writeln!(src, "    br %main").unwrap();
            writeln!(src, "main:").unwrap();
            writeln!(src, "    %clk0 = prb i1$ %clk").unwrap();
            writeln!(src, "    wait %sample, %clk").unwrap();
            writeln!(src, "sample:").unwrap();
            // Posedge detection: the neq feeding a conditional branch is
            // the compare+branch superop fusion shape.
            writeln!(src, "    %clk1 = prb i1$ %clk").unwrap();
            writeln!(src, "    %chg = neq i1 %clk0, %clk1").unwrap();
            writeln!(src, "    %pos = and i1 %chg, %clk1").unwrap();
            writeln!(src, "    br %pos, %main, %tick").unwrap();
            writeln!(src, "tick:").unwrap();
            writeln!(src, "    %ap = prb i{w}$ %a").unwrap();
            writeln!(src, "    %delay = const time 0s").unwrap();
            for t in 0..*taps {
                writeln!(src, "    %v{t} = ld i{w}* %t{t}p").unwrap();
            }
            writeln!(src, "    st i{w}* %t0p, %ap").unwrap();
            for t in 1..*taps {
                writeln!(src, "    st i{w}* %t{t}p, %v{}", t - 1).unwrap();
            }
            writeln!(src, "    %acc0 = add i{w} %ap, %v0").unwrap();
            let mut acc = 0usize;
            for (t, &weight) in weights.iter().enumerate() {
                let reps = if t == 0 { weight.saturating_sub(1) } else { weight };
                for _ in 0..reps {
                    writeln!(src, "    %acc{} = add i{w} %acc{acc}, %v{t}", acc + 1).unwrap();
                    acc += 1;
                }
            }
            writeln!(src, "    drv i{w}$ %q, %acc{acc} after %delay").unwrap();
            writeln!(src, "    br %main").unwrap();
            writeln!(src, "}}").unwrap();
        }
    }
    writeln!(src).unwrap();
}

/// Emit the `inst` line connecting unit `j` between link `j` and link
/// `j+1`. `prefix` is the link-name prefix (`c<id>_`), shared between the
/// flat and the nested emission.
fn emit_unit_inst(
    src: &mut String,
    c: &ClusterPlan,
    j: usize,
    unit: &UnitPlan,
    clk: &str,
    race: &str,
    prefix: &str,
) {
    let id = c.id;
    let input = format!("%{prefix}l{j}");
    let output = format!("%{prefix}l{}", j + 1);
    match unit {
        UnitPlan::Comb { mix_race, .. } => {
            if *mix_race {
                writeln!(src, "    inst @c{id}_u{j} ({input}, {race}) -> ({output})").unwrap();
            } else {
                writeln!(src, "    inst @c{id}_u{j} ({input}) -> ({output})").unwrap();
            }
        }
        UnitPlan::Reg | UnitPlan::Pipe { .. } => {
            writeln!(src, "    inst @c{id}_u{j} ({clk}, {input}) -> ({output})").unwrap();
        }
    }
}

fn emit_top(src: &mut String, plan: &DesignPlan, signals: &mut Vec<(String, usize)>) {
    writeln!(src, "entity @{TOP} () -> () {{").unwrap();
    writeln!(src, "    %z1 = const i1 0").unwrap();
    let mut widths: Vec<usize> = plan.clusters.iter().map(|c| c.width).collect();
    widths.sort_unstable();
    widths.dedup();
    for w in &widths {
        writeln!(src, "    %z{w} = const i{w} 0").unwrap();
    }
    for c in &plan.clusters {
        let (id, w) = (c.id, c.width);
        writeln!(src, "    %c{id}_clk = sig i1 %z1").unwrap();
        signals.push((format!("c{id}_clk"), 1));
        writeln!(src, "    %c{id}_race = sig i{w} %z{w}").unwrap();
        signals.push((format!("c{id}_race"), w));
        // Nested clusters only surface the boundary links at the top;
        // the wrapper owns the intermediate ones (still poke/peekable —
        // elaboration flattens them, and their names stay unique).
        let top_links: Vec<usize> = if c.nested {
            vec![0, c.units.len()]
        } else {
            (0..=c.units.len()).collect()
        };
        for j in top_links {
            writeln!(src, "    %c{id}_l{j} = sig i{w} %z{w}").unwrap();
        }
        for j in 0..=c.units.len() {
            signals.push((format!("c{id}_l{j}"), w));
        }
    }
    for c in &plan.clusters {
        let id = c.id;
        writeln!(src, "    inst @c{id}_stim () -> (%c{id}_clk, %c{id}_l0, %c{id}_race)").unwrap();
        for r in 0..c.racers.len() {
            writeln!(src, "    inst @c{id}_racer{r} () -> (%c{id}_race)").unwrap();
        }
        if c.nested {
            let last = c.units.len();
            writeln!(
                src,
                "    inst @c{id}_wrap (%c{id}_clk, %c{id}_l0, %c{id}_race) -> (%c{id}_l{last})"
            )
            .unwrap();
        } else {
            for (j, unit) in c.units.iter().enumerate() {
                emit_unit_inst(
                    src,
                    c,
                    j,
                    unit,
                    &format!("%c{id}_clk"),
                    &format!("%c{id}_race"),
                    &format!("c{id}_"),
                );
            }
        }
    }
    writeln!(src, "}}").unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let a = DesignPlan::generate(11).emit();
        let b = DesignPlan::generate(11).emit();
        assert_eq!(a.source, b.source);
        let c = DesignPlan::generate(12).emit();
        assert_ne!(a.source, c.source);
    }

    /// The generator's core contract: every seed emits a module that
    /// parses, verifies, and elaborates. 256 seeds is enough to cover
    /// every unit kind, nesting, racer count, and width combination many
    /// times over.
    #[test]
    fn every_seed_builds_verifies_and_elaborates() {
        for seed in 0..256u64 {
            let plan = DesignPlan::generate(seed);
            let (design, module) = plan
                .build()
                .unwrap_or_else(|e| panic!("seed {seed}: emitted source rejected: {e}"));
            llhd::verifier::verify_module(&module)
                .unwrap_or_else(|e| panic!("seed {seed}: verifier rejected module: {e:?}"));
            let elaborated = llhd_sim::elaborate(&module, &design.top)
                .unwrap_or_else(|e| panic!("seed {seed}: elaboration failed: {e:?}"));
            // Every advertised poke/peek target must resolve.
            for (name, width) in &design.signals {
                let id = elaborated
                    .signal_by_name(name)
                    .unwrap_or_else(|| panic!("seed {seed}: signal {name} does not resolve"));
                let _ = (id, width);
            }
            // Clusters share nothing: the island partition must be at
            // least one island per cluster plus the top shell.
            let plan_islands =
                llhd_sim::IslandPlan::build(&module, &elaborated).num_islands();
            assert!(
                plan_islands >= design.min_islands,
                "seed {seed}: {} islands < {} clusters+shell",
                plan_islands,
                design.min_islands
            );
        }
    }

    /// Racing clusters really do race: with a racer present, the race
    /// signal's final value depends on deterministic last-writer-wins
    /// ordering, and the design still simulates cleanly.
    #[test]
    fn race_clusters_simulate() {
        // Find a seed with at least one racer.
        let plan = (0..64)
            .map(DesignPlan::generate)
            .find(|p| p.clusters.iter().any(|c| !c.racers.is_empty()))
            .expect("some seed in 0..64 has a racer");
        let (design, module) = plan.build().unwrap();
        let result = llhd_blaze::session(&module, &design.top)
            .engine(llhd_sim::EngineKind::Interpret)
            .until_nanos(design.until_ns)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let race = &plan
            .clusters
            .iter()
            .find(|c| !c.racers.is_empty())
            .map(|c| format!("c{}_race", c.id))
            .unwrap();
        assert!(
            result.trace.changes_of(race).count() > 0,
            "race signal {race} never changed"
        );
    }
}
