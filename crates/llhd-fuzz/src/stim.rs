//! Constrained-random stimulus over the engines' interactive surface.
//!
//! A [`Schedule`] is the second half of a fuzz case: where the generated
//! design exercises the *simulated* machinery, the schedule exercises the
//! *interactive* machinery — stepping in uneven bursts, poking external
//! drives into running designs, peeking mid-run values, and cutting the
//! run with checkpoint/restore at random points. Every engine variant in
//! a case executes the identical schedule, so any observable difference
//! (trace, VCD, stats, or the peek log itself) is a divergence.
//!
//! Schedules are deliberately coarse: a handful of ops, each cheap to
//! interpret and trivially shrinkable. After the last op the driver runs
//! the design to completion, so a schedule only perturbs the run's
//! prefix — the engines still have to agree on everything that follows.

use crate::gen::FuzzDesign;
use crate::rng::FuzzRng;

/// One stimulus operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StimOp {
    /// Advance the engine by up to `cycles` scheduler cycles (fewer if
    /// the run exhausts first).
    Step { cycles: u64 },
    /// Schedule an external drive of `value` (already masked to `width`
    /// bits) onto the named signal.
    Poke {
        signal: String,
        width: usize,
        value: u64,
    },
    /// Read the named signal's current value into the case's peek log.
    Peek { signal: String },
    /// Serialize the engine state, build a fresh engine of the same
    /// kind, restore into it, and continue on the restored engine.
    Checkpoint,
}

/// A replayable stimulus schedule.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schedule {
    pub ops: Vec<StimOp>,
}

impl Schedule {
    /// Generate a schedule for `design` from a seed: 6–24 ops, weighted
    /// toward stepping (~55%), with pokes (~20%), peeks (~15%), and
    /// checkpoint cuts (~10%). Poke values are drawn over the full u64
    /// range and masked to the target signal's width, so boundary
    /// patterns (all-ones, sign bit) appear regularly.
    pub fn generate(seed: u64, design: &FuzzDesign) -> Schedule {
        let mut rng = FuzzRng::new(seed);
        let mut ops = Vec::new();
        for _ in 0..rng.range(6, 24) {
            let roll = rng.range(0, 99);
            let op = if roll < 55 {
                StimOp::Step {
                    cycles: rng.range(1, 12),
                }
            } else if roll < 75 {
                let (name, width) = rng.pick(&design.signals);
                StimOp::Poke {
                    signal: name.clone(),
                    width: *width,
                    value: mask(rng.u64(), *width),
                }
            } else if roll < 90 {
                let (name, _) = rng.pick(&design.signals);
                StimOp::Peek {
                    signal: name.clone(),
                }
            } else {
                StimOp::Checkpoint
            };
            ops.push(op);
        }
        Schedule { ops }
    }

    /// The number of checkpoint cuts in the schedule.
    pub fn checkpoints(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, StimOp::Checkpoint))
            .count()
    }

    /// The number of pokes in the schedule.
    pub fn pokes(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, StimOp::Poke { .. }))
            .count()
    }
}

/// Truncate `value` to `width` bits. The raw
/// [`Engine::poke`](llhd_sim::api::Engine::poke) surface does not
/// validate widths — a too-wide value would corrupt comparisons — so
/// the schedule carries pre-masked values only.
pub fn mask(value: u64, width: usize) -> u64 {
    if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::DesignPlan;

    #[test]
    fn schedules_are_deterministic_and_bounded() {
        let design = DesignPlan::generate(3).emit();
        let a = Schedule::generate(99, &design);
        let b = Schedule::generate(99, &design);
        assert_eq!(a, b);
        assert!((6..=24).contains(&a.ops.len()));
        for op in &a.ops {
            if let StimOp::Poke { width, value, .. } = op {
                assert_eq!(*value, mask(*value, *width), "unmasked poke value");
            }
        }
    }

    #[test]
    fn mask_handles_boundary_widths() {
        assert_eq!(mask(u64::MAX, 1), 1);
        assert_eq!(mask(u64::MAX, 8), 0xff);
        assert_eq!(mask(u64::MAX, 64), u64::MAX);
        assert_eq!(mask(0x1_ff, 8), 0xff);
    }
}
