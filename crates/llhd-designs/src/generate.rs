//! Seeded generators for scaled benchmark designs.
//!
//! The hand-written corpus ([`crate::all_designs`]) matches the paper's
//! Table 2 designs, which are small: two or three instances each, one
//! sensitivity island. That is the wrong shape for measuring
//! *intra*-simulation parallelism — a partition with one island has
//! nothing to run concurrently. The generators here produce designs that
//! are 10×–100× the instance count of the base corpus with a **known**
//! island structure, so the `sim-parallel/*` benchmarks and the
//! parallel-vs-serial differential tests can assert the partition they
//! think they are measuring.
//!
//! Two families, both emitted as Behavioural LLHD assembly:
//!
//! * [`fir_bank`] — `lanes` independent FIR delay lines, each with its own
//!   clock generator and seeded tap weights. Nothing is shared between
//!   lanes, so the partition is `lanes` substantial islands (plus the
//!   inert top-entity shell).
//! * [`noc_mesh`] — `rows` independent pipelines of `cols` router tiles
//!   each. Tiles within a row share a clock and a data chain (one island
//!   per row); rows share nothing.
//!
//! Generation is deterministic: the same `(parameters, seed)` always
//! yields byte-identical source, so a benchmark baseline or a recorded
//! checkpoint stays meaningful across runs.

use llhd::ir::Module;
use std::fmt::Write as _;

/// A generated design: LLHD source plus the structural facts a test or
/// benchmark needs to assert about it.
#[derive(Clone, Debug)]
pub struct GeneratedDesign {
    /// A name encoding the family, parameters, and seed (e.g.
    /// `fir-bank-32x64-s7`).
    pub name: String,
    /// The Behavioural LLHD assembly of the design and its stimulus.
    pub llhd_source: String,
    /// The top-level entity to elaborate.
    pub top: String,
    /// The nominal clock period in nanoseconds.
    pub clock_period_ns: u128,
    /// A signal (name suffix) whose activity indicates the design is
    /// alive.
    pub probe_signal: String,
    /// The exact number of islands the partitioner must find: the
    /// parallel islands plus one for the top-entity shell (an instance
    /// with no sensitivity of its own).
    pub expected_islands: usize,
    /// The exact number of elaborated instances (including the top
    /// shell).
    pub expected_instances: usize,
}

impl GeneratedDesign {
    /// Parse the generated assembly into a module.
    ///
    /// # Errors
    ///
    /// Returns the assembler's message if the source is rejected (which
    /// would indicate a bug in the generator).
    pub fn build(&self) -> Result<Module, String> {
        llhd::assembly::parse_module(&self.llhd_source).map_err(|e| e.to_string())
    }

    /// The simulation end time (in nanoseconds) for a given cycle count.
    pub fn sim_time_ns(&self, cycles: u64) -> u128 {
        self.clock_period_ns * cycles as u128 + 10
    }
}

/// A tiny deterministic generator (xorshift64*): good enough to vary tap
/// weights and stimulus increments, dependency-free, and stable across
/// platforms — the properties a reproducible corpus actually needs.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // A zero state would be a fixed point; fold in a constant.
        Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A value in `1..=max` (never zero: zero increments would freeze a
    /// stimulus and zero weights would optimize a tap away).
    fn pick(&mut self, max: u64) -> u64 {
        1 + self.next() % max
    }
}

/// A bank of `lanes` independent FIR delay lines, `taps` deep, with
/// seeded tap weights and stimulus increments.
///
/// Each lane is a pair of processes — a clock/data generator and the
/// filter itself — connected only to each other, so the partition is
/// exactly `lanes` islands of real work plus the top shell. A lane's
/// activation cost scales linearly with `taps` (load, shift, and a
/// weighted-sum chain per tick), which is the knob for making islands
/// heavy enough to clear the engines' `PARALLEL_MIN_ISLAND_OPS` floor.
pub fn fir_bank(lanes: usize, taps: usize, seed: u64) -> GeneratedDesign {
    assert!(lanes >= 1 && taps >= 1, "fir_bank needs lanes >= 1, taps >= 1");
    let mut rng = Rng::new(seed ^ (lanes as u64) << 32 ^ taps as u64);
    let mut src = String::new();
    for lane in 0..lanes {
        // The filter: on each rising clock edge, shift the delay line and
        // drive the weighted sum. Weight 2 taps contribute twice to the
        // sum chain; which taps are heavy is the seeded part.
        let weights: Vec<u64> = (0..taps).map(|_| rng.pick(2)).collect();
        writeln!(src, "proc @fir_lane_{} (i1$ %clk, i16$ %x) -> (i16$ %y) {{", lane).unwrap();
        writeln!(src, "setup:").unwrap();
        writeln!(src, "    %zero16 = const i16 0").unwrap();
        for tap in 0..taps {
            writeln!(src, "    %t{}p = var i16 %zero16", tap).unwrap();
        }
        writeln!(src, "    br %main").unwrap();
        writeln!(src, "main:").unwrap();
        writeln!(src, "    %clk0 = prb i1$ %clk").unwrap();
        writeln!(src, "    wait %sample, %clk").unwrap();
        writeln!(src, "sample:").unwrap();
        writeln!(src, "    %clk1 = prb i1$ %clk").unwrap();
        writeln!(src, "    %chg = neq i1 %clk0, %clk1").unwrap();
        writeln!(src, "    %posedge = and i1 %chg, %clk1").unwrap();
        writeln!(src, "    br %posedge, %main, %tick").unwrap();
        writeln!(src, "tick:").unwrap();
        writeln!(src, "    %xin = prb i16$ %x").unwrap();
        writeln!(src, "    %delay = const time 0s").unwrap();
        for tap in 0..taps {
            writeln!(src, "    %v{} = ld i16* %t{}p", tap, tap).unwrap();
        }
        writeln!(src, "    st i16* %t0p, %xin").unwrap();
        for tap in 1..taps {
            writeln!(src, "    st i16* %t{}p, %v{}", tap, tap - 1).unwrap();
        }
        writeln!(src, "    %acc0 = add i16 %xin, %v0").unwrap();
        let mut acc = 0;
        for (tap, &weight) in weights.iter().enumerate() {
            // The first tap already seeded the chain; later taps extend
            // it, and heavy taps are added a second time.
            let reps = if tap == 0 { weight - 1 } else { weight };
            for _ in 0..reps {
                writeln!(src, "    %acc{} = add i16 %acc{}, %v{}", acc + 1, acc, tap).unwrap();
                acc += 1;
            }
        }
        writeln!(src, "    drv i16$ %y, %acc{} after %delay", acc).unwrap();
        writeln!(src, "    br %main").unwrap();
        writeln!(src, "}}").unwrap();
        writeln!(src).unwrap();
        // The per-lane stimulus: a free-running clock plus a counter
        // stepping by a seeded increment.
        writeln!(src, "proc @fir_stim_{} () -> (i1$ %clk, i16$ %x) {{", lane).unwrap();
        writeln!(src, "entry:").unwrap();
        writeln!(src, "    %one = const i1 1").unwrap();
        writeln!(src, "    %zero = const i1 0").unwrap();
        writeln!(src, "    %d1 = const time 1ns").unwrap();
        writeln!(src, "    %d2 = const time 2ns").unwrap();
        writeln!(src, "    %zero16 = const i16 0").unwrap();
        writeln!(src, "    %inc = const i16 {}", rng.pick(251)).unwrap();
        writeln!(src, "    %i = var i16 %zero16").unwrap();
        writeln!(src, "    br %loop").unwrap();
        writeln!(src, "loop:").unwrap();
        writeln!(src, "    %ip = ld i16* %i").unwrap();
        writeln!(src, "    %next = add i16 %ip, %inc").unwrap();
        writeln!(src, "    st i16* %i, %next").unwrap();
        writeln!(src, "    drv i16$ %x, %next after %d1").unwrap();
        writeln!(src, "    drv i1$ %clk, %one after %d1").unwrap();
        writeln!(src, "    drv i1$ %clk, %zero after %d2").unwrap();
        writeln!(src, "    wait %loop for %d2").unwrap();
        writeln!(src, "}}").unwrap();
        writeln!(src).unwrap();
    }
    writeln!(src, "entity @fir_bank_tb () -> () {{").unwrap();
    writeln!(src, "    %z1 = const i1 0").unwrap();
    writeln!(src, "    %z16 = const i16 0").unwrap();
    for lane in 0..lanes {
        writeln!(src, "    %clk{} = sig i1 %z1", lane).unwrap();
        writeln!(src, "    %x{} = sig i16 %z16", lane).unwrap();
        writeln!(src, "    %y{} = sig i16 %z16", lane).unwrap();
    }
    for lane in 0..lanes {
        writeln!(src, "    inst @fir_lane_{} (%clk{}, %x{}) -> (%y{})", lane, lane, lane, lane)
            .unwrap();
        writeln!(src, "    inst @fir_stim_{} () -> (%clk{}, %x{})", lane, lane, lane).unwrap();
    }
    writeln!(src, "}}").unwrap();
    GeneratedDesign {
        name: format!("fir-bank-{}x{}-s{}", lanes, taps, seed),
        llhd_source: src,
        top: "fir_bank_tb".to_string(),
        clock_period_ns: 2,
        probe_signal: "y0".to_string(),
        expected_islands: lanes + 1,
        expected_instances: 2 * lanes + 1,
    }
}

/// A mesh of `rows` independent router pipelines, `cols` tiles wide, with
/// seeded per-row routing constants and injection rates.
///
/// Tiles within a row share the row clock and hand data down a chain of
/// link signals, so a whole row is one island; rows share nothing. The
/// partition is exactly `rows` islands (plus the top shell), each holding
/// `cols + 1` instances — the shape where the parallel instant loop has
/// to batch several instances per worker rather than one.
pub fn noc_mesh(rows: usize, cols: usize, seed: u64) -> GeneratedDesign {
    assert!(rows >= 1 && cols >= 1, "noc_mesh needs rows >= 1, cols >= 1");
    let mut rng = Rng::new(seed ^ (rows as u64) << 32 ^ cols as u64);
    let mut src = String::new();
    for row in 0..rows {
        // One tile unit per row (instantiated `cols` times): a two-stage
        // pipeline that adds the row's seeded routing constant. Vars are
        // per-instance state, so the tiles advance independently.
        writeln!(src, "proc @noc_tile_{} (i1$ %clk, i16$ %din) -> (i16$ %dout) {{", row).unwrap();
        writeln!(src, "setup:").unwrap();
        writeln!(src, "    %zero16 = const i16 0").unwrap();
        writeln!(src, "    %s0p = var i16 %zero16").unwrap();
        writeln!(src, "    %s1p = var i16 %zero16").unwrap();
        writeln!(src, "    br %main").unwrap();
        writeln!(src, "main:").unwrap();
        writeln!(src, "    %clk0 = prb i1$ %clk").unwrap();
        writeln!(src, "    wait %sample, %clk").unwrap();
        writeln!(src, "sample:").unwrap();
        writeln!(src, "    %clk1 = prb i1$ %clk").unwrap();
        writeln!(src, "    %chg = neq i1 %clk0, %clk1").unwrap();
        writeln!(src, "    %posedge = and i1 %chg, %clk1").unwrap();
        writeln!(src, "    br %posedge, %main, %tick").unwrap();
        writeln!(src, "tick:").unwrap();
        writeln!(src, "    %d = prb i16$ %din").unwrap();
        writeln!(src, "    %delay = const time 0s").unwrap();
        writeln!(src, "    %c = const i16 {}", rng.pick(251)).unwrap();
        writeln!(src, "    %s0 = ld i16* %s0p").unwrap();
        writeln!(src, "    %s1 = ld i16* %s1p").unwrap();
        writeln!(src, "    %n0 = add i16 %d, %c").unwrap();
        writeln!(src, "    st i16* %s0p, %n0").unwrap();
        writeln!(src, "    st i16* %s1p, %s0").unwrap();
        writeln!(src, "    drv i16$ %dout, %s1 after %delay").unwrap();
        writeln!(src, "    br %main").unwrap();
        writeln!(src, "}}").unwrap();
        writeln!(src).unwrap();
        // The row's injector: a clock plus a counter feeding the head of
        // the chain.
        writeln!(src, "proc @noc_stim_{} () -> (i1$ %clk, i16$ %inj) {{", row).unwrap();
        writeln!(src, "entry:").unwrap();
        writeln!(src, "    %one = const i1 1").unwrap();
        writeln!(src, "    %zero = const i1 0").unwrap();
        writeln!(src, "    %d1 = const time 1ns").unwrap();
        writeln!(src, "    %d2 = const time 2ns").unwrap();
        writeln!(src, "    %zero16 = const i16 0").unwrap();
        writeln!(src, "    %inc = const i16 {}", rng.pick(251)).unwrap();
        writeln!(src, "    %i = var i16 %zero16").unwrap();
        writeln!(src, "    br %loop").unwrap();
        writeln!(src, "loop:").unwrap();
        writeln!(src, "    %ip = ld i16* %i").unwrap();
        writeln!(src, "    %next = add i16 %ip, %inc").unwrap();
        writeln!(src, "    st i16* %i, %next").unwrap();
        writeln!(src, "    drv i16$ %inj, %next after %d1").unwrap();
        writeln!(src, "    drv i1$ %clk, %one after %d1").unwrap();
        writeln!(src, "    drv i1$ %clk, %zero after %d2").unwrap();
        writeln!(src, "    wait %loop for %d2").unwrap();
        writeln!(src, "}}").unwrap();
        writeln!(src).unwrap();
    }
    writeln!(src, "entity @noc_mesh_tb () -> () {{").unwrap();
    writeln!(src, "    %z1 = const i1 0").unwrap();
    writeln!(src, "    %z16 = const i16 0").unwrap();
    for row in 0..rows {
        writeln!(src, "    %clk{} = sig i1 %z1", row).unwrap();
        for link in 0..=cols {
            writeln!(src, "    %l{}_{} = sig i16 %z16", row, link).unwrap();
        }
    }
    for row in 0..rows {
        writeln!(src, "    inst @noc_stim_{} () -> (%clk{}, %l{}_0)", row, row, row).unwrap();
        for col in 0..cols {
            writeln!(
                src,
                "    inst @noc_tile_{} (%clk{}, %l{}_{}) -> (%l{}_{})",
                row,
                row,
                row,
                col,
                row,
                col + 1
            )
            .unwrap();
        }
    }
    writeln!(src, "}}").unwrap();
    GeneratedDesign {
        name: format!("noc-mesh-{}x{}-s{}", rows, cols, seed),
        llhd_source: src,
        top: "noc_mesh_tb".to_string(),
        clock_period_ns: 2,
        probe_signal: format!("l0_{}", cols),
        expected_islands: rows + 1,
        expected_instances: rows * (cols + 1) + 1,
    }
}

/// The scaled corpus the `sim-parallel/*` benchmarks and the CI
/// differential run over: both families at a small, a medium, and a
/// large scale (roughly 10×, 30×, and 100× the instance count of the
/// hand-written Table 2 designs). Fixed seeds keep baselines meaningful.
pub fn parallel_corpus() -> Vec<GeneratedDesign> {
    vec![
        fir_bank(8, 16, 7),
        fir_bank(16, 32, 7),
        fir_bank(32, 64, 7),
        noc_mesh(4, 4, 11),
        noc_mesh(8, 8, 11),
        noc_mesh(16, 8, 11),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd_sim::{elaborate, IslandPlan};

    #[test]
    fn generated_designs_build_and_verify() {
        for design in parallel_corpus() {
            let module = design
                .build()
                .unwrap_or_else(|e| panic!("{} failed to build: {}", design.name, e));
            llhd::verifier::verify_module(&module)
                .unwrap_or_else(|e| panic!("{} failed to verify: {:?}", design.name, e));
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = fir_bank(4, 8, 42);
        let b = fir_bank(4, 8, 42);
        assert_eq!(a.llhd_source, b.llhd_source);
        let c = fir_bank(4, 8, 43);
        assert_ne!(a.llhd_source, c.llhd_source, "seed must vary the source");
        let m = noc_mesh(3, 2, 5);
        let n = noc_mesh(3, 2, 5);
        assert_eq!(m.llhd_source, n.llhd_source);
    }

    /// The whole point of the generated corpus: the island partition is
    /// *known*, so a benchmark can assert it measures what it claims to.
    #[test]
    fn island_structure_matches_the_advertised_counts() {
        for design in [
            fir_bank(1, 4, 1),
            fir_bank(4, 8, 9),
            fir_bank(16, 16, 9),
            noc_mesh(1, 3, 2),
            noc_mesh(4, 4, 2),
            noc_mesh(8, 4, 2),
        ] {
            let module = design.build().unwrap();
            let elaborated = elaborate(&module, &design.top).unwrap();
            assert_eq!(
                elaborated.num_instances(),
                design.expected_instances,
                "{}: instance count",
                design.name
            );
            let plan = IslandPlan::build(&module, &elaborated);
            assert_eq!(
                plan.num_islands(),
                design.expected_islands,
                "{}: island count",
                design.name
            );
            // Every island except (possibly) the top shell carries real
            // work — at scale the shell's sig/inst ops can cross the
            // floor too, hence `>=` rather than equality.
            let substantial = plan.islands().iter().filter(|i| i.ops >= 16).count();
            assert!(
                substantial >= design.expected_islands - 1,
                "{}: only {} of {} islands are substantial",
                design.name,
                substantial,
                design.expected_islands - 1
            );
        }
    }

    /// The degenerate scales — one lane, one tap, a 1x1 mesh, a single
    /// row or column — must build, verify, elaborate, and report the
    /// same advertised instance and island counts as the formulas
    /// promise. These edges have no redundancy to hide an off-by-one:
    /// a 1x1 mesh is one router plus one stimulus plus the shell, and a
    /// one-lane bank is one lane, one stimulus, one shell.
    #[test]
    fn degenerate_scales_report_correct_structure() {
        for design in [
            fir_bank(1, 1, 1),
            fir_bank(1, 4, 1),
            fir_bank(2, 1, 3),
            noc_mesh(1, 1, 1),
            noc_mesh(1, 2, 2),
            noc_mesh(2, 1, 2),
        ] {
            let module = design
                .build()
                .unwrap_or_else(|e| panic!("{}: failed to build: {}", design.name, e));
            llhd::verifier::verify_module(&module)
                .unwrap_or_else(|e| panic!("{}: failed to verify: {:?}", design.name, e));
            let elaborated = elaborate(&module, &design.top)
                .unwrap_or_else(|e| panic!("{}: failed to elaborate: {:?}", design.name, e));
            assert_eq!(
                elaborated.num_instances(),
                design.expected_instances,
                "{}: instance count",
                design.name
            );
            let plan = IslandPlan::build(&module, &elaborated);
            assert_eq!(
                plan.num_islands(),
                design.expected_islands,
                "{}: island count",
                design.name
            );
            assert!(
                elaborated.signal_by_name(&design.probe_signal).is_some(),
                "{}: probe signal {} does not resolve",
                design.name,
                design.probe_signal
            );
        }
    }

    /// The degenerate scales also *run* — on both engines, serial and
    /// parallel — and agree byte for byte. A 1x1 mesh under 4 threads is
    /// the pathological parallel case: more workers than islands.
    #[test]
    fn degenerate_scales_agree_across_engines_and_threads() {
        use llhd_sim::api::EngineKind;

        for design in [fir_bank(1, 1, 1), noc_mesh(1, 1, 1)] {
            let module = design.build().unwrap();
            let mut reference = None;
            for engine in [EngineKind::Interpret, EngineKind::Compile] {
                for threads in [1, 2, 4] {
                    let result = llhd_blaze::session(&module, &design.top)
                        .engine(engine)
                        .until_nanos(design.sim_time_ns(24))
                        .threads(threads)
                        .build()
                        .unwrap()
                        .run()
                        .unwrap();
                    assert!(
                        result.trace.changes_of(&design.probe_signal).count() > 0,
                        "{} ({:?}, t{}): probe {} never changed",
                        design.name,
                        engine,
                        threads,
                        design.probe_signal
                    );
                    let events = result.trace.events().to_vec();
                    match &reference {
                        None => reference = Some(events),
                        Some(expected) => assert_eq!(
                            expected,
                            &events,
                            "{} ({:?}, t{}): trace diverges",
                            design.name,
                            engine,
                            threads
                        ),
                    }
                }
            }
        }
    }
}
