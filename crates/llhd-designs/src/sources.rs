//! The source text of the benchmark designs.
//!
//! Eight designs go through the Moore SystemVerilog frontend; the FIFO and
//! the processor core use memory (register files, queue storage) beyond the
//! frontend subset and are provided directly as Behavioural LLHD assembly,
//! with their SystemVerilog reference listing kept for the Table 4 size
//! comparison.

use crate::{Design, Frontend};

/// The accumulator running example of Figure 3.
pub const ACC_SV: &str = r#"
module acc (input clk, input [31:0] x, input en, output [31:0] q);
  logic [31:0] d;
  always_ff @(posedge clk) q <= d;
  always_comb begin
    d = q;
    if (en) d = q + x;
  end
endmodule

module acc_tb (output clk, output en, output [31:0] x, output [31:0] q);
  acc i_dut (.clk(clk), .x(x), .en(en), .q(q));
  initial begin
    en <= #2ns 1;
    x <= #2ns 1;
    repeat (200) begin
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
    end
  end
endmodule
"#;

pub fn gray() -> Design {
    Design {
        name: "Gray Enc./Dec.",
        frontend: Frontend::Moore,
        sv_source: r#"
module gray (input clk, input [7:0] x, output [7:0] enc, output [7:0] dec);
  logic [7:0] g;
  assign enc = x ^ (x >> 1);
  always_comb begin
    g = enc ^ (enc >> 4);
    g = g ^ (g >> 2);
    dec = g ^ (g >> 1);
  end
endmodule

module gray_tb (output clk, output [7:0] x, output [7:0] enc, output [7:0] dec);
  gray dut (.clk(clk), .x(x), .enc(enc), .dec(dec));
  initial begin
    repeat (200) begin
      x <= #1ns x + 1;
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
    end
  end
endmodule
"#,
        llhd_source: "",
        top: "gray_tb",
        clock_period_ns: 2,
        paper_cycles: 12_600_000,
        probe_signal: "enc",
    }
}

pub fn fir() -> Design {
    Design {
        name: "FIR Filter",
        frontend: Frontend::Moore,
        sv_source: r#"
module fir (input clk, input [15:0] x, output [15:0] y);
  logic [15:0] t0, t1, t2, t3;
  always_ff @(posedge clk) begin
    t0 <= x;
    t1 <= t0;
    t2 <= t1;
    t3 <= t2;
  end
  assign y = t0 + (t1 << 1) + (t2 << 1) + t3;
endmodule

module fir_tb (output clk, output [15:0] x, output [15:0] y);
  fir dut (.clk(clk), .x(x), .y(y));
  initial begin
    repeat (200) begin
      x <= #1ns x + 3;
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
    end
  end
endmodule
"#,
        llhd_source: "",
        top: "fir_tb",
        clock_period_ns: 2,
        paper_cycles: 5_000_000,
        probe_signal: "y",
    }
}

pub fn lfsr() -> Design {
    Design {
        name: "LFSR",
        frontend: Frontend::Moore,
        sv_source: r#"
module lfsr (input clk, input rst, output [15:0] q);
  logic fb;
  assign fb = q[15] ^ q[13] ^ q[12] ^ q[10];
  always_ff @(posedge clk) begin
    if (rst) q <= 16'h1;
    else q <= (q << 1) | fb;
  end
endmodule

module lfsr_tb (output clk, output rst, output [15:0] q);
  lfsr dut (.clk(clk), .rst(rst), .q(q));
  initial begin
    rst <= #1ns 1;
    clk <= #1ns 1;
    clk <= #2ns 0;
    #2ns;
    rst <= #1ns 0;
    repeat (200) begin
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
    end
  end
endmodule
"#,
        llhd_source: "",
        top: "lfsr_tb",
        clock_period_ns: 2,
        paper_cycles: 10_000_000,
        probe_signal: "q",
    }
}

pub fn lzc() -> Design {
    Design {
        name: "Leading Zero C.",
        frontend: Frontend::Moore,
        sv_source: r#"
module lzc (input clk, input [7:0] x, output [3:0] count);
  always_comb begin
    count = 8;
    if (x[0]) count = 7;
    if (x[1]) count = 6;
    if (x[2]) count = 5;
    if (x[3]) count = 4;
    if (x[4]) count = 3;
    if (x[5]) count = 2;
    if (x[6]) count = 1;
    if (x[7]) count = 0;
  end
endmodule

module lzc_tb (output clk, output [7:0] x, output [3:0] count);
  lzc dut (.clk(clk), .x(x), .count(count));
  initial begin
    repeat (200) begin
      x <= #1ns x + 7;
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
    end
  end
endmodule
"#,
        llhd_source: "",
        top: "lzc_tb",
        clock_period_ns: 2,
        paper_cycles: 1_000_000,
        probe_signal: "count",
    }
}

pub fn cdc_gray() -> Design {
    Design {
        name: "CDC (Gray)",
        frontend: Frontend::Moore,
        sv_source: r#"
module cdc_gray (input clk_a, input clk_b, output [7:0] cnt_a, output [7:0] gray_b);
  logic [7:0] gray_a, sync1, sync2;
  always_ff @(posedge clk_a) cnt_a <= cnt_a + 1;
  always_comb gray_a = cnt_a ^ (cnt_a >> 1);
  always_ff @(posedge clk_b) begin
    sync1 <= gray_a;
    sync2 <= sync1;
  end
  assign gray_b = sync2;
endmodule

module cdc_gray_tb (output clk_a, output clk_b, output [7:0] cnt_a, output [7:0] gray_b);
  cdc_gray dut (.clk_a(clk_a), .clk_b(clk_b), .cnt_a(cnt_a), .gray_b(gray_b));
  initial begin
    repeat (200) begin
      clk_a <= #1ns 1;
      clk_a <= #2ns 0;
      clk_b <= #1ns 1;
      clk_b <= #3ns 0;
      #3ns;
    end
  end
endmodule
"#,
        llhd_source: "",
        top: "cdc_gray_tb",
        clock_period_ns: 3,
        paper_cycles: 1_000_000,
        probe_signal: "gray_b",
    }
}

pub fn cdc_strobe() -> Design {
    Design {
        name: "CDC (strobe)",
        frontend: Frontend::Moore,
        sv_source: r#"
module cdc_strobe (input clk_a, input clk_b, input req, output ack, output [7:0] events);
  logic toggle, sync1, sync2, sync3;
  always_ff @(posedge clk_a) begin
    if (req) toggle <= ~toggle;
  end
  always_ff @(posedge clk_b) begin
    sync1 <= toggle;
    sync2 <= sync1;
    sync3 <= sync2;
    if (sync2 != sync3) events <= events + 1;
  end
  assign ack = sync2;
endmodule

module cdc_strobe_tb (output clk_a, output clk_b, output req, output ack, output [7:0] events);
  cdc_strobe dut (.clk_a(clk_a), .clk_b(clk_b), .req(req), .ack(ack), .events(events));
  initial begin
    req <= #1ns 1;
    repeat (200) begin
      clk_a <= #1ns 1;
      clk_a <= #2ns 0;
      clk_b <= #2ns 1;
      clk_b <= #4ns 0;
      #4ns;
    end
  end
endmodule
"#,
        llhd_source: "",
        top: "cdc_strobe_tb",
        clock_period_ns: 4,
        paper_cycles: 3_500_000,
        probe_signal: "events",
    }
}

pub fn rr_arbiter() -> Design {
    Design {
        name: "RR Arbiter",
        frontend: Frontend::Moore,
        sv_source: r#"
module rr_arbiter (input clk, input [3:0] req, output [3:0] grant, output [1:0] last);
  logic [1:0] next;
  always_comb begin
    grant = 0;
    next = last;
    if (last == 0) begin
      if (req[1]) begin grant = 2; next = 1; end
      else if (req[2]) begin grant = 4; next = 2; end
      else if (req[3]) begin grant = 8; next = 3; end
      else if (req[0]) begin grant = 1; next = 0; end
    end else begin
      if (req[0]) begin grant = 1; next = 0; end
      else if (req[1]) begin grant = 2; next = 1; end
      else if (req[2]) begin grant = 4; next = 2; end
      else if (req[3]) begin grant = 8; next = 3; end
    end
  end
  always_ff @(posedge clk) last <= next;
endmodule

module rr_arbiter_tb (output clk, output [3:0] req, output [3:0] grant, output [1:0] last);
  rr_arbiter dut (.clk(clk), .req(req), .grant(grant), .last(last));
  initial begin
    repeat (200) begin
      req <= #1ns req + 5;
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
    end
  end
endmodule
"#,
        llhd_source: "",
        top: "rr_arbiter_tb",
        clock_period_ns: 2,
        paper_cycles: 5_000_000,
        probe_signal: "grant",
    }
}

pub fn stream_delayer() -> Design {
    Design {
        name: "Stream Delayer",
        frontend: Frontend::Moore,
        sv_source: r#"
module stream_delayer (input clk, input valid_i, input [7:0] data_i,
                       output valid_o, output [7:0] data_o);
  logic v0, v1, v2;
  logic [7:0] d0, d1, d2;
  always_ff @(posedge clk) begin
    v0 <= valid_i;
    d0 <= data_i;
    v1 <= v0;
    d1 <= d0;
    v2 <= v1;
    d2 <= d1;
  end
  assign valid_o = v2;
  assign data_o = d2;
endmodule

module stream_delayer_tb (output clk, output valid_i, output [7:0] data_i,
                          output valid_o, output [7:0] data_o);
  stream_delayer dut (.clk(clk), .valid_i(valid_i), .data_i(data_i),
                      .valid_o(valid_o), .data_o(data_o));
  initial begin
    valid_i <= #1ns 1;
    repeat (200) begin
      data_i <= #1ns data_i + 1;
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
    end
  end
endmodule
"#,
        llhd_source: "",
        top: "stream_delayer_tb",
        clock_period_ns: 2,
        paper_cycles: 2_500_000,
        probe_signal: "data_o",
    }
}

pub fn fifo() -> Design {
    Design {
        name: "FIFO Queue",
        frontend: Frontend::Assembly,
        sv_source: r#"
module fifo (input clk, input push, input pop, input [7:0] data_i,
             output [7:0] data_o, output [2:0] count);
  logic [7:0] mem [0:3];
  logic [1:0] wr_ptr, rd_ptr;
  always_ff @(posedge clk) begin
    if (push && count < 4) begin
      mem[wr_ptr] <= data_i;
      wr_ptr <= wr_ptr + 1;
      count <= count + 1;
    end
    if (pop && count > 0) begin
      data_o <= mem[rd_ptr];
      rd_ptr <= rd_ptr + 1;
      count <= count - 1;
    end
  end
endmodule
"#,
        llhd_source: r#"
proc @fifo (i1$ %clk, i1$ %push, i1$ %pop, i8$ %data_i) -> (i8$ %data_o, i3$ %count) {
setup:
    %zero8 = const i8 0
    %s0p = var i8 %zero8
    %s1p = var i8 %zero8
    %s2p = var i8 %zero8
    %s3p = var i8 %zero8
    br %main
main:
    %clk0 = prb i1$ %clk
    wait %sample, %clk
sample:
    %clk1 = prb i1$ %clk
    %chg = neq i1 %clk0, %clk1
    %posedge = and i1 %chg, %clk1
    br %posedge, %main, %tick
tick:
    %pushp = prb i1$ %push
    %popp = prb i1$ %pop
    %din = prb i8$ %data_i
    %cnt = prb i3$ %count
    %s0 = ld i8* %s0p
    %s1 = ld i8* %s1p
    %s2 = ld i8* %s2p
    %s3 = ld i8* %s3p
    %four = const i3 4
    %zero3 = const i3 0
    %one3 = const i3 1
    %delay = const time 0s
    %notfull = ult i3 %cnt, %four
    %dopush = and i1 %pushp, %notfull
    %c0 = array [%s0, %din]
    %ns0 = mux [2 x i8] %c0, %dopush
    %c1 = array [%s1, %s0]
    %ns1 = mux [2 x i8] %c1, %dopush
    %c2 = array [%s2, %s1]
    %ns2 = mux [2 x i8] %c2, %dopush
    %c3 = array [%s3, %s2]
    %ns3 = mux [2 x i8] %c3, %dopush
    st i8* %s0p, %ns0
    st i8* %s1p, %ns1
    st i8* %s2p, %ns2
    st i8* %s3p, %ns3
    %pushinc = zext i3 %dopush
    %cnt1 = add i3 %cnt, %pushinc
    %notempty = ugt i3 %cnt1, %zero3
    %dopop = and i1 %popp, %notempty
    %idx = sub i3 %cnt1, %one3
    %slots = array [%ns0, %ns1, %ns2, %ns3]
    %dout = mux [4 x i8] %slots, %idx
    drv i8$ %data_o, %dout after %delay if %dopop
    %popdec = zext i3 %dopop
    %cnt2 = sub i3 %cnt1, %popdec
    drv i3$ %count, %cnt2 after %delay
    br %main
}

proc @fifo_tb_stim () -> (i1$ %clk, i1$ %push, i1$ %pop, i8$ %data_i) {
entry:
    %one = const i1 1
    %zero = const i1 0
    %d1 = const time 1ns
    %d2 = const time 2ns
    %zero8 = const i8 0
    %three = const i8 3
    %i = var i8 %zero8
    drv i1$ %push, %one after %d1
    drv i1$ %pop, %one after %d1
    br %loop
loop:
    %ip = ld i8* %i
    %next = add i8 %ip, %three
    st i8* %i, %next
    drv i8$ %data_i, %next after %d1
    drv i1$ %clk, %one after %d1
    drv i1$ %clk, %zero after %d2
    wait %loop for %d2
}

entity @fifo_tb () -> () {
    %z1 = const i1 0
    %z8 = const i8 0
    %z3 = const i3 0
    %clk = sig i1 %z1
    %push = sig i1 %z1
    %pop = sig i1 %z1
    %data_i = sig i8 %z8
    %data_o = sig i8 %z8
    %count = sig i3 %z3
    inst @fifo (%clk, %push, %pop, %data_i) -> (%data_o, %count)
    inst @fifo_tb_stim () -> (%clk, %push, %pop, %data_i)
}
"#,
        top: "fifo_tb",
        clock_period_ns: 2,
        paper_cycles: 1_000_000,
        probe_signal: "data_o",
    }
}

pub fn riscv_core() -> Design {
    Design {
        name: "RISC-V Core",
        frontend: Frontend::Assembly,
        sv_source: r#"
module riscv_mini (input clk, input rst, output [31:0] pc_o, output [31:0] acc_o);
  // A multi-cycle accumulator-style core executing a small ROM program:
  //   0: addi acc, 1
  //   1: add  acc, acc
  //   2: addi acc, 3
  //   3: sub  acc, 2
  //   4: bne  acc, 0, 0   (loop)
  logic [31:0] pc, acc;
  logic [31:0] regfile [0:7];
  always_ff @(posedge clk) begin
    if (rst) begin pc <= 0; acc <= 0; end
    else begin
      case (pc[2:0])
        0: acc <= acc + 1;
        1: acc <= acc + acc;
        2: acc <= acc + 3;
        3: acc <= acc - 2;
        default: acc <= acc;
      endcase
      if (pc == 4) pc <= 0; else pc <= pc + 1;
    end
  end
  assign pc_o = pc;
  assign acc_o = acc;
endmodule
"#,
        llhd_source: r#"
proc @riscv_mini (i1$ %clk) -> (i32$ %pc_o, i32$ %acc_o) {
init:
    %clk0 = prb i1$ %clk
    wait %check, %clk
check:
    %clk1 = prb i1$ %clk
    %chg = neq i1 %clk0, %clk1
    %posedge = and i1 %chg, %clk1
    br %posedge, %init, %exec
exec:
    %pc = prb i32$ %pc_o
    %acc = prb i32$ %acc_o
    %zero = const i32 0
    %one = const i32 1
    %two = const i32 2
    %three = const i32 3
    %four = const i32 4
    %delay = const time 0s
    %r0 = add i32 %acc, %one
    %r1 = add i32 %acc, %acc
    %r2 = add i32 %acc, %three
    %r3 = sub i32 %acc, %two
    %rom = array [%r0, %r1, %r2, %r3, %acc]
    %accn = mux [5 x i32] %rom, %pc
    drv i32$ %acc_o, %accn after %delay
    %atend = uge i32 %pc, %four
    %pcinc = add i32 %pc, %one
    %pcs = array [%pcinc, %zero]
    %pcn = mux [2 x i32] %pcs, %atend
    drv i32$ %pc_o, %pcn after %delay
    br %init
}

proc @riscv_tb_clk () -> (i1$ %clk) {
entry:
    %one = const i1 1
    %zero = const i1 0
    %d1 = const time 1ns
    %d2 = const time 2ns
    drv i1$ %clk, %one after %d1
    drv i1$ %clk, %zero after %d2
    wait %entry for %d2
}

entity @riscv_tb () -> () {
    %z1 = const i1 0
    %z32 = const i32 0
    %clk = sig i1 %z1
    %pc = sig i32 %z32
    %acc = sig i32 %z32
    inst @riscv_mini (%clk) -> (%pc, %acc)
    inst @riscv_tb_clk () -> (%clk)
}
"#,
        top: "riscv_tb",
        clock_period_ns: 2,
        paper_cycles: 1_000_000,
        probe_signal: "acc",
    }
}
