//! # llhd-designs — the benchmark designs of the LLHD paper evaluation
//!
//! The paper evaluates LLHD on ten open-source SystemVerilog designs ranging
//! from small arithmetic blocks to a RISC-V core (Table 2). This crate
//! re-implements functionally equivalent versions of each design together
//! with a self-contained testbench, so the simulation-performance (Table 2)
//! and size-efficiency (Table 4) experiments can be regenerated.
//!
//! Each [`Design`] carries:
//! * the SystemVerilog source of the DUT (the design under test) as the
//!   paper's notion of the "input" artifact,
//! * the Behavioural LLHD of DUT plus testbench (either compiled from the
//!   SystemVerilog through [`moore`] or emitted directly in LLHD assembly
//!   for constructs outside the frontend subset),
//! * the name of the top-level testbench unit and the nominal clock period.
//!
//! ```
//! let designs = llhd_designs::all_designs();
//! assert_eq!(designs.len(), 10);
//! let module = designs[0].build().unwrap();
//! assert!(llhd::verifier::verify_module(&module).is_ok());
//! ```

use llhd::assembly::parse_module;
use llhd::ir::Module;

mod sources;

pub mod generate;
pub use generate::{fir_bank, noc_mesh, parallel_corpus, GeneratedDesign};

/// How the LLHD for a design is produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Frontend {
    /// Compiled from SystemVerilog by the `moore` frontend.
    Moore,
    /// Hand-written Behavioural LLHD assembly (constructs outside the
    /// frontend subset, e.g. multi-dimensional state).
    Assembly,
}

/// One benchmark design plus its testbench.
#[derive(Clone, Debug)]
pub struct Design {
    /// The short name used in Table 2 / Table 4.
    pub name: &'static str,
    /// The SystemVerilog source of the design under test.
    pub sv_source: &'static str,
    /// The LLHD assembly of DUT and testbench (empty when the design goes
    /// through the Moore frontend).
    pub llhd_source: &'static str,
    /// How [`Design::build`] produces the module.
    pub frontend: Frontend,
    /// The name of the top-level testbench unit.
    pub top: &'static str,
    /// The nominal clock period in nanoseconds.
    pub clock_period_ns: u128,
    /// The number of simulated clock cycles the paper used.
    pub paper_cycles: u64,
    /// A signal (name suffix) whose activity indicates the design is alive;
    /// used by smoke tests and trace comparisons.
    pub probe_signal: &'static str,
}

impl Design {
    /// Build the Behavioural LLHD module for this design.
    ///
    /// # Errors
    ///
    /// Returns an error string if the frontend or the assembler rejects the
    /// source (which would indicate a bug in this crate).
    pub fn build(&self) -> Result<Module, String> {
        match self.frontend {
            Frontend::Moore => moore::compile(self.sv_source).map_err(|e| e.to_string()),
            Frontend::Assembly => parse_module(self.llhd_source).map_err(|e| e.to_string()),
        }
    }

    /// The simulation end time (in nanoseconds) for a given cycle count.
    pub fn sim_time_ns(&self, cycles: u64) -> u128 {
        self.clock_period_ns * cycles as u128 + 10
    }

    /// Lines of SystemVerilog code of the design under test (excluding blank
    /// lines), reported as "LoC" in Table 2.
    pub fn sv_lines(&self) -> usize {
        self.sv_source
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    }

    /// Size of the SystemVerilog source in bytes, reported in Table 4.
    pub fn sv_bytes(&self) -> usize {
        self.sv_source.len()
    }
}

/// All ten designs of the evaluation, in Table 2 order.
pub fn all_designs() -> Vec<Design> {
    vec![
        sources::gray(),
        sources::fir(),
        sources::lfsr(),
        sources::lzc(),
        sources::fifo(),
        sources::cdc_gray(),
        sources::cdc_strobe(),
        sources::rr_arbiter(),
        sources::stream_delayer(),
        sources::riscv_core(),
    ]
}

/// Look up a design by name.
pub fn design_by_name(name: &str) -> Option<Design> {
    all_designs().into_iter().find(|d| d.name == name)
}

/// The accumulator running example of the paper (Figure 2/3/5), built from
/// its SystemVerilog source through the Moore frontend.
pub fn accumulator_example() -> Result<Module, String> {
    moore::compile(sources::ACC_SV).map_err(|e| e.to_string())
}

/// The SystemVerilog source of the accumulator running example (Figure 3).
pub fn accumulator_source() -> &'static str {
    sources::ACC_SV
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhd_sim::api::{EngineKind, SimSession};
    use llhd_sim::{SimConfig, SimResult};

    fn run(module: &Module, top: &str, config: &SimConfig, engine: EngineKind) -> SimResult {
        llhd_blaze::register();
        SimSession::builder(module, top)
            .engine(engine)
            .config(config.clone())
            .build()
            .expect("session builds")
            .run()
            .expect("simulation runs")
    }

    #[test]
    fn all_designs_build_and_verify() {
        for design in all_designs() {
            let module = design
                .build()
                .unwrap_or_else(|e| panic!("{} failed to build: {}", design.name, e));
            llhd::verifier::verify_module(&module)
                .unwrap_or_else(|e| panic!("{} failed to verify: {:?}", design.name, e));
            assert!(design.sv_lines() > 3, "{} has no SV source", design.name);
        }
    }

    #[test]
    fn all_designs_simulate_and_produce_activity() {
        for design in all_designs() {
            let module = design.build().unwrap();
            let config = SimConfig::until_nanos(design.sim_time_ns(30))
                .with_trace_filter(&[design.probe_signal]);
            let result = run(&module, design.top, &config, EngineKind::Interpret);
            assert!(
                result.trace.changes_of(design.probe_signal).count() > 0,
                "{}: no activity on probe signal {}",
                design.name,
                design.probe_signal
            );
        }
    }

    #[test]
    fn interpreter_and_blaze_traces_match_for_every_design() {
        for design in all_designs() {
            let module = design.build().unwrap();
            let config = SimConfig::until_nanos(design.sim_time_ns(20));
            let reference = run(&module, design.top, &config, EngineKind::Interpret);
            let blaze = run(&module, design.top, &config, EngineKind::Compile);
            assert!(
                reference.trace.equivalent(&blaze.trace),
                "{}: traces diverge",
                design.name
            );
        }
    }

    #[test]
    fn accumulator_example_builds() {
        let module = accumulator_example().unwrap();
        assert!(module.unit_by_ident("acc").is_some());
        assert!(module.unit_by_ident("acc_tb").is_some());
    }

    #[test]
    fn design_lookup() {
        assert!(design_by_name("LFSR").is_some());
        assert!(design_by_name("missing").is_none());
        assert_eq!(all_designs().len(), 10);
    }
}
