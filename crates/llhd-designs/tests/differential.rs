//! Differential testing of the two simulation engines.
//!
//! Both engines run on the shared scheduling core in `llhd_sim::sched`,
//! so their behaviour must agree not just up to delta-step reordering
//! (the `equivalent` check the library tests already do) but **exactly**:
//! the same value changes, at the same `(time, delta, epsilon)` instants,
//! in the same order, under the same names. Any divergence — typically
//! introduced by a scheduler refactor that changes activation order in
//! one engine only — fails here immediately, on every benchmark design.
//!
//! Both engines are driven through the one public surface,
//! [`SimSession`]: the engine is the only thing that differs between the
//! two runs of each design.

use llhd::ir::Module;
use llhd_designs::all_designs;
use llhd_sim::api::{EngineKind, SimSession};
use llhd_sim::{SimConfig, SimResult};

fn run(module: &Module, top: &str, config: &SimConfig, engine: EngineKind) -> SimResult {
    llhd_blaze::register();
    SimSession::builder(module, top)
        .engine(engine)
        .config(config.clone())
        .build()
        .expect("session builds")
        .run()
        .expect("simulation runs")
}

/// Every design, through both engines, with full tracing: the traces must
/// be byte-identical.
#[test]
fn interpreter_and_blaze_traces_are_byte_identical() {
    for design in all_designs() {
        let module = design.build().unwrap();
        let config = SimConfig::until_nanos(design.sim_time_ns(25));
        let reference = run(&module, design.top, &config, EngineKind::Interpret);
        let blaze = run(&module, design.top, &config, EngineKind::Compile);
        assert_eq!(
            reference.trace.events(),
            blaze.trace.events(),
            "{}: traces are not byte-identical",
            design.name
        );
        // The VCD serialization of both traces must match byte for byte
        // as well (same identifier assignment, same timestamps).
        assert_eq!(
            reference.trace.to_vcd("1fs"),
            blaze.trace.to_vcd("1fs"),
            "{}: VCD output diverges",
            design.name
        );
        // And the scheduler-visible statistics must line up exactly.
        assert_eq!(
            reference.signal_changes, blaze.signal_changes,
            "{}: signal change counts diverge",
            design.name
        );
        assert_eq!(
            reference.end_time, blaze.end_time,
            "{}: end times diverge",
            design.name
        );
        assert_eq!(
            reference.assertions_checked, blaze.assertions_checked,
            "{}: assertion counts diverge",
            design.name
        );
    }
}

/// Every blaze lowering configuration — generic dispatch, specialization
/// without fusion, and the full superinstruction pipeline — produces the
/// identical trace on every design. This is the ablation surface's
/// correctness guarantee: the knobs may only change speed, never a single
/// byte of observable behaviour.
#[test]
fn blaze_lowering_knobs_do_not_change_traces() {
    use llhd_blaze::{compile_design_with, BlazeOptions, BlazeSimulator};
    use llhd_sim::elaborate;
    use std::sync::Arc;

    for design in all_designs() {
        let module = design.build().unwrap();
        let config = SimConfig::until_nanos(design.sim_time_ns(20));
        let elaborated = Arc::new(elaborate(&module, design.top).unwrap());
        let reference = run(&module, design.top, &config, EngineKind::Interpret);
        for options in [
            BlazeOptions {
                fuse: false,
                specialize: false,
                islands: true,
            },
            BlazeOptions {
                fuse: false,
                specialize: true,
                islands: true,
            },
            BlazeOptions {
                fuse: true,
                specialize: false,
                islands: true,
            },
            BlazeOptions::default(),
        ] {
            let compiled =
                compile_design_with(&module, Arc::clone(&elaborated), options).unwrap();
            let result = BlazeSimulator::new(compiled, config.clone())
                .run()
                .unwrap();
            assert_eq!(
                reference.trace.events(),
                result.trace.events(),
                "{} ({:?}): trace diverges from the interpreter",
                design.name,
                options
            );
            assert_eq!(
                reference.signal_changes, result.signal_changes,
                "{} ({:?}): signal change counts diverge",
                design.name,
                options
            );
        }
    }
}

/// Island-parallel instants against the serial loop, on the generated
/// corpus that actually *has* islands, at several scales and thread
/// counts, on both engines: the traces, statistics, and end times must be
/// byte-identical. This is the correctness contract of the `threads` knob
/// — parallelism may only change speed, never a single observable byte.
#[test]
fn parallel_and_serial_runs_are_byte_identical_on_generated_designs() {
    use llhd_designs::{fir_bank, noc_mesh};

    for design in [fir_bank(4, 8, 3), fir_bank(16, 32, 3), noc_mesh(4, 4, 5), noc_mesh(8, 8, 5)] {
        let module = design.build().unwrap();
        for engine in [EngineKind::Interpret, EngineKind::Compile] {
            let serial_config = SimConfig::until_nanos(design.sim_time_ns(40));
            let serial = run(&module, &design.top, &serial_config, engine);
            assert!(
                serial.trace.changes_of(&design.probe_signal).count() > 0,
                "{}: no activity on probe signal {}",
                design.name,
                design.probe_signal
            );
            for threads in [2, 4, 8] {
                let config = serial_config.clone().with_threads(threads);
                let parallel = run(&module, &design.top, &config, engine);
                assert_eq!(
                    serial.trace.events(),
                    parallel.trace.events(),
                    "{} ({:?}, {} threads): trace diverges from serial",
                    design.name,
                    engine,
                    threads
                );
                assert_eq!(
                    serial.trace.to_vcd("1fs"),
                    parallel.trace.to_vcd("1fs"),
                    "{} ({:?}, {} threads): VCD output diverges",
                    design.name,
                    engine,
                    threads
                );
                assert_eq!(
                    (serial.signal_changes, serial.activations, serial.end_time),
                    (parallel.signal_changes, parallel.activations, parallel.end_time),
                    "{} ({:?}, {} threads): statistics diverge",
                    design.name,
                    engine,
                    threads
                );
            }
        }
    }
}

/// The same contract at the top of the corpus: the largest generated
/// designs (32-lane FIR bank, 16-row NoC mesh — the scales the
/// `sim-parallel` benchmarks measure), both engines, threads 2/4/8.
/// Ignored by default because it is release-weight; `ci.sh` runs it
/// explicitly under `--release` as the parallel-differential gate.
#[test]
#[ignore = "release-weight; run explicitly by ci.sh"]
fn largest_generated_design_parallel_differential() {
    use llhd_designs::{fir_bank, noc_mesh};

    for design in [fir_bank(32, 64, 7), noc_mesh(16, 8, 11)] {
        let module = design.build().unwrap();
        for engine in [EngineKind::Interpret, EngineKind::Compile] {
            let serial_config = SimConfig::until_nanos(design.sim_time_ns(30));
            let serial = run(&module, &design.top, &serial_config, engine);
            assert!(
                serial.trace.changes_of(&design.probe_signal).count() > 0,
                "{}: no activity on probe signal {}",
                design.name,
                design.probe_signal
            );
            for threads in [2, 4, 8] {
                let config = serial_config.clone().with_threads(threads);
                let parallel = run(&module, &design.top, &config, engine);
                assert_eq!(
                    serial.trace.events(),
                    parallel.trace.events(),
                    "{} ({:?}, {} threads): trace diverges from serial",
                    design.name,
                    engine,
                    threads
                );
                assert_eq!(
                    (serial.signal_changes, serial.activations, serial.end_time),
                    (parallel.signal_changes, parallel.activations, parallel.end_time),
                    "{} ({:?}, {} threads): statistics diverge",
                    design.name,
                    engine,
                    threads
                );
            }
        }
    }
}

/// Determinism within one engine: two runs of the same design produce the
/// identical trace (no hash-iteration or allocation-order dependence).
#[test]
fn repeated_runs_are_deterministic() {
    for design in all_designs() {
        let module = design.build().unwrap();
        let config = SimConfig::until_nanos(design.sim_time_ns(10));
        let a = run(&module, design.top, &config, EngineKind::Interpret);
        let b = run(&module, design.top, &config, EngineKind::Interpret);
        assert_eq!(
            a.trace.events(),
            b.trace.events(),
            "{}: interpreter runs diverge",
            design.name
        );
        let c = run(&module, design.top, &config, EngineKind::Compile);
        let d = run(&module, design.top, &config, EngineKind::Compile);
        assert_eq!(
            c.trace.events(),
            d.trace.events(),
            "{}: blaze runs diverge",
            design.name
        );
    }
}
