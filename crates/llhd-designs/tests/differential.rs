//! Differential testing of the two simulation engines.
//!
//! Both engines run on the shared scheduling core in `llhd_sim::sched`,
//! so their behaviour must agree not just up to delta-step reordering
//! (the `equivalent` check the library tests already do) but **exactly**:
//! the same value changes, at the same `(time, delta, epsilon)` instants,
//! in the same order, under the same names. Any divergence — typically
//! introduced by a scheduler refactor that changes activation order in
//! one engine only — fails here immediately, on every benchmark design.

use llhd_designs::all_designs;
use llhd_sim::SimConfig;

/// Every design, through both engines, with full tracing: the traces must
/// be byte-identical.
#[test]
fn interpreter_and_blaze_traces_are_byte_identical() {
    for design in all_designs() {
        let module = design.build().unwrap();
        let config = SimConfig::until_nanos(design.sim_time_ns(25));
        let reference = llhd_sim::simulate(&module, design.top, &config)
            .unwrap_or_else(|e| panic!("{}: interpreter failed: {}", design.name, e));
        let blaze = llhd_blaze::simulate(&module, design.top, &config)
            .unwrap_or_else(|e| panic!("{}: blaze failed: {}", design.name, e));
        assert_eq!(
            reference.trace.events(),
            blaze.trace.events(),
            "{}: traces are not byte-identical",
            design.name
        );
        // The VCD serialization of both traces must match byte for byte
        // as well (same identifier assignment, same timestamps).
        assert_eq!(
            reference.trace.to_vcd("1fs"),
            blaze.trace.to_vcd("1fs"),
            "{}: VCD output diverges",
            design.name
        );
        // And the scheduler-visible statistics must line up exactly.
        assert_eq!(
            reference.signal_changes, blaze.signal_changes,
            "{}: signal change counts diverge",
            design.name
        );
        assert_eq!(
            reference.end_time, blaze.end_time,
            "{}: end times diverge",
            design.name
        );
        assert_eq!(
            reference.assertions_checked, blaze.assertions_checked,
            "{}: assertion counts diverge",
            design.name
        );
    }
}

/// Determinism within one engine: two runs of the same design produce the
/// identical trace (no hash-iteration or allocation-order dependence).
#[test]
fn repeated_runs_are_deterministic() {
    for design in all_designs() {
        let module = design.build().unwrap();
        let config = SimConfig::until_nanos(design.sim_time_ns(10));
        let a = llhd_sim::simulate(&module, design.top, &config).unwrap();
        let b = llhd_sim::simulate(&module, design.top, &config).unwrap();
        assert_eq!(
            a.trace.events(),
            b.trace.events(),
            "{}: interpreter runs diverge",
            design.name
        );
        let c = llhd_blaze::simulate(&module, design.top, &config).unwrap();
        let d = llhd_blaze::simulate(&module, design.top, &config).unwrap();
        assert_eq!(
            c.trace.events(),
            d.trace.events(),
            "{}: blaze runs diverge",
            design.name
        );
    }
}
