//! Integration tests of the unified `SimSession` surface over the real
//! benchmark designs: pause/resume determinism on both engines, design
//! cache hit/miss semantics (a cached repeat run skips `compile_design`
//! entirely), streaming VCD output, and the parallel batch runner.

use llhd_designs::{accumulator_example, all_designs};
use llhd_sim::api::{BatchJob, DesignCache, EngineKind, SimSession, VcdSink};
use llhd_sim::SimConfig;

/// A session stepped in arbitrary chunks produces a trace byte-identical
/// to an uninterrupted run — on both engines, over real designs.
#[test]
fn chunked_stepping_is_deterministic_on_both_engines() {
    llhd_blaze::register();
    for design in all_designs().into_iter().take(3) {
        let module = design.build().unwrap();
        let config = SimConfig::until_nanos(design.sim_time_ns(10));
        for engine in [EngineKind::Interpret, EngineKind::Compile] {
            let full = SimSession::builder(&module, design.top)
                .engine(engine)
                .config(config.clone())
                .build()
                .unwrap()
                .run()
                .unwrap();
            let mut chunked = SimSession::builder(&module, design.top)
                .engine(engine)
                .config(config.clone())
                .build()
                .unwrap();
            // Pause after uneven chunks of cycles, then run out the rest.
            let mut more = true;
            for chunk in [1usize, 2, 5, 13] {
                for _ in 0..chunk {
                    if !chunked.step().unwrap() {
                        more = false;
                        break;
                    }
                }
            }
            while more && chunked.step().unwrap() {}
            let stepped = chunked.finish().unwrap();
            assert_eq!(
                full.trace.events(),
                stepped.trace.events(),
                "{} ({:?}): chunked stepping diverged from the uninterrupted run",
                design.name,
                engine
            );
            assert_eq!(full.end_time, stepped.end_time, "{}", design.name);
            assert_eq!(
                full.signal_changes, stepped.signal_changes,
                "{}",
                design.name
            );
        }
    }
}

/// Checkpoint at a mid-run step, restore into a *fresh* session, and run
/// out the rest: the resumed trace must be byte-identical to an
/// uninterrupted run — on both engines, over real designs.
#[test]
fn checkpoint_restore_resumes_byte_identical_on_both_engines() {
    llhd_blaze::register();
    for design in all_designs().into_iter().take(3) {
        let module = design.build().unwrap();
        let config = SimConfig::until_nanos(design.sim_time_ns(10));
        for engine in [EngineKind::Interpret, EngineKind::Compile] {
            let full = SimSession::builder(&module, design.top)
                .engine(engine)
                .config(config.clone())
                .build()
                .unwrap()
                .run()
                .unwrap();
            let mut first = SimSession::builder(&module, design.top)
                .engine(engine)
                .config(config.clone())
                .build()
                .unwrap();
            for _ in 0..9 {
                if !first.step().unwrap() {
                    break;
                }
            }
            let state = first.checkpoint().unwrap();
            drop(first);
            let mut resumed = SimSession::builder(&module, design.top)
                .engine(engine)
                .config(config.clone())
                .build()
                .unwrap();
            resumed.restore(&state).unwrap();
            while resumed.step().unwrap() {}
            let result = resumed.finish().unwrap();
            assert_eq!(
                full.trace.events(),
                result.trace.events(),
                "{} ({:?}): resumed trace diverged from the uninterrupted run",
                design.name,
                engine
            );
            assert_eq!(full.end_time, result.end_time, "{}", design.name);
            assert_eq!(
                full.signal_changes, result.signal_changes,
                "{}",
                design.name
            );
        }
    }
}

/// A cached repeat run of a moore-built testbench skips `compile_design`
/// entirely: the second session is served from the cache, observable
/// through the compile-hit counter (the backend's compile hook only runs
/// on misses).
#[test]
fn cached_repeat_run_skips_compilation() {
    llhd_blaze::register();
    let module = accumulator_example().unwrap();
    let cache = DesignCache::new();
    let config = SimConfig::until_nanos(60);

    let first = SimSession::builder(&module, "acc_tb")
        .engine(EngineKind::Compile)
        .config(config.clone())
        .cache(&cache)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(cache.compile_misses(), 1, "first run must compile");
    assert_eq!(cache.compile_hits(), 0);

    let second = SimSession::builder(&module, "acc_tb")
        .engine(EngineKind::Compile)
        .config(config.clone())
        .cache(&cache)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(
        cache.compile_hits(),
        1,
        "second run must be served from the cache"
    );
    assert_eq!(
        cache.compile_misses(),
        1,
        "compile_design must not run again"
    );
    assert_eq!(first.trace.events(), second.trace.events());

    // An interpreter session on the same design reuses the cached
    // elaboration without touching the compile table.
    SimSession::builder(&module, "acc_tb")
        .engine(EngineKind::Interpret)
        .config(config.clone())
        .cache(&cache)
        .build()
        .unwrap();
    assert_eq!(cache.elaborate_hits(), 1);
    assert_eq!(cache.compile_misses(), 1);

    // A different top or module is a different key.
    let err = SimSession::builder(&module, "acc")
        .engine(EngineKind::Compile)
        .cache(&cache)
        .build();
    // ("acc" has ports, so elaboration succeeds; both entries coexist.)
    assert!(err.is_ok());
    assert_eq!(cache.len(), 2);
}

/// The streaming VCD sink produces byte-identical output to the
/// post-hoc `Trace::to_vcd`, on both engines.
#[test]
fn streaming_vcd_equals_in_memory_vcd() {
    llhd_blaze::register();
    let design = &all_designs()[2]; // LFSR
    let module = design.build().unwrap();
    let config = SimConfig::until_nanos(design.sim_time_ns(10));
    for engine in [EngineKind::Interpret, EngineKind::Compile] {
        let mut vcd = VcdSink::new("1fs");
        let result = SimSession::builder(&module, design.top)
            .engine(engine)
            .config(config.clone())
            .sink(&mut vcd)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert!(!result.trace.is_empty(), "{}: no activity", design.name);
        assert_eq!(
            vcd.into_string(),
            result.trace.to_vcd("1fs"),
            "{} ({:?}): streamed VCD diverges from Trace::to_vcd",
            design.name,
            engine
        );
    }
}

/// `run_batch` over every benchmark design produces exactly the traces of
/// the equivalent individual sessions, in job order.
#[test]
fn batch_runner_matches_individual_sessions() {
    llhd_blaze::register();
    let built: Vec<_> = all_designs()
        .into_iter()
        .map(|design| {
            let module = design.build().unwrap();
            let config = SimConfig::until_nanos(design.sim_time_ns(5))
                .with_trace_filter(&[design.probe_signal]);
            (design, module, config)
        })
        .collect();
    let jobs: Vec<BatchJob> = built
        .iter()
        .map(|(design, module, config)| BatchJob {
            module,
            top: design.top,
            engine: EngineKind::Compile,
            config: config.clone(),
            cache_key: None,
        })
        .collect();
    let cache = DesignCache::new();
    let results = SimSession::run_batch(&jobs, Some(&cache));
    assert_eq!(results.len(), jobs.len());
    for ((design, module, config), result) in built.iter().zip(&results) {
        let batch_result = result.as_ref().unwrap();
        let solo = SimSession::builder(module, design.top)
            .engine(EngineKind::Compile)
            .config(config.clone())
            .cache(&cache)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            solo.trace.events(),
            batch_result.trace.events(),
            "{}: batch result diverges from a solo session",
            design.name
        );
    }
    // Ten distinct designs: each compiled exactly once by the batch, then
    // served from the cache for the solo re-runs above.
    assert_eq!(cache.compile_misses(), jobs.len());
    assert_eq!(cache.compile_hits(), jobs.len());
}

/// LRU eviction under a severely bounded cache must never disturb
/// in-flight sessions: a capacity-1 cache under a concurrent mixed-design
/// batch evicts designs *while other jobs still run on them* (they hold
/// their own `Arc`s), and every trace must still be byte-identical to an
/// uncached solo run.
#[test]
fn eviction_mid_batch_leaves_traces_unchanged() {
    llhd_blaze::register();
    let built: Vec<_> = all_designs()
        .into_iter()
        .take(6)
        .map(|design| {
            let module = design.build().unwrap();
            let config = SimConfig::until_nanos(design.sim_time_ns(5))
                .with_trace_filter(&[design.probe_signal]);
            (design, module, config)
        })
        .collect();
    // Each design appears twice, interleaved, so cache entries are both
    // evicted and re-filled while the first wave is still simulating.
    let jobs: Vec<BatchJob> = (0..2)
        .flat_map(|_| {
            built.iter().map(|(design, module, config)| BatchJob {
                module,
                top: design.top,
                engine: EngineKind::Compile,
                config: config.clone(),
                cache_key: None,
            })
        })
        .collect();
    let cache = DesignCache::with_capacity(1);
    let results = SimSession::run_batch(&jobs, Some(&cache));
    assert!(
        cache.evictions() > 0,
        "a capacity-1 cache under {} mixed jobs must evict",
        jobs.len()
    );
    assert!(cache.len() <= built.len(), "cache kept every design live");
    for (i, result) in results.iter().enumerate() {
        let (design, module, config) = &built[i % built.len()];
        let batch_result = result.as_ref().unwrap();
        let solo = SimSession::builder(module, design.top)
            .engine(EngineKind::Compile)
            .config(config.clone())
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            solo.trace.events(),
            batch_result.trace.events(),
            "{}: trace disturbed by mid-batch eviction",
            design.name
        );
    }
}

/// `EngineKind::Auto` picks the compiled engine for real (large) designs
/// once the backend is registered, and reports the resolved kind.
#[test]
fn auto_engine_resolves_by_design_size() {
    llhd_blaze::register();
    let module = accumulator_example().unwrap();
    let session = SimSession::builder(&module, "acc_tb").build().unwrap();
    assert_eq!(session.engine_kind(), EngineKind::Compile);
    assert_eq!(session.engine_name(), "blaze");
}

/// `Auto` promises a working selection: when the backend rejects the
/// module (blaze compiles *every* unit, and phi nodes are outside its
/// subset), the session degrades to the interpreter instead of erroring.
/// An explicit `Compile` request still reports the failure.
#[test]
fn auto_falls_back_to_interpreter_when_compile_rejects() {
    llhd_blaze::register();
    // A large-enough blinker (clears the Auto size threshold) plus an
    // unrelated function containing a phi, which blaze refuses to compile
    // even though nothing instantiates it.
    let mut src = String::from(
        r#"
        func @phi_having (i1 %c) i8 {
        entry:
            br %c, %a, %b
        a:
            %x = const i8 1
            br %join
        b:
            %y = const i8 2
            br %join
        join:
            %r = phi i8 [%x, %a], [%y, %b]
            ret i8 %r
        }
        proc @blink () -> (i1$ %led) {
        entry:
            %on = const i1 1
            %off = const i1 0
            %delay = const time 5ns
        "#,
    );
    for i in 0..120 {
        src.push_str(&format!("    %pad{} = const i8 {}\n", i, i % 100));
    }
    src.push_str(
        r#"
            drv i1$ %led, %on after %delay
            wait %next for %delay
        next:
            drv i1$ %led, %off after %delay
            wait %entry for %delay
        }
        "#,
    );
    let module = llhd::assembly::parse_module(&src).unwrap();
    let session = SimSession::builder(&module, "blink")
        .until_nanos(50)
        .build()
        .unwrap();
    assert_eq!(session.engine_kind(), EngineKind::Interpret);
    let result = session.run().unwrap();
    assert!(result.trace.changes_of("led").count() >= 9);
    assert!(matches!(
        SimSession::builder(&module, "blink")
            .engine(EngineKind::Compile)
            .build()
            .err(),
        Some(llhd_sim::api::Error::Compile(_))
    ));
}

/// Peek/poke work identically through both engines.
#[test]
fn peek_and_poke_are_engine_agnostic() {
    llhd_blaze::register();
    let module = llhd::assembly::parse_module(
        r#"
        entity @follower (i8$ %a) -> (i8$ %q) {
            %ap = prb i8$ %a
            %delay = const time 1ns
            drv i8$ %q, %ap after %delay
        }
        entity @top () -> () {
            %zero = const i8 0
            %a = sig i8 %zero
            %q = sig i8 %zero
            inst @follower (%a) -> (%q)
        }
        "#,
    )
    .unwrap();
    for engine in [EngineKind::Interpret, EngineKind::Compile] {
        let mut session = SimSession::builder(&module, "top")
            .engine(engine)
            .until_nanos(50)
            .build()
            .unwrap();
        session.initialize().unwrap();
        session
            .poke("a", llhd::value::ConstValue::int(8, 99))
            .unwrap();
        while session.step().unwrap() {}
        assert_eq!(
            session.peek("q").unwrap(),
            llhd::value::ConstValue::int(8, 99),
            "{:?}: poke did not propagate",
            engine
        );
    }
}
