//! The promoted regression corpus.
//!
//! Every `.replay` file under `tests/corpus/` is a self-contained fuzz
//! artifact — a (shrunk) generated design plus its stimulus schedule —
//! promoted here by `fuzz --promote` after a finding was fixed, or
//! pinned by `fuzz --pin` to lock in coverage. This test replays each
//! one across the full differential matrix (reference interpreter vs.
//! interpreter parallelism vs. every blaze knob combination and thread
//! count) and fails on any divergence: once a fuzz finding lands here,
//! it can never regress silently.

use llhd_fuzz::{default_matrix, Artifact, CaseFailure};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "replay"))
        .collect();
    files.sort();
    files
}

/// The corpus is never empty: an empty directory would make this test
/// pass vacuously while the promotion path silently rots.
#[test]
fn corpus_is_populated() {
    assert!(
        !corpus_files().is_empty(),
        "no .replay artifacts under {}",
        corpus_dir().display()
    );
}

/// Every committed artifact parses, replays across the full matrix, and
/// comes back clean.
#[test]
fn corpus_replays_clean_across_the_matrix() {
    let matrix = default_matrix();
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let artifact = Artifact::parse(&text)
            .unwrap_or_else(|e| panic!("{}: malformed artifact: {e}", path.display()));
        match artifact.replay(&matrix) {
            Ok(record) => assert!(
                !record.events.is_empty(),
                "{}: replay produced an empty trace (artifact is inert)",
                path.display()
            ),
            Err(CaseFailure::Generator(msg)) => {
                panic!("{}: artifact no longer runs: {msg}", path.display())
            }
            Err(CaseFailure::Divergence(d)) => panic!(
                "{}: DIVERGENCE on {}: {} mismatch: {}",
                path.display(),
                d.spec.label(),
                d.channel,
                d.detail
            ),
        }
    }
}

/// Artifacts survive a text round-trip: what `--promote` writes, the
/// parser reads back identically (guards the on-disk format).
#[test]
fn corpus_artifacts_round_trip() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let artifact = Artifact::parse(&text).unwrap();
        let reparsed = Artifact::parse(&artifact.to_string()).unwrap();
        assert_eq!(artifact, reparsed, "{}: format drift", path.display());
    }
}
