//! Server mode, end to end: spawn the persistent simulation server on an
//! ephemeral TCP port, then act as a client speaking the line-delimited
//! JSON protocol of `docs/PROTOCOL.md` — submit a design, re-run it by
//! its key (served from the warmed `DesignCache`, no re-parse or
//! re-compile), inspect the cache counters, and shut down gracefully.
//!
//! Run with `cargo run --example server_client`. Against an external
//! server (`cargo run -p llhd-server -- --tcp 127.0.0.1:7171`), the same
//! requests apply — only the transport setup differs.

use llhd_server::json::Json;
use llhd_server::{Client, Server, ServerConfig};

const BLINK: &str = r#"
proc @blink () -> (i1$ %led) {
entry:
    %on = const i1 1
    %off = const i1 0
    %delay = const time 5ns
    drv i1$ %led, %on after %delay
    wait %next for %delay
next:
    drv i1$ %led, %off after %delay
    wait %entry for %delay
}
"#;

fn main() {
    // A bounded server: at most 16 designs stay cached, LRU beyond that.
    let running = Server::spawn_tcp(
        ServerConfig {
            cache_capacity: Some(16),
            stats_interval: None,
        },
        "127.0.0.1:0",
    )
    .expect("bind an ephemeral port");
    println!("server listening on {}", running.addr());
    let mut client = Client::connect(running.addr()).expect("connect");

    // 1. Submit the design source; the response names it by content key.
    let first = client
        .request(&Json::obj([
            ("type", Json::str("sim")),
            ("source", Json::str(BLINK)),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(100)),
            ("id", Json::Int(1)),
        ]))
        .expect("sim request");
    assert_eq!(first.get("ok"), Some(&Json::Bool(true)), "{}", first);
    let result = first.get("result").expect("result");
    let key = result
        .get("design")
        .and_then(Json::as_str)
        .expect("design key")
        .to_string();
    println!(
        "first run:  design {}…, {} signal changes, end at {} fs",
        &key[..8],
        result.get("signal_changes").and_then(Json::as_int).unwrap(),
        result.get("end_time_fs").and_then(Json::as_int).unwrap(),
    );

    // 2. Re-run by key — no source on the wire, served from the warm
    //    cache — and ask for the trace as a VCD document.
    let second = client
        .request(&Json::obj([
            ("type", Json::str("sim")),
            ("design", Json::str(key.clone())),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(60)),
            ("trace", Json::str("vcd")),
            ("id", Json::Int(2)),
        ]))
        .expect("keyed request");
    assert_eq!(second.get("ok"), Some(&Json::Bool(true)), "{}", second);
    let vcd = second
        .get("result")
        .and_then(|r| r.get("trace_vcd"))
        .and_then(Json::as_str)
        .expect("vcd");
    println!(
        "second run: served by key, VCD of {} lines begins {:?}",
        vcd.lines().count(),
        vcd.lines().next().unwrap_or(""),
    );

    // 3. The observability surface: the repeat run hit the cache.
    let stats = client
        .request(&Json::obj([("type", Json::str("stats"))]))
        .expect("stats request");
    let cache = stats.get("result").and_then(|r| r.get("cache")).expect("cache stats");
    println!(
        "stats:      {} cached design(s), elaborate {} hit / {} miss",
        cache.get("entries").and_then(Json::as_int).unwrap(),
        cache.get("elaborate_hits").and_then(Json::as_int).unwrap(),
        cache.get("elaborate_misses").and_then(Json::as_int).unwrap(),
    );
    assert_eq!(cache.get("elaborate_hits").and_then(Json::as_int), Some(1));

    // 4. Graceful shutdown: in-flight work drains, then the server exits.
    let ack = client
        .request(&Json::obj([("type", Json::str("shutdown"))]))
        .expect("shutdown request");
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)));
    running.join().expect("clean server exit");
    println!("server shut down cleanly");
}
