//! Server mode, end to end: spawn the persistent simulation server on an
//! ephemeral TCP port, then act as a client speaking the line-delimited
//! JSON protocol of `docs/PROTOCOL.md` — submit a design, re-run it by
//! its key (served from the warmed `DesignCache`, no re-parse or
//! re-compile), inspect the cache counters, drive an interactive session
//! (step/peek, structural queries, checkpoint → destroy → restore →
//! resume), and shut down gracefully.
//!
//! Run with `cargo run --example server_client`. Against an external
//! server (`cargo run -p llhd-server -- --tcp 127.0.0.1:7171`), the same
//! requests apply — only the transport setup differs.

use llhd_server::json::Json;
use llhd_server::{Client, Server, ServerConfig};

/// Send one request, honouring the server's `retryable` classification
/// via the library's shared helper (`llhd_server::retry`): a failure
/// marked `"retryable":true` (overloaded, shutting down) is retried with
/// capped exponential backoff, seeded by the server's own
/// `retry_after_ms` hint when it sends one. Non-retryable errors and
/// successes return immediately — retrying a `source` error would just
/// fail identically forever.
fn request_with_retry(client: &mut Client, request: &Json, attempts: u32) -> Json {
    llhd_server::retry::request_with_retry(client, request, attempts).expect("request")
}

const BLINK: &str = r#"
proc @blink () -> (i1$ %led) {
entry:
    %on = const i1 1
    %off = const i1 0
    %delay = const time 5ns
    drv i1$ %led, %on after %delay
    wait %next for %delay
next:
    drv i1$ %led, %off after %delay
    wait %entry for %delay
}
"#;

fn main() {
    // A bounded server: at most 16 designs stay cached (LRU beyond
    // that), and at most 2 jobs queue — more and the server sheds load
    // with a retryable `overloaded` error instead of buffering unboundedly.
    let running = Server::spawn_tcp(
        ServerConfig {
            cache_capacity: Some(16),
            queue_cap: Some(2),
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind an ephemeral port");
    println!("server listening on {}", running.addr());
    let mut client = Client::connect(running.addr()).expect("connect");

    // 1. Submit the design source; the response names it by content key.
    let first = client
        .request(&Json::obj([
            ("type", Json::str("sim")),
            ("source", Json::str(BLINK)),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(100)),
            ("id", Json::Int(1)),
        ]))
        .expect("sim request");
    assert_eq!(first.get("ok"), Some(&Json::Bool(true)), "{}", first);
    let result = first.get("result").expect("result");
    let key = result
        .get("design")
        .and_then(Json::as_str)
        .expect("design key")
        .to_string();
    println!(
        "first run:  design {}…, {} signal changes, end at {} fs",
        &key[..8],
        result.get("signal_changes").and_then(Json::as_int).unwrap(),
        result.get("end_time_fs").and_then(Json::as_int).unwrap(),
    );

    // 2. Re-run by key — no source on the wire, served from the warm
    //    cache — and ask for the trace as a VCD document.
    let second = client
        .request(&Json::obj([
            ("type", Json::str("sim")),
            ("design", Json::str(key.clone())),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(60)),
            ("trace", Json::str("vcd")),
            ("id", Json::Int(2)),
        ]))
        .expect("keyed request");
    assert_eq!(second.get("ok"), Some(&Json::Bool(true)), "{}", second);
    let vcd = second
        .get("result")
        .and_then(|r| r.get("trace_vcd"))
        .and_then(Json::as_str)
        .expect("vcd");
    println!(
        "second run: served by key, VCD of {} lines begins {:?}",
        vcd.lines().count(),
        vcd.lines().next().unwrap_or(""),
    );

    // 3. The observability surface: the repeat run hit the cache.
    let stats = client
        .request(&Json::obj([("type", Json::str("stats"))]))
        .expect("stats request");
    let cache = stats.get("result").and_then(|r| r.get("cache")).expect("cache stats");
    println!(
        "stats:      {} cached design(s), elaborate {} hit / {} miss",
        cache.get("entries").and_then(Json::as_int).unwrap(),
        cache.get("elaborate_hits").and_then(Json::as_int).unwrap(),
        cache.get("elaborate_misses").and_then(Json::as_int).unwrap(),
    );
    assert_eq!(cache.get("elaborate_hits").and_then(Json::as_int), Some(1));

    // 4. An interactive session: the engine stays live between requests,
    //    so the client can interleave stepping with inspection.
    let created = client
        .request(&Json::obj([
            ("type", Json::str("session.create")),
            ("design", Json::str(key.clone())),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(100)),
        ]))
        .expect("session.create");
    assert_eq!(created.get("ok"), Some(&Json::Bool(true)), "{}", created);
    let session = created
        .get("result")
        .and_then(|r| r.get("session"))
        .and_then(Json::as_str)
        .expect("session id")
        .to_string();
    println!("session:    opened {}", session);

    // Step five scheduler cycles, then peek the LED.
    let stepped = client
        .request(&Json::obj([
            ("type", Json::str("session.step")),
            ("session", Json::str(session.clone())),
            ("steps", Json::Int(5)),
        ]))
        .expect("session.step");
    let peeked = client
        .request(&Json::obj([
            ("type", Json::str("session.peek")),
            ("session", Json::str(session.clone())),
            ("signal", Json::str("blink.led")),
        ]))
        .expect("session.peek");
    println!(
        "session:    after 5 steps (t = {} fs) led = {}",
        stepped
            .get("result")
            .and_then(|r| r.get("time_fs"))
            .and_then(Json::as_int)
            .unwrap(),
        peeked
            .get("result")
            .and_then(|r| r.get("value"))
            .and_then(Json::as_str)
            .unwrap(),
    );

    // Structural queries answer "who drives this signal?" from the
    // elaborated design, without running anything.
    let drivers = client
        .request(&Json::obj([
            ("type", Json::str("session.query")),
            ("session", Json::str(session.clone())),
            ("query", Json::str("drivers")),
            ("signal", Json::str("blink.led")),
        ]))
        .expect("session.query");
    println!(
        "query:      blink.led is driven by {}",
        drivers
            .get("result")
            .and_then(|r| r.get("drivers"))
            .and_then(Json::as_arr)
            .and_then(|list| list.first())
            .and_then(|d| d.get("path"))
            .and_then(Json::as_str)
            .unwrap_or("<nobody>"),
    );

    // Checkpoint the full engine state, kill the session, restore the
    // checkpoint into a fresh one, and keep stepping where it left off.
    let checkpoint = client
        .request(&Json::obj([
            ("type", Json::str("session.checkpoint")),
            ("session", Json::str(session.clone())),
        ]))
        .expect("session.checkpoint");
    let state_hex = checkpoint
        .get("result")
        .and_then(|r| r.get("state"))
        .and_then(Json::as_str)
        .expect("checkpoint state")
        .to_string();
    client
        .request(&Json::obj([
            ("type", Json::str("session.destroy")),
            ("session", Json::str(session.clone())),
        ]))
        .expect("session.destroy");
    let restored = client
        .request(&Json::obj([
            ("type", Json::str("session.restore")),
            ("design", Json::str(key.clone())),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(100)),
            ("state", Json::str(state_hex.clone())),
        ]))
        .expect("session.restore");
    assert_eq!(restored.get("ok"), Some(&Json::Bool(true)), "{}", restored);
    let resumed = restored
        .get("result")
        .and_then(|r| r.get("session"))
        .and_then(Json::as_str)
        .expect("restored session id")
        .to_string();
    let finished = client
        .request(&Json::obj([
            ("type", Json::str("session.step")),
            ("session", Json::str(resumed.clone())),
            ("steps", Json::Int(1000)),
        ]))
        .expect("resume stepping");
    println!(
        "restore:    {} bytes of checkpoint resumed as {} and ran to t = {} fs",
        state_hex.len() / 2,
        resumed,
        finished
            .get("result")
            .and_then(|r| r.get("time_fs"))
            .and_then(Json::as_int)
            .unwrap(),
    );
    client
        .request(&Json::obj([
            ("type", Json::str("session.destroy")),
            ("session", Json::str(resumed)),
        ]))
        .expect("destroy resumed session");

    // 5. Admission control, from the client's side: a batch of three
    //    jobs overruns the queue cap of two, so the server sheds it with
    //    `overloaded` + `retry_after_ms`. The retry helper backs off and
    //    retries; a group that is *structurally* larger than the cap can
    //    never fit, so after the attempts run out the right move is to
    //    split it — and the smaller pieces sail through.
    let big_batch = Json::obj([
        ("type", Json::str("batch")),
        (
            "jobs",
            Json::Arr(
                (0..3)
                    .map(|_| {
                        Json::obj([
                            ("design", Json::str(key.clone())),
                            ("top", Json::str("blink")),
                            ("engine", Json::str("interpret")),
                            ("until_ns", Json::Int(20)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let shed = request_with_retry(&mut client, &big_batch, 3);
    assert_eq!(
        shed.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("overloaded"),
        "{}",
        shed
    );
    println!(
        "overload:   3-job batch shed ({}); splitting it",
        shed.get("error").and_then(|e| e.get("message")).and_then(Json::as_str).unwrap_or(""),
    );
    for _ in 0..3 {
        let one = request_with_retry(
            &mut client,
            &Json::obj([
                ("type", Json::str("sim")),
                ("design", Json::str(key.clone())),
                ("top", Json::str("blink")),
                ("engine", Json::str("interpret")),
                ("until_ns", Json::Int(20)),
            ]),
            5,
        );
        assert_eq!(one.get("ok"), Some(&Json::Bool(true)), "{}", one);
    }
    println!("overload:   the three jobs ran fine one at a time");

    // 6. A wall-clock budget on a request: `deadline_ms` bounds how long
    //    the server may spend simulating before answering with
    //    `deadline_exceeded` (not retryable — the job is simply too big
    //    for the budget) and the progress it made.
    let budgeted = request_with_retry(
        &mut client,
        &Json::obj([
            ("type", Json::str("sim")),
            ("design", Json::str(key.clone())),
            ("top", Json::str("blink")),
            ("engine", Json::str("interpret")),
            ("until_ns", Json::Int(500_000_000)),
            ("deadline_ms", Json::Int(10)),
        ]),
        3,
    );
    let error = budgeted.get("error").expect("deadline error");
    println!(
        "deadline:   10 ms budget blown at {} fs ({}, retryable: {})",
        error.get("end_time_fs").and_then(Json::as_int).unwrap_or(0),
        error.get("kind").and_then(Json::as_str).unwrap_or("?"),
        error.get("retryable").and_then(|r| match r {
            Json::Bool(b) => Some(*b),
            _ => None,
        }).unwrap_or(false),
    );

    // 7. Graceful shutdown: in-flight work drains, then the server exits.
    let ack = client
        .request(&Json::obj([("type", Json::str("shutdown"))]))
        .expect("shutdown request");
    assert_eq!(ack.get("ok"), Some(&Json::Bool(true)));
    running.join().expect("clean server exit");
    println!("server shut down cleanly");
}
