//! Compile SystemVerilog with the Moore frontend, print the emitted
//! Behavioural LLHD, lower it to Structural LLHD, and simulate both to show
//! they behave identically.
//!
//! Run with `cargo run --example svfront`.

use llhd::assembly::write_module;
use llhd::ir::Module;
use llhd::verifier::module_dialect;
use llhd_opt::pipeline::{lower_to_structural, LoweringOptions};
use llhd_sim::{SimConfig, SimResult};

/// Simulate through the unified session surface; `EngineKind::Auto` picks
/// the engine (the blaze backend is registered by `llhd_blaze::session`).
fn simulate(module: &Module, top: &str, config: &SimConfig) -> SimResult {
    llhd_blaze::session(module, top)
        .config(config.clone())
        .build()
        .expect("session builds")
        .run()
        .expect("simulation runs")
}

const SOURCE: &str = r#"
module blinker (input clk, output [3:0] count, output led);
  always_ff @(posedge clk) count <= count + 1;
  assign led = count[3];
endmodule

module blinker_tb (output clk, output [3:0] count, output led);
  blinker dut (.clk(clk), .count(count), .led(led));
  initial begin
    repeat (60) begin
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
    end
  end
endmodule
"#;

fn main() {
    let module = moore::compile(SOURCE).expect("SystemVerilog compiles");
    println!("=== Behavioural LLHD (Moore output) ===\n{}", write_module(&module));
    println!("Dialect: {}", module_dialect(&module));

    let config = SimConfig::until_nanos(130);
    let behavioural = simulate(&module, "blinker_tb", &config);

    let mut lowered = module.clone();
    let report = lower_to_structural(&mut lowered, &LoweringOptions::default());
    println!(
        "Lowered {} processes ({} rejected, typically the testbench stimulus).",
        report.lowered_processes + report.desequentialized_processes,
        report.rejected.len()
    );
    let structural = simulate(&lowered, "blinker_tb", &config);

    assert!(
        behavioural.trace.equivalent(&structural.trace),
        "behavioural and structural traces must match"
    );
    println!(
        "Behavioural and Structural LLHD produce identical traces ({} changes).",
        behavioural.signal_changes
    );
    let toggles = behavioural.trace.changes_of("led").count();
    println!("The LED toggled {} times.", toggles);
}
