//! Print the Table 4 style size report for every benchmark design: the
//! SystemVerilog source, the LLHD text, the real bitcode, and the in-memory
//! footprint.
//!
//! Run with `cargo run --example size_report`.

use llhd::assembly::write_module;
use llhd::bitcode::{decode_module, encode_module};
use llhd::ir::size::module_memory;
use llhd_designs::all_designs;

fn main() {
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>12}",
        "Design", "SV [B]", "Text [B]", "Bitcode [B]", "In-Mem. [B]"
    );
    for design in all_designs() {
        let module = design.build().expect("design builds");
        let text = write_module(&module);
        let bitcode = encode_module(&module);
        // The bitcode must round-trip losslessly.
        let decoded = decode_module(&bitcode).expect("bitcode decodes");
        assert_eq!(write_module(&decoded), text, "{} round-trip", design.name);
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>12}",
            design.name,
            design.sv_bytes(),
            text.len(),
            bitcode.len(),
            module_memory(&module).total()
        );
    }
}
