//! Quickstart: build the paper's accumulator design with the IR builder API,
//! verify it, print it, and simulate it.
//!
//! Run with `cargo run --example quickstart`.

use llhd::assembly::write_module;
use llhd::ir::{Module, RegMode, RegTrigger, Signature, UnitBuilder, UnitData, UnitKind, UnitName};
use llhd::ty::{int_ty, signal_ty};
use llhd::value::{ConstValue, TimeValue};

fn main() {
    // The accumulator of Figure 5 (right column): a register and a
    // combinational adder, already in Structural LLHD.
    let mut module = Module::new();

    // entity @acc_ff: a rising-edge flip-flop.
    let mut ff = UnitData::new(
        UnitKind::Entity,
        UnitName::global("acc_ff"),
        Signature::new_entity(
            vec![signal_ty(int_ty(1)), signal_ty(int_ty(32))],
            vec![signal_ty(int_ty(32))],
        ),
    );
    for (i, name) in ["clk", "d", "q"].iter().enumerate() {
        let arg = ff.arg_value(i);
        ff.set_value_name(arg, *name);
    }
    {
        let clk = ff.arg_value(0);
        let d = ff.arg_value(1);
        let q = ff.arg_value(2);
        let mut b = UnitBuilder::new(&mut ff);
        let clkp = b.prb(clk);
        let dp = b.prb(d);
        b.reg(
            q,
            vec![RegTrigger {
                value: dp,
                mode: RegMode::Rise,
                trigger: clkp,
                gate: None,
            }],
        );
    }
    module.add_unit(ff);

    // entity @acc_comb: d = en ? q + x : q.
    let mut comb = UnitData::new(
        UnitKind::Entity,
        UnitName::global("acc_comb"),
        Signature::new_entity(
            vec![
                signal_ty(int_ty(32)),
                signal_ty(int_ty(32)),
                signal_ty(int_ty(1)),
            ],
            vec![signal_ty(int_ty(32))],
        ),
    );
    for (i, name) in ["q", "x", "en", "d"].iter().enumerate() {
        let arg = comb.arg_value(i);
        comb.set_value_name(arg, *name);
    }
    {
        let q = comb.arg_value(0);
        let x = comb.arg_value(1);
        let en = comb.arg_value(2);
        let d = comb.arg_value(3);
        let mut b = UnitBuilder::new(&mut comb);
        let qp = b.prb(q);
        let xp = b.prb(x);
        let enp = b.prb(en);
        let sum = b.add(qp, xp);
        let choices = b.array(vec![qp, sum]);
        let dn = b.mux(choices, enp);
        let delay = b.const_time(TimeValue::ZERO);
        b.drv(d, dn, delay);
    }
    module.add_unit(comb);

    // entity @acc: wire the two together.
    let mut acc = UnitData::new(
        UnitKind::Entity,
        UnitName::global("acc"),
        Signature::new_entity(
            vec![
                signal_ty(int_ty(1)),
                signal_ty(int_ty(32)),
                signal_ty(int_ty(1)),
            ],
            vec![signal_ty(int_ty(32))],
        ),
    );
    for (i, name) in ["clk", "x", "en", "q"].iter().enumerate() {
        let arg = acc.arg_value(i);
        acc.set_value_name(arg, *name);
    }
    {
        let clk = acc.arg_value(0);
        let x = acc.arg_value(1);
        let en = acc.arg_value(2);
        let q = acc.arg_value(3);
        let mut b = UnitBuilder::new(&mut acc);
        let zero = b.ins_const(ConstValue::int(32, 0));
        let d = b.sig(zero);
        b.unit_mut().set_value_name(d, "d");
        let ff = b.ext_unit(
            UnitName::global("acc_ff"),
            Signature::new_entity(
                vec![signal_ty(int_ty(1)), signal_ty(int_ty(32))],
                vec![signal_ty(int_ty(32))],
            ),
        );
        b.inst(ff, vec![clk, d], vec![q]);
        let comb = b.ext_unit(
            UnitName::global("acc_comb"),
            Signature::new_entity(
                vec![
                    signal_ty(int_ty(32)),
                    signal_ty(int_ty(32)),
                    signal_ty(int_ty(1)),
                ],
                vec![signal_ty(int_ty(32))],
            ),
        );
        b.inst(comb, vec![q, x, en], vec![d]);
    }
    module.add_unit(acc);

    // A little testbench: clock generator plus constant inputs, written as a
    // process in LLHD assembly and linked in.
    let tb = llhd::assembly::parse_module(
        r#"
        proc @acc_tb_stim () -> (i1$ %clk, i32$ %x, i1$ %en) {
        entry:
            %one = const i1 1
            %zero = const i1 0
            %three = const i32 3
            %d1 = const time 1ns
            %d2 = const time 2ns
            drv i1$ %en, %one after %d1
            drv i32$ %x, %three after %d1
            br %tick
        tick:
            drv i1$ %clk, %one after %d1
            drv i1$ %clk, %zero after %d2
            wait %tick for %d2
        }
        entity @acc_tb () -> () {
            %z1 = const i1 0
            %z32 = const i32 0
            %clk = sig i1 %z1
            %en = sig i1 %z1
            %x = sig i32 %z32
            %q = sig i32 %z32
            inst @acc (%clk, %x, %en) -> (%q)
            inst @acc_tb_stim () -> (%clk, %x, %en)
        }
        "#,
    )
    .expect("testbench parses");
    module.link(tb).expect("testbench links");

    llhd::verifier::verify_module(&module).expect("module verifies");
    println!("=== LLHD assembly ===\n{}", write_module(&module));

    // One engine-agnostic surface drives both simulators:
    // `llhd_blaze::session` registers the compiled backend and returns a
    // `SimSession` builder; `EngineKind::Auto` then picks the engine by
    // design size (this little accumulator stays on the interpreter).
    let session = llhd_blaze::session(&module, "acc_tb")
        .until_nanos(40)
        .build()
        .expect("session builds");
    println!("Engine selected by EngineKind::Auto: {}", session.engine_name());
    let result = session.run().expect("simulation runs");
    println!("=== Accumulator output (q) over time ===");
    for event in result.trace.changes_of("q") {
        println!("  t = {:>5}   q = {}", event.time.to_string(), event.value);
    }
    println!(
        "Simulated until {} with {} signal changes.",
        result.end_time, result.signal_changes
    );
}
