//! The Figure 5 walk-through: lower the behavioural accumulator processes to
//! Structural LLHD and show the IR before and after each major stage.
//!
//! Run with `cargo run --example lowering`.

use llhd::assembly::{parse_module, write_unit};
use llhd::verifier::module_dialect;
use llhd_opt::passes;
use llhd_opt::pipeline::{lower_to_structural, LoweringOptions};

const BEHAVIOURAL: &str = r#"
proc @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
init:
    %clk0 = prb i1$ %clk
    wait %check, %clk
check:
    %clk1 = prb i1$ %clk
    %chg = neq i1 %clk0, %clk1
    %posedge = and i1 %chg, %clk1
    br %posedge, %init, %event
event:
    %dp = prb i32$ %d
    %delay = const time 1ns
    drv i32$ %q, %dp after %delay
    br %init
}

proc @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
entry:
    %qp = prb i32$ %q
    %enp = prb i1$ %en
    %delay = const time 2ns
    drv i32$ %d, %qp after %delay
    br %enp, %final, %enabled
enabled:
    %xp = prb i32$ %x
    %sum = add i32 %qp, %xp
    drv i32$ %d, %sum after %delay
    br %final
final:
    wait %entry, %q, %x, %en
}

entity @acc (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q) {
    %zero = const i32 0
    %d = sig i32 %zero
    inst @acc_ff (%clk, %d) -> (%q)
    inst @acc_comb (%q, %x, %en) -> (%d)
}
"#;

fn main() {
    let module = parse_module(BEHAVIOURAL).expect("input parses");
    println!("Input dialect: {}", module_dialect(&module));

    // Show the per-pass effect on the combinational process.
    let comb_id = module.unit_by_ident("acc_comb").unwrap();
    let mut comb = module.unit(comb_id).clone();
    println!("\n--- @acc_comb: behavioural input ---\n{}", write_unit(&comb));
    passes::ecm::run(&mut comb);
    println!("--- after Early Code Motion (ECM) ---\n{}", write_unit(&comb));
    passes::tcm::run(&mut comb);
    println!("--- after Temporal Code Motion (TCM) ---\n{}", write_unit(&comb));
    passes::tcfe::run(&mut comb);
    println!(
        "--- after Total Control Flow Elimination (TCFE) ---\n{}",
        write_unit(&comb)
    );
    let entity = passes::process_lowering::lower_process(&comb).expect("process lowering succeeds");
    println!("--- after Process Lowering (PL) ---\n{}", write_unit(&entity));

    // And the flip-flop via desequentialization, driven by the full pipeline.
    let mut lowered = module;
    let report = lower_to_structural(&mut lowered, &LoweringOptions::default());
    let ff = lowered.unit(lowered.unit_by_ident("acc_ff").unwrap());
    println!("--- @acc_ff after Desequentialization ---\n{}", write_unit(ff));
    println!(
        "Lowering report: {} via PL, {} via Deseq, rejected: {:?}",
        report.lowered_processes, report.desequentialized_processes, report.rejected
    );
    println!("Output dialect: {}", module_dialect(&lowered));
}
