//! Simulate the paper's accumulator testbench (Figure 2/3) end-to-end and
//! check the accumulator invariant q == sum of driven inputs, mirroring the
//! `@acc_tb_check` function of Figure 2.
//!
//! Run with `cargo run --example testbench`.

use llhd_designs::accumulator_example;
use llhd_sim::{EngineKind, SimSession};

fn main() {
    let module = accumulator_example().expect("accumulator compiles");
    llhd_blaze::register();
    let result = SimSession::builder(&module, "acc_tb")
        .engine(EngineKind::Auto)
        .until_nanos(200)
        .build()
        .expect("session builds")
        .run()
        .expect("simulates");

    // With x = 1 and en = 1 the accumulator increments by one per cycle, so
    // q(i) = i — the i*(i+1)/2 check of the paper specialised to x = 1
    // driven as a constant.
    let mut expected = 0u64;
    let mut checked = 0usize;
    let mut failures = 0usize;
    for event in result.trace.changes_of("q") {
        expected += 1;
        checked += 1;
        if event.value.to_u64() != Some(expected) {
            failures += 1;
            eprintln!(
                "mismatch at {}: expected {}, got {}",
                event.time, expected, event.value
            );
        }
    }
    println!(
        "checked {} accumulator updates, {} mismatches, final value {}",
        checked, failures, expected
    );
    println!(
        "simulation ran until {} with {} signal changes and {} process activations",
        result.end_time, result.signal_changes, result.activations
    );
    assert_eq!(failures, 0, "accumulator mismatches detected");
    assert!(checked > 10, "testbench should exercise many cycles");
}
