//! A self-contained deterministic property-testing helper (proptest
//! replacement).
//!
//! The workspace builds in offline sandboxes with no registry access, so the
//! property tests under `tests/` use this in-repo helper instead of an
//! external dependency. It keeps the parts of proptest the test suite
//! needs:
//!
//! * random-but-reproducible input generation from a seeded xorshift
//!   generator (no external entropy, so every run tests the same cases),
//! * N-case loops per property ([`forall`], case count overridable via the
//!   `LLHD_PROP_CASES` environment variable), and
//! * failure reporting that includes the case number, the seed to replay
//!   it, and the values that violated the assertion (via the
//!   [`prop_assert!`](crate::prop_assert) / [`prop_assert_eq!`](crate::prop_assert_eq) macros).
//!
//! ```
//! use llhd_workspace::propcheck::forall;
//! use llhd_workspace::prop_assert_eq;
//!
//! forall("addition commutes", |rng| {
//!     let (a, b) = (rng.u64(), rng.u64());
//!     prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//!     Ok(())
//! });
//! ```

/// Number of cases per property unless `LLHD_PROP_CASES` overrides it.
pub const DEFAULT_CASES: usize = 256;

/// A small, fast, deterministic pseudo-random generator (xorshift64*).
///
/// Quality is more than sufficient for fuzz-shaped test inputs, and the
/// implementation is dependency-free and identical on every platform.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Any seed is fine; zero is remapped.
    pub fn new(seed: u64) -> Self {
        Rng {
            // A fixed odd constant (splitmix64's golden-ratio increment)
            // decorrelates consecutive seeds; xorshift needs non-zero state.
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    fn next_raw(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 64-bit value.
    ///
    /// Roughly 1 in 16 draws is replaced by an edge value (0, 1, MAX, …):
    /// the raw xorshift64* stream never produces 0, and boundary inputs are
    /// where arithmetic properties break, so the bias mirrors what proptest
    /// does for `any::<u64>()`.
    pub fn u64(&mut self) -> u64 {
        const EDGES: [u64; 5] = [0, 1, u64::MAX, u64::MAX - 1, 1 << 63];
        let raw = self.next_raw();
        if raw.is_multiple_of(16) {
            EDGES[(self.next_raw() % EDGES.len() as u64) as usize]
        } else {
            raw
        }
    }

    /// Next 32-bit value.
    pub fn u32(&mut self) -> u32 {
        (self.u64() >> 32) as u32
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.u64();
        }
        // Modulo bias is negligible for the small spans used in tests.
        lo + self.u64() % (span + 1)
    }

    /// Uniform `usize` in the inclusive range `lo..=hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A vector with a length drawn from `len_lo..=len_hi` and elements
    /// produced by `f`.
    pub fn vec<T>(&mut self, len_lo: usize, len_hi: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        let len = self.range_usize(len_lo, len_hi);
        (0..len).map(|_| f(self)).collect()
    }
}

/// FNV-1a, used to give every property its own seed sequence so properties
/// do not all see the same input stream.
fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in s.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// How many cases to run per property.
pub fn case_count() -> usize {
    std::env::var("LLHD_PROP_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// Parse a seed as printed in failure output: `0x…`/`0X…` hex or plain
/// decimal.
pub fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The pinned replay seed from the `LLHD_PROP_SEED` environment
/// variable, if set. When present, [`forall`] runs *only* that seed —
/// paste the command printed by a failure to reproduce it.
pub fn replay_seed() -> Option<u64> {
    parse_seed(&std::env::var("LLHD_PROP_SEED").ok()?)
}

/// The ready-to-run command a failure report prints: set the pinned
/// seed and re-run the test suite. The format is pinned by a unit test —
/// tooling (and muscle memory) may rely on it.
pub fn replay_command(seed: u64) -> String {
    format!("LLHD_PROP_SEED={seed:#018x} cargo test")
}

/// Run `property` against [`case_count`] generated inputs.
///
/// The closure receives a fresh seeded [`Rng`] per case and returns
/// `Err(message)` (usually via [`prop_assert!`](crate::prop_assert) /
/// [`prop_assert_eq!`](crate::prop_assert_eq)) when the property is
/// violated. Panics inside the closure (e.g. from `unwrap`) are caught and
/// reported the same way, so the replay seed is never lost.
///
/// # Panics
///
/// Panics on the first failing case, reporting the property name, case
/// number, replay seed, the failure message, and a ready-to-run replay
/// command (`LLHD_PROP_SEED=<seed> cargo test`). With `LLHD_PROP_SEED`
/// set, only that seed runs.
pub fn forall<F>(property: &str, f: F)
where
    F: Fn(&mut Rng) -> Result<(), String>,
{
    if let Some(seed) = replay_seed() {
        if let Some(message) = run_one(&f, seed) {
            panic!(
                "property '{}' failed replaying seed {:#018x}:\n  {}\n  replay: {}",
                property,
                seed,
                message,
                replay_command(seed)
            );
        }
        return;
    }
    let cases = case_count();
    let base = fnv1a(property);
    for case in 0..cases {
        let seed = base.wrapping_add(case as u64);
        if let Some(message) = run_one(&f, seed) {
            panic!(
                "property '{}' failed at case {}/{} (replay seed {:#018x}):\n  {}\n  replay: {}",
                property,
                case,
                cases,
                seed,
                message,
                replay_command(seed)
            );
        }
    }
}

/// Run one case; `Some(message)` on failure (assertion or caught panic).
fn run_one<F>(f: &F, seed: u64) -> Option<String>
where
    F: Fn(&mut Rng) -> Result<(), String>,
{
    let mut rng = Rng::new(seed);
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng))) {
        Ok(Ok(())) => None,
        Ok(Err(message)) => Some(message),
        Err(payload) => Some(format!("panicked: {}", panic_message(&payload))),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Re-run a single failing case from the seed printed by [`forall`].
pub fn replay<F>(seed: u64, mut f: F) -> Result<(), String>
where
    F: FnMut(&mut Rng) -> Result<(), String>,
{
    f(&mut Rng::new(seed))
}

/// Return `Err` with the stringified condition (and optional context) if
/// the condition is false. For use inside [`forall`](crate::propcheck::forall) closures.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Return `Err` reporting both values if they differ. For use inside
/// [`forall`](crate::propcheck::forall) closures.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if left != right {
            return Err(format!(
                "{} != {}\n    left: {:?}\n    right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn rng_respects_ranges() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = rng.range_usize(3, 9);
            assert!((3..=9).contains(&v));
        }
        let v = rng.vec(1, 4, |r| r.u32());
        assert!((1..=4).contains(&v.len()));
    }

    #[test]
    fn forall_passes_trivial_property() {
        forall("u32 widening roundtrip", |rng| {
            let x = rng.u32();
            prop_assert_eq!(x as u64 as u32, x);
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "replay seed")]
    fn forall_reports_failures_with_seed() {
        forall("always fails", |_rng| Err("nope".to_string()));
    }

    /// Pins the full failure format, including the ready-to-run replay
    /// command line. If this changes, update the docs (and anyone's
    /// muscle memory) deliberately.
    #[test]
    fn failure_output_format_is_pinned() {
        let payload = std::panic::catch_unwind(|| {
            forall("always fails", |_rng| Err("nope".to_string()));
        })
        .expect_err("property must fail");
        let message = payload
            .downcast_ref::<String>()
            .expect("panic carries a String");
        let seed = fnv1a("always fails");
        let expected = format!(
            "property 'always fails' failed at case 0/{} (replay seed {:#018x}):\n  nope\n  replay: LLHD_PROP_SEED={:#018x} cargo test",
            case_count(),
            seed,
            seed
        );
        assert_eq!(message, &expected);
    }

    #[test]
    fn replay_command_format_is_pinned() {
        assert_eq!(
            replay_command(0x1234),
            "LLHD_PROP_SEED=0x0000000000001234 cargo test"
        );
        // The printed command round-trips through the seed parser.
        let cmd = replay_command(0xdead_beef_0042_1111);
        let seed_part = cmd
            .strip_prefix("LLHD_PROP_SEED=")
            .and_then(|rest| rest.split(' ').next())
            .unwrap();
        assert_eq!(parse_seed(seed_part), Some(0xdead_beef_0042_1111));
    }

    #[test]
    fn parse_seed_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed("0X10"), Some(16));
        assert_eq!(parse_seed("  42 "), Some(42));
        assert_eq!(parse_seed("0x0000000000001234"), Some(0x1234));
        assert_eq!(parse_seed("zzz"), None);
        assert_eq!(parse_seed(""), None);
    }

    #[test]
    #[should_panic(expected = "replay seed")]
    fn forall_catches_panics_and_reports_seed() {
        forall("always panics", |_rng| -> Result<(), String> {
            panic!("boom");
        });
    }

    #[test]
    fn u64_produces_edge_values() {
        let mut rng = Rng::new(1);
        let (mut saw_zero, mut saw_max) = (false, false);
        for _ in 0..10_000 {
            match rng.u64() {
                0 => saw_zero = true,
                u64::MAX => saw_max = true,
                _ => {}
            }
        }
        assert!(saw_zero, "edge bias must produce 0");
        assert!(saw_max, "edge bias must produce u64::MAX");
    }

    #[test]
    fn replay_reproduces_case() {
        let mut first = 0u64;
        replay(123, |rng| {
            first = rng.u64();
            Ok(())
        })
        .unwrap();
        let mut second = 1u64;
        replay(123, |rng| {
            second = rng.u64();
            Ok(())
        })
        .unwrap();
        assert_eq!(first, second);
    }
}
