//! Umbrella crate for the LLHD reproduction workspace.
//!
//! This crate re-exports the individual crates of the workspace so the
//! examples under `examples/` and the integration tests under `tests/` can
//! exercise the whole stack through a single dependency.

pub mod propcheck;

pub use llhd;
pub use llhd_blaze;
pub use llhd_designs;
pub use llhd_opt;
pub use llhd_sim;
pub use moore;
