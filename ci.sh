#!/bin/sh
# The canonical verification gate for this repository. Keep in sync with
# ROADMAP.md's "Tier-1 verify" line; CI and local pre-merge checks run this.
set -eu
cd "$(dirname "$0")"

# Lint gate: the workspace is clippy-clean and stays that way. Runs first
# (dev profile) so style/correctness lints fail fast, before the release
# build. Skippable only where clippy is genuinely unavailable.
if [ "${LLHD_SKIP_CLIPPY:-0}" != "1" ] && cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
fi

# Tests run in release so they reuse the artifacts of the build above
# instead of recompiling the whole workspace in the dev profile.
cargo build --release --workspace --all-targets
cargo test -q --release --workspace

# Benchmark regression gate: re-measure the simulation and serialization
# suites in quick mode and fail if any median regressed more than 20%
# against the committed BENCH_simulation.json / BENCH_serialization.json
# baselines (quick-mode regressions are re-measured at full length before
# the gate fails). Prints the comparison tables either way. The baselines
# are machine-specific wall-clock data, so on hardware unlike the one
# that produced them (or on a loaded CI runner), skip the gate with
# LLHD_SKIP_BENCH_GATE=1 — the build and tests above are unaffected.
if [ "${LLHD_SKIP_BENCH_GATE:-0}" != "1" ]; then
    cargo run --release -q -p llhd-bench --bin bench_gate -- --quick
fi
