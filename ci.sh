#!/bin/sh
# The canonical verification gate for this repository. Keep in sync with
# ROADMAP.md's "Tier-1 verify" line; CI and local pre-merge checks run this.
set -eu
cd "$(dirname "$0")"

# Tests run in release so they reuse the artifacts of the build above
# instead of recompiling the whole workspace in the dev profile.
cargo build --release --workspace --all-targets
cargo test -q --release --workspace
