#!/bin/sh
# The canonical verification gate for this repository. Keep in sync with
# ROADMAP.md's "Tier-1 verify" line; CI and local pre-merge checks run this.
set -eu
cd "$(dirname "$0")"

# Lint gate: the workspace is clippy-clean and stays that way. Runs first
# (dev profile) so style/correctness lints fail fast, before the release
# build. Skippable only where clippy is genuinely unavailable.
if [ "${LLHD_SKIP_CLIPPY:-0}" != "1" ] && cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
    # A second pass with every feature on lints the fault-injection
    # module (src/fault.rs, tests/chaos.rs), which the default set skips.
    cargo clippy --workspace --all-targets --all-features -- -D warnings
fi

# Rustdoc gate: the public API documentation (including intra-doc links)
# must build warning-free. --no-deps keeps it fast; doctests themselves
# run as part of `cargo test` below.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# Tests run in release so they reuse the artifacts of the build above
# instead of recompiling the whole workspace in the dev profile.
cargo build --release --workspace --all-targets
cargo test -q --release --workspace

# Parallel differential gate: island-parallel vs. serial execution on
# the largest generated designs (32-lane FIR bank, 16-row NoC mesh),
# both engines, threads 2/4/8 — traces and statistics must be
# byte-identical (see "Island partitioning" in ARCHITECTURE.md). The
# test is #[ignore]d because it is release-weight; this is its one
# canonical invocation.
cargo test -q --release -p llhd-designs --test differential -- \
    --ignored --exact largest_generated_design_parallel_differential
echo "ci.sh: parallel differential gate OK"

# Chaos gate: the deterministic fault-injection harness (see
# "Failure model" in ARCHITECTURE.md) storms a live server with injected
# panics, broken reads, and queue pressure under a fixed seed, and
# asserts the process survives serving well-formed responses throughout.
# The fixed seed keeps CI replayable; the hard timeout turns a wedged
# server (the exact failure the harness exists to catch) into a loud
# failure instead of a hung pipeline.
LLHD_CHAOS_SEED=42 timeout 300 \
    cargo test -q --release -p llhd-server --features fault-injection --test chaos || {
    echo "ci.sh: chaos test failed or timed out (seed 42)" >&2
    exit 1
}
echo "ci.sh: chaos test OK (seed 42)"

# Differential fuzz smoke gate: 80 freshly generated designs, each run
# across the reference interpreter plus ten engine variants (interpreter
# parallelism, every blaze knob ablation, threads 1/2/4) with
# constrained-random stimulus including checkpoint/restore cuts — any
# trace/VCD/stats/peek mismatch fails the gate (see "Differential
# fuzzing" in ARCHITECTURE.md). The fixed seed keeps CI replayable; a
# divergence writes a shrunk replay artifact and prints the command to
# reproduce it. To bump the seed set after an engine change, pick a new
# base seed, run `fuzz --seed <new> --cases 1000` locally until clean,
# then update both the seed here and this comment's history: 0x11d4.
# The hard timeout turns a wedged engine into a loud failure.
timeout 300 ./target/release/fuzz --seed 0x11d4 --cases 80 \
    --artifact-dir target/fuzz-artifacts || {
    echo "ci.sh: differential fuzz smoke gate failed (seed 0x11d4)" >&2
    echo "ci.sh: any artifact written above replays the divergence" >&2
    exit 1
}
# The committed regression corpus replays inside `cargo test` (the
# corpus test in llhd-designs), so promoted finds are already covered.
echo "ci.sh: differential fuzz smoke gate OK (seed 0x11d4)"

# Server smoke test: a request → response → shutdown round-trip through
# the real llhd-server binary over stdio (the same protocol the TCP mode
# speaks; see docs/PROTOCOL.md). Three requests in, three ok-responses
# out, clean exit — under a hard timeout so a server that stops reading
# or never exits fails the gate instead of hanging it.
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
cat > "$SMOKE_DIR/requests" <<'EOF'
{"type":"ping","id":1}
{"type":"sim","id":2,"source":"proc @blink () -> (i1$ %led) { entry: %on = const i1 1 %off = const i1 0 %t = const time 5ns drv i1$ %led, %on after %t wait %next for %t next: drv i1$ %led, %off after %t wait %entry for %t }","top":"blink","until_ns":100}
{"type":"shutdown","id":3}
EOF
timeout 60 ./target/release/llhd-server --stdio --stats-interval 0 \
    < "$SMOKE_DIR/requests" > "$SMOKE_DIR/responses" || {
    echo "ci.sh: server stdio smoke test failed or timed out" >&2
    cat "$SMOKE_DIR/responses" >&2
    exit 1
}
# (`|| true`: grep -c exits 1 on zero matches, which `set -e` would turn
# into a silent abort before the diagnostics below could print.)
OK_COUNT=$(grep -c '"ok":true' "$SMOKE_DIR/responses" || true)
if [ "$OK_COUNT" != "3" ]; then
    echo "ci.sh: server stdio smoke test failed; responses were:" >&2
    cat "$SMOKE_DIR/responses" >&2
    exit 1
fi
grep -q '"signal_changes":20' "$SMOKE_DIR/responses" || {
    echo "ci.sh: server smoke test: unexpected sim result:" >&2
    cat "$SMOKE_DIR/responses" >&2
    exit 1
}
echo "ci.sh: server stdio smoke test OK"

# Router smoke test: the fleet tier end to end through the real binaries.
# Two workers on ephemeral ports, a stdio router in front: ping, a
# source-keyed sim, a design-key sim (served via the router's placement
# memo), a fleet stats rollup, shutdown. Five ok-responses out, workers
# still alive afterwards (the router is a tier, not their supervisor),
# all under a hard timeout. The design key is the one-line blink
# source's content fingerprint, deterministic for that exact text (the
# id-2 request above ships it, and its response echoes the key).
./target/release/llhd-server --tcp 127.0.0.1:0 --stats-interval 0 --server-id smoke-w0 \
    2> "$SMOKE_DIR/w0.log" & W0_PID=$!
./target/release/llhd-server --tcp 127.0.0.1:0 --stats-interval 0 --server-id smoke-w1 \
    2> "$SMOKE_DIR/w1.log" & W1_PID=$!
trap 'kill $W0_PID $W1_PID 2>/dev/null; rm -rf "$SMOKE_DIR"' EXIT
for LOG in w0.log w1.log; do
    TRIES=0
    until grep -q 'listening on' "$SMOKE_DIR/$LOG"; do
        TRIES=$((TRIES + 1))
        if [ "$TRIES" -gt 100 ]; then
            echo "ci.sh: router smoke test: a worker never announced its port" >&2
            exit 1
        fi
        sleep 0.1
    done
done
W0_ADDR=$(sed -n 's/.*listening on //p' "$SMOKE_DIR/w0.log" | head -n 1)
W1_ADDR=$(sed -n 's/.*listening on //p' "$SMOKE_DIR/w1.log" | head -n 1)
cat > "$SMOKE_DIR/router-requests" <<'EOF'
{"type":"ping","id":1}
{"type":"sim","id":2,"source":"proc @blink () -> (i1$ %led) { entry: %on = const i1 1 %off = const i1 0 %t = const time 5ns drv i1$ %led, %on after %t wait %next for %t next: drv i1$ %led, %off after %t wait %entry for %t }","top":"blink","until_ns":100}
{"type":"sim","id":3,"design":"1ad3ee7740fe7fb7a31948fd806ba3c6","top":"blink","until_ns":100}
{"type":"stats","id":4}
{"type":"shutdown","id":5}
EOF
timeout 60 ./target/release/llhd-router --stdio \
    --worker "w0=$W0_ADDR" --worker "w1=$W1_ADDR" \
    < "$SMOKE_DIR/router-requests" > "$SMOKE_DIR/router-responses" || {
    echo "ci.sh: router stdio smoke test failed or timed out" >&2
    cat "$SMOKE_DIR/router-responses" >&2
    exit 1
}
ROUTER_OK=$(grep -c '"ok":true' "$SMOKE_DIR/router-responses" || true)
if [ "$ROUTER_OK" != "5" ]; then
    echo "ci.sh: router smoke test failed; responses were:" >&2
    cat "$SMOKE_DIR/router-responses" >&2
    exit 1
fi
# The keyed sim (id 3) must have been served, not rejected as unknown —
# the placement memo routes it to the worker that elaborated the source.
grep -q '"id":3,"result":{"design":"1ad3ee7740fe7fb7a31948fd806ba3c6"' \
    "$SMOKE_DIR/router-responses" || {
    echo "ci.sh: router smoke test: keyed sim was not served from the fleet:" >&2
    cat "$SMOKE_DIR/router-responses" >&2
    exit 1
}
# The rollup names both workers by their self-reported identity.
for WID in smoke-w0 smoke-w1; do
    grep -q "\"server_id\":\"$WID\"" "$SMOKE_DIR/router-responses" || {
        echo "ci.sh: router smoke test: stats rollup is missing $WID:" >&2
        cat "$SMOKE_DIR/router-responses" >&2
        exit 1
    }
done
# The workers outlive the router's shutdown.
for PID in $W0_PID $W1_PID; do
    kill -0 "$PID" 2>/dev/null || {
        echo "ci.sh: router smoke test: a worker died with the router" >&2
        exit 1
    }
done
kill $W0_PID $W1_PID 2>/dev/null
wait $W0_PID $W1_PID 2>/dev/null || true
trap 'rm -rf "$SMOKE_DIR"' EXIT
echo "ci.sh: router stdio smoke test OK"

# Benchmark regression gate: re-measure the simulation and serialization
# suites in quick mode and fail if any median regressed more than 20%
# against the committed BENCH_simulation.json / BENCH_serialization.json
# baselines (quick-mode regressions are re-measured at full length before
# the gate fails). Prints the comparison tables either way. The baselines
# are machine-specific wall-clock data, so on hardware unlike the one
# that produced them (or on a loaded CI runner), skip the gate with
# LLHD_SKIP_BENCH_GATE=1 — the build and tests above are unaffected.
if [ "${LLHD_SKIP_BENCH_GATE:-0}" != "1" ]; then
    cargo run --release -q -p llhd-bench --bin bench_gate -- --quick
fi
